"""Simulation results and the paper's objective functions (Definitions 1-2)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.sim.trace import Trace

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    All times are 1-based steps; a job released at ``r`` may first execute
    at step ``r + 1``, and ``response = completion - release`` (Definition 2).
    """

    scheduler_name: str
    num_jobs: int
    capacities: tuple[int, ...]
    #: ``T(J)`` — the step at which the last job completed (Definition 1)
    makespan: int
    #: job_id -> completion step ``T(Ji)``
    completion_times: dict[int, int]
    #: job_id -> release step ``r(Ji)``
    release_times: dict[int, int]
    #: steps during which no job was available (idle intervals, Section 5)
    idle_steps: int
    #: per-category executed work units (for utilization; includes wasted
    #: units — they occupied processors)
    busy: np.ndarray
    #: full schedule, present when the run recorded one
    trace: Trace | None = None
    #: per-category work units discarded by fault injection (failed tasks
    #: plus the executed work of killed attempts); None for fault-free runs
    wasted: np.ndarray | None = None
    #: steps on which live jobs existed but nothing executed (outages)
    stall_steps: int = 0
    #: length of the longest consecutive zero-progress interval — the
    #: worst time-to-recovery observed
    longest_stall: int = 0
    #: job_id -> number of resubmissions after kills (only jobs retried)
    retries: dict[int, int] = field(default_factory=dict)
    #: jobs permanently lost (killed with retry attempts exhausted)
    failed_jobs: tuple[int, ...] = ()
    #: structured invariant incidents absorbed by a resilient supervisor
    #: (:class:`~repro.sim.supervisor.Incident`), in occurrence order
    incidents: tuple = ()
    #: jobs the supervisor pulled from the run (quarantined, not completed)
    quarantined_jobs: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return len(self.capacities)

    def response_time(self, job_id: int) -> int:
        """``R(Ji) = T(Ji) - r(Ji)``."""
        return self.completion_times[job_id] - self.release_times[job_id]

    def response_times(self) -> dict[int, int]:
        return {
            jid: self.completion_times[jid] - self.release_times[jid]
            for jid in self.completion_times
        }

    @property
    def total_response_time(self) -> int:
        """``R(J) = sum_i R(Ji)``."""
        return sum(self.response_times().values())

    @property
    def mean_response_time(self) -> float:
        """``R(J) / |J|`` — the paper's second objective.

        Averaged over *completed* jobs; identical to the paper's
        definition except on fault-injected runs that permanently lost
        jobs, which have no response time.
        """
        if not self.completion_times:
            return 0.0
        return self.total_response_time / len(self.completion_times)

    def utilization(self, category: int) -> float:
        """Fraction of ``category`` processor-steps doing useful work."""
        if self.makespan == 0:
            return 0.0
        return float(self.busy[category]) / (
            self.capacities[category] * self.makespan
        )

    def utilization_vector(self) -> np.ndarray:
        return np.asarray(
            [self.utilization(a) for a in range(self.num_categories)]
        )

    # ------------------------------------------------------------------
    # robustness metrics (fault-injected runs)
    # ------------------------------------------------------------------
    def wasted_work_vector(self) -> np.ndarray:
        """Per-category units discarded by faults (zeros when fault-free)."""
        if self.wasted is None:
            return np.zeros(self.num_categories, dtype=np.int64)
        return np.asarray(self.wasted, dtype=np.int64)

    @property
    def total_wasted(self) -> int:
        """All processor-steps whose work was thrown away."""
        return int(self.wasted_work_vector().sum())

    @property
    def total_retries(self) -> int:
        """Total job resubmissions across the run."""
        return sum(self.retries.values())

    def goodput(self, category: int) -> float:
        """Fraction of ``category`` processor-steps doing work that
        *survived* — utilization minus the wasted share."""
        if self.makespan == 0:
            return 0.0
        useful = float(self.busy[category]) - float(
            self.wasted_work_vector()[category]
        )
        return useful / (self.capacities[category] * self.makespan)

    def goodput_vector(self) -> np.ndarray:
        return np.asarray(
            [self.goodput(a) for a in range(self.num_categories)]
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        util = ", ".join(f"{u:.2f}" for u in self.utilization_vector())
        line = (
            f"{self.scheduler_name}: makespan={self.makespan} "
            f"mean_rt={self.mean_response_time:.2f} "
            f"idle={self.idle_steps} util=[{util}]"
        )
        if self.total_wasted or self.stall_steps or self.retries:
            line += (
                f" wasted={self.total_wasted} stalls={self.stall_steps} "
                f"retries={self.total_retries}"
            )
        if self.failed_jobs:
            line += f" failed_jobs={len(self.failed_jobs)}"
        if self.quarantined_jobs:
            line += (
                f" quarantined={len(self.quarantined_jobs)} "
                f"incidents={len(self.incidents)}"
            )
        elif self.incidents:
            line += f" incidents={len(self.incidents)}"
        return line

    def __post_init__(self) -> None:
        if self.makespan < 0:
            raise SimulationError(f"negative makespan {self.makespan}")
        if set(self.completion_times) != set(self.release_times):
            raise SimulationError("completion/release job id sets differ")
        for jid, ct in self.completion_times.items():
            if ct <= self.release_times[jid]:
                raise SimulationError(
                    f"job {jid} completes at {ct}, not after release "
                    f"{self.release_times[jid]}"
                )
        overlap = set(self.failed_jobs) & set(self.completion_times)
        if overlap:
            raise SimulationError(
                f"jobs {sorted(overlap)} both completed and permanently "
                "failed"
            )
        overlap = set(self.quarantined_jobs) & set(self.completion_times)
        if overlap:
            raise SimulationError(
                f"jobs {sorted(overlap)} both completed and were "
                "quarantined"
            )
        if self.wasted is not None and (
            self.wasted_work_vector() > np.asarray(self.busy)
        ).any():
            raise SimulationError(
                f"wasted work {self.wasted_work_vector().tolist()} exceeds "
                f"executed work {np.asarray(self.busy).tolist()}"
            )
