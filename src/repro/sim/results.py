"""Simulation results and the paper's objective functions (Definitions 1-2)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.trace import Trace

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    All times are 1-based steps; a job released at ``r`` may first execute
    at step ``r + 1``, and ``response = completion - release`` (Definition 2).
    """

    scheduler_name: str
    num_jobs: int
    capacities: tuple[int, ...]
    #: ``T(J)`` — the step at which the last job completed (Definition 1)
    makespan: int
    #: job_id -> completion step ``T(Ji)``
    completion_times: dict[int, int]
    #: job_id -> release step ``r(Ji)``
    release_times: dict[int, int]
    #: steps during which no job was available (idle intervals, Section 5)
    idle_steps: int
    #: per-category executed work units (for utilization)
    busy: np.ndarray
    #: full schedule, present when the run recorded one
    trace: Trace | None = None

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return len(self.capacities)

    def response_time(self, job_id: int) -> int:
        """``R(Ji) = T(Ji) - r(Ji)``."""
        return self.completion_times[job_id] - self.release_times[job_id]

    def response_times(self) -> dict[int, int]:
        return {
            jid: self.completion_times[jid] - self.release_times[jid]
            for jid in self.completion_times
        }

    @property
    def total_response_time(self) -> int:
        """``R(J) = sum_i R(Ji)``."""
        return sum(self.response_times().values())

    @property
    def mean_response_time(self) -> float:
        """``R(J) / |J|`` — the paper's second objective."""
        return self.total_response_time / self.num_jobs

    def utilization(self, category: int) -> float:
        """Fraction of ``category`` processor-steps doing useful work."""
        if self.makespan == 0:
            return 0.0
        return float(self.busy[category]) / (
            self.capacities[category] * self.makespan
        )

    def utilization_vector(self) -> np.ndarray:
        return np.asarray(
            [self.utilization(a) for a in range(self.num_categories)]
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        util = ", ".join(f"{u:.2f}" for u in self.utilization_vector())
        return (
            f"{self.scheduler_name}: makespan={self.makespan} "
            f"mean_rt={self.mean_response_time:.2f} "
            f"idle={self.idle_steps} util=[{util}]"
        )

    def __post_init__(self) -> None:
        if self.makespan < 0:
            raise SimulationError(f"negative makespan {self.makespan}")
        if set(self.completion_times) != set(self.release_times):
            raise SimulationError("completion/release job id sets differ")
        for jid, ct in self.completion_times.items():
            if ct <= self.release_times[jid]:
                raise SimulationError(
                    f"job {jid} completes at {ct}, not after release "
                    f"{self.release_times[jid]}"
                )
