"""The fast simulation engine: incremental desires, vectorised K-RAD,
analytic quiescent-span skipping.

:class:`FastSimulator` is a drop-in subclass of
:class:`~repro.sim.engine.Simulator` (select it with
``simulate(..., engine="fast")`` or ``krad --engine fast``).  It produces
**bit-identical** results — traces, metrics, digests, checkpoints — which
the differential layer in :mod:`repro.sim.conformance` and
``tests/test_conformance_fast.py`` verify; the reference engine stays the
executable specification.

Four mechanisms carry the speedup:

1. **Incremental desire tracking.**  For backends declaring
   ``Job.incremental_desires`` (desires change only through ``execute``
   / ``fail_tasks`` — the delta contract documented on
   :class:`~repro.jobs.base.Job`), the engine keeps per-job desire
   vectors across steps — an ``(n, K)`` matrix on the vectorised path —
   and refreshes only the rows of jobs that executed, failed tasks, or
   were replaced, instead of calling ``desire_vector()`` on every live
   job every step.  If any job in the run opts out, the engine falls
   back to re-polling each live job exactly once per step, the
   reference's call pattern.

2. **Vectorised K-RAD.**  When the scheduler is exactly
   :class:`~repro.schedulers.krad.KRad`, allocation runs through
   :meth:`~repro.schedulers.krad.KRad.begin_batch`: numpy kernels over
   the desire matrix (argsorts over service-sequence numbers replace
   per-job Python list scans).  Any other scheduler transparently uses
   its normal ``allocate`` with the incrementally maintained desire
   dict, so ``engine="fast"`` is always safe to pass.

3. **Lean phase execution.**  When every job is a plain
   :class:`~repro.jobs.phase_job.PhaseJob` and nothing consumes per-task
   ids (no trace, no fault model, no supervisor, no journal, no
   ``on_step`` hook), the engine holds the jobs' runtime state —
   current-phase remaining work, parallelism, phase index, executed
   counter — in ``(n, K)`` arrays and applies each step's allotment
   matrix with a handful of numpy operations instead of one
   ``Job.execute`` call per served job.  Job objects are re-synchronised
   from the arrays whenever observable state is needed: at completion,
   and before any :meth:`digest` / :meth:`checkpoint`, so snapshots stay
   bit-identical to the reference.

4. **Quiescent-span skipping.**  After a step in which every category
   was in DEQ mode (no open round-robin cycle) and the whole desire
   matrix fits under the capacities, the next allocation is provably the
   desire matrix itself, repeated verbatim — so the engine advances
   ``s`` steps analytically in O(1): ``t += s``, ``busy += s * totals``,
   and one bulk state update per job.  ``s`` is the largest span in
   which no desire changes, no job completes, and no arrival lands.
   Faults, churn, tracing, journaling, supervision and ``on_step`` hooks
   all disable the skip — those features need every unit step observed.
"""

from __future__ import annotations

import heapq
from time import perf_counter

import numpy as np

from repro.errors import ScheduleError, SimulationError
from repro.jobs.base import Job
from repro.jobs.phase_job import PhaseJob
from repro.machine.machine import KResourceMachine
from repro.schedulers.base import check_allotments
from repro.schedulers.krad import KRad, KRadBatch
from repro.sim.engine import Simulator
from repro.sim.trace import StepRecord

__all__ = ["FastSimulator"]


class FastSimulator(Simulator):
    """Vectorised drop-in for :class:`~repro.sim.engine.Simulator`.

    Accepts the exact constructor surface of the reference engine; the
    checkpoint/restore/recover/journal machinery is inherited unchanged
    (the state it snapshots is identical by construction, so fast and
    reference runs can even resume each other's checkpoints).
    """

    engine_name = "fast"

    #: lazily initialised by the first :meth:`_step`
    _ft_built = False
    #: True while Job objects lag behind the lean-mode state arrays
    _ft_stale = False
    #: obs-only scratch: cached ones vector for matmul column sums
    #: (3x cheaper than ``sum(axis=0)`` at the hot shapes) and a
    #: reusable ``|A - prev|`` buffer — telemetry must not allocate
    _obs_ones = None
    _obs_diffbuf = None
    #: reallocation volume owed by rows that left between two
    #: allocations (``_ft_sync`` realigns the previous-allotment matrix
    #: and banks the departed rows here; the next diff pays it out)
    _obs_realloc_carry = 0.0

    # ------------------------------------------------------------------
    def _ft_build(self) -> None:
        st = self._state
        self._ft_built = True
        # Strict type check: a KRad *subclass* may override allocate, so
        # only the exact class is routed through the batch kernels.
        self._ft_vec = type(self._scheduler) is KRad
        self._ft_jids: list[int] = list(st.alive)
        self._ft_jobs: list[Job] = [st.alive[j] for j in self._ft_jids]
        self._ft_rowidx = {j: i for i, j in enumerate(self._ft_jids)}
        k = self._machine.num_categories
        # Incremental desire caching is only sound for backends declaring
        # the delta contract (Job.incremental_desires).  One opted-out job
        # anywhere in the run makes the engine re-poll every live job's
        # desire_vector() once per step — exactly the reference's call
        # pattern, so even poll-counting backends behave identically.
        self._ft_incr = (
            all(type(j).incremental_desires for j in st.pending)
            and all(type(j).incremental_desires for j in st.alive.values())
            and all(type(e[2]).incremental_desires for e in st.resubmit)
        )
        if self._ft_vec:
            self._ft_D = np.zeros((len(self._ft_jids), k), dtype=np.int64)
            if self._ft_incr:
                for i, job in enumerate(self._ft_jobs):
                    self._ft_D[i] = job.desire_vector()
            self._ft_batch: KRadBatch | None = self._scheduler.begin_batch(
                self._ft_jids
            )
            self._ft_desires: dict[int, np.ndarray] | None = None
        else:
            self._ft_D = None
            self._ft_batch = None
            # non-incremental: the dict is rebuilt at every step's
            # allocation point, so build installs only a placeholder
            self._ft_desires = (
                {
                    jid: job.desire_vector()
                    for jid, job in zip(self._ft_jids, self._ft_jobs)
                }
                if self._ft_incr
                else {}
            )
        self._ft_dirty = False
        # Steady-span skipping needs every job to predict its desire
        # trajectory; a single opted-out backend disables it for the run.
        self._ft_steady = all(
            type(j).steady_steps is not Job.steady_steps for j in st.pending
        )
        # Lean phase execution: plain PhaseJobs only (a subclass may
        # override execute) and no consumer of per-task ids.
        self._ft_lean = (
            self._ft_vec
            and self._fault_model is None
            and self._supervisor is None
            and self._on_step is None
            and self._journal is None
            and st.trace is None
            and all(type(j) is PhaseJob for j in st.pending)
            and all(type(j) is PhaseJob for j in st.alive.values())
            and all(type(e[2]) is PhaseJob for e in st.resubmit)
        )
        if self._ft_lean:
            n = len(self._ft_jids)
            self._ft_R = np.zeros((n, k), dtype=np.int64)
            self._ft_P = np.zeros((n, k), dtype=np.int64)
            self._ft_PI = np.zeros(n, dtype=np.int64)
            self._ft_LPI = np.zeros(n, dtype=np.int64)
            self._ft_EC = np.zeros(n, dtype=np.int64)
            self._ft_NP = np.zeros(n, dtype=np.int64)
            for i, job in enumerate(self._ft_jobs):
                self._ft_read_row(i, job)

    # ------------------------------------------------------------------
    def _ft_read_row(self, i: int, job: Job) -> None:
        """Load one job's runtime state into row ``i`` of the lean arrays."""
        rs = job.runtime_state()
        pi = int(rs["phase_idx"])
        self._ft_PI[i] = pi
        self._ft_LPI[i] = int(rs["last_phase_idx"])
        self._ft_R[i] = rs["remaining"]
        self._ft_EC[i] = int(rs["executed_counter"])
        phases = job.phases
        self._ft_NP[i] = len(phases)
        if pi < len(phases):
            self._ft_P[i] = phases[pi].parallelism

    # ------------------------------------------------------------------
    def _ft_flush(self) -> None:
        """Write the lean-mode arrays back into the Job objects.

        Called before any state observation (digest, checkpoint, pause)
        so the jobs are indistinguishable from a reference run's.  Rows
        of already-completed jobs re-write identical state; harmless.
        """
        if not self._ft_stale:
            return
        for i, job in enumerate(self._ft_jobs):
            job.restore_runtime_state(
                {
                    "phase_idx": int(self._ft_PI[i]),
                    "last_phase_idx": int(self._ft_LPI[i]),
                    "remaining": self._ft_R[i].tolist(),
                    "executed_counter": int(self._ft_EC[i]),
                    "completion_time": job.completion_time,
                }
            )
        self._ft_stale = False

    # ------------------------------------------------------------------
    def digest(self) -> int:
        self._ft_flush()
        return super().digest()

    def checkpoint(self) -> dict:
        self._ft_flush()
        return super().checkpoint()

    def run_until(self, t_stop: int):
        result = super().run_until(t_stop)
        self._ft_flush()
        return result

    def advance_until(self, t_stop: int) -> bool:
        quiescent = super().advance_until(t_stop)
        self._ft_flush()
        return quiescent

    def inject_job(self, job, *, release_time=None, meta=None):
        release = super().inject_job(
            job, release_time=release_time, meta=meta
        )
        if self._ft_built:
            # The fast paths were proven sound over the job population
            # seen at build time; an online arrival may violate their
            # preconditions, so each flag downgrades monotonically —
            # never re-enables — keeping every already-taken shortcut
            # valid and every future step on a conservative path.
            cls = type(job)
            if not cls.incremental_desires:
                self._ft_incr = False
            if cls.steady_steps is Job.steady_steps:
                self._ft_steady = False
            if self._ft_lean and cls is not PhaseJob:
                # Leaving lean mode: materialise the state arrays back
                # into the Job objects first, then execute per-job like
                # the reference from here on.
                self._ft_flush()
                self._ft_lean = False
        return release

    def backlog_vector(self):
        self._ft_flush()
        return super().backlog_vector()

    def backlog_span(self) -> int:
        self._ft_flush()
        return super().backlog_span()

    # ------------------------------------------------------------------
    def _ft_sync(self) -> None:
        """Reconcile rows with the live set (arrivals/completions/kills).

        Runs lazily at the next allocation after membership changed —
        the same point the reference scheduler's register+prune runs —
        so digests and checkpoints taken at the end of a step still see
        the jobs that completed during it, exactly like the reference.
        """
        st = self._state
        new_jids = list(st.alive)
        old_idx = self._ft_rowidx
        old_jobs = self._ft_jobs
        surv_pos: list[int] = []
        perm: list[int] = []
        fresh_pos: list[int] = []
        refresh_pos: list[int] = []
        new_jobs: list[Job] = []
        for pos, jid in enumerate(new_jids):
            job = st.alive[jid]
            new_jobs.append(job)
            row = old_idx.get(jid)
            if row is None:
                fresh_pos.append(pos)
            else:
                surv_pos.append(pos)
                perm.append(row)
                if job is not old_jobs[row]:
                    # Killed and resubmitted between two allocations: the
                    # scheduler state survives (the id was never pruned),
                    # but the Job object is a fresh copy whose desires
                    # must be re-read.
                    refresh_pos.append(pos)
        k = self._machine.num_categories
        if self._ft_vec:
            D = np.zeros((len(new_jids), k), dtype=np.int64)
            if surv_pos:
                D[surv_pos] = self._ft_D[perm]
            if self._ft_incr:
                for pos in fresh_pos + refresh_pos:
                    D[pos] = new_jobs[pos].desire_vector()
            # non-incremental: rows are filled by the per-step re-poll,
            # keeping desire_vector() at one call per live job per step
            self._ft_D = D
            self._ft_batch.sync(surv_pos, perm, fresh_pos, new_jids)
        elif self._ft_incr:
            old = self._ft_desires
            fresh = set(fresh_pos)
            fresh.update(refresh_pos)
            self._ft_desires = {
                jid: (
                    new_jobs[pos].desire_vector()
                    if pos in fresh
                    else old[jid]
                )
                for pos, jid in enumerate(new_jids)
            }
        if self._ft_lean:
            n = len(new_jids)
            R = np.zeros((n, k), dtype=np.int64)
            P = np.zeros((n, k), dtype=np.int64)
            PI = np.zeros(n, dtype=np.int64)
            LPI = np.zeros(n, dtype=np.int64)
            EC = np.zeros(n, dtype=np.int64)
            NP = np.zeros(n, dtype=np.int64)
            if surv_pos:
                R[surv_pos] = self._ft_R[perm]
                P[surv_pos] = self._ft_P[perm]
                PI[surv_pos] = self._ft_PI[perm]
                LPI[surv_pos] = self._ft_LPI[perm]
                EC[surv_pos] = self._ft_EC[perm]
                NP[surv_pos] = self._ft_NP[perm]
            self._ft_R, self._ft_P = R, P
            self._ft_PI, self._ft_LPI = PI, LPI
            self._ft_EC, self._ft_NP = EC, NP
            for pos in fresh_pos + refresh_pos:
                self._ft_read_row(pos, new_jobs[pos])
            prev = self._obs_prev_alloc
            if type(prev) is list:
                # Realign the previous-allotment matrix to the new row
                # order so the per-step realloc diff stays one aligned
                # subtraction.  Fresh rows start at zero (the next diff
                # charges their full allotment); departed rows are owed
                # |prev - 0| and bank into the carry, paid out by the
                # next diff — together exactly reallocation_volume's
                # absent-job = zero-vector convention.
                P_old = prev[2]
                P_new = np.zeros((n, k), dtype=np.int64)
                kept = 0
                if surv_pos:
                    sub = P_old[perm]
                    P_new[surv_pos] = sub
                    kept = int(sub.sum())
                self._obs_realloc_carry += float(int(P_old.sum()) - kept)
                self._obs_prev_alloc = ["matrix", new_jids, P_new]
        self._ft_jids = new_jids
        self._ft_jobs = new_jobs
        self._ft_rowidx = {jid: i for i, jid in enumerate(new_jids)}
        self._ft_dirty = False

    # ------------------------------------------------------------------
    def _ft_check(self, allotments, caps_t) -> None:
        """Vectorised equivalent of :func:`check_allotments` (vec path)."""
        D = self._ft_D
        A = np.zeros_like(D)
        idx = self._ft_rowidx
        for jid, a in allotments.items():
            A[idx[jid]] = a
        self._ft_check_matrix(A, caps_t)

    def _ft_check_matrix(self, A: np.ndarray, caps_t) -> None:
        D = self._ft_D
        if (A < 0).any() or (A > D).any():
            raise ScheduleError(
                "fast engine produced an allotment outside [0, desire]"
            )
        caps = np.asarray(caps_t, dtype=np.int64)
        if (A.sum(axis=0) > caps).any():
            raise ScheduleError(
                "fast engine over-subscribed a category's capacity"
            )

    # ------------------------------------------------------------------
    # observability helpers (matrix-shaped fast paths)
    # ------------------------------------------------------------------
    def _obs_realloc_matrix(self, A: np.ndarray) -> float:
        """Matrix-shaped counterpart of ``_obs_realloc_dict``.

        ``_ft_sync`` realigns the stored matrix to every membership
        change and banks departed rows in ``_obs_realloc_carry``, so in
        lean mode the diff is always one aligned subtraction plus the
        carry; the id-aligned and per-job dict comparisons below only
        remain for handoffs from non-lean paths.  The value always
        matches :func:`repro.sim.metrics.reallocation_volume`.
        """
        prev = self._obs_prev_alloc
        jids = self._ft_jids
        if type(prev) is list and prev[1] is jids:
            # hot path: row order unchanged since the last diff — swap
            # the snapshot in place and take one aligned subtraction.
            # A is freshly allocated by allocate_matrix and never
            # written after allocation, so keeping it without a copy
            # is safe.
            P = prev[2]
            prev[2] = A
            buf = self._obs_diffbuf
            if buf is None or buf.shape != A.shape:
                buf = self._obs_diffbuf = np.empty_like(A)
            np.subtract(A, P, out=buf)
            np.abs(buf, out=buf)
            carry = self._obs_realloc_carry
            if carry:
                self._obs_realloc_carry = 0.0
                return float(buf.sum()) + carry
            return float(buf.sum())
        self._obs_prev_alloc = ["matrix", jids, A]
        if prev is None:
            return 0.0
        carry = self._obs_realloc_carry
        if carry:
            self._obs_realloc_carry = 0.0
        if isinstance(prev, list):
            # membership changed without a sync realign (handoff from a
            # non-lean matrix path): align common rows by id; rows
            # present on only one side contribute their full
            # (non-negative) sum, matching reallocation_volume's
            # absent-job = zero-vector convention
            jp = np.asarray(prev[1], dtype=np.int64)
            jc = np.asarray(jids, dtype=np.int64)
            P = prev[2]
            _, ip, ic = np.intersect1d(
                jp, jc, assume_unique=True, return_indices=True
            )
            moved = np.abs(A[ic] - P[ip]).sum()
            only_cur = A.sum() - A[ic].sum()
            only_prev = P.sum() - P[ip].sum()
            return float(moved + only_cur + only_prev) + carry
        cur = {int(j): A[i] for i, j in enumerate(jids)}
        total = 0
        for jid, a in cur.items():
            p = prev.get(jid)
            if p is None:
                total += int(a.sum())
            else:
                total += int(
                    np.abs(a - np.asarray(p, dtype=np.int64)).sum()
                )
        for jid, p in prev.items():
            if jid not in cur:
                total += int(np.asarray(p, dtype=np.int64).sum())
        return float(total) + carry

    def _obs_span(self, t: int, s: int, totals: np.ndarray) -> None:
        """Credit an analytically skipped quiescent span of ``s`` steps."""
        obs = self._obs
        if obs.metrics is not None:
            obs.metrics.record_span(
                s,
                np.asarray(totals, dtype=np.int64),
                sum(self._state.last_caps),
            )
        if obs.bus.active:
            obs.bus.emit(
                t,
                "steady_span",
                steps=s,
                allocated=np.asarray(totals).tolist(),
            )

    # ------------------------------------------------------------------
    def _step(self) -> None:  # noqa: C901 - mirrors the reference loop
        """One time step — a phase-for-phase mirror of the reference."""
        machine = self._machine
        scheduler = self._scheduler
        st = self._state
        if not self._ft_built:
            self._ft_build()
        obs = self._obs
        prof = obs.profiler if obs is not None else None
        if obs is not None:
            self._obs_w0 = perf_counter()
        if prof is not None:
            prof.step_begin()

        st.t += 1
        t = st.t
        if t > self._max_steps:
            raise SimulationError(
                f"no completion after {self._max_steps} steps; "
                f"{len(st.alive)} jobs alive — scheduler "
                f"{scheduler.name!r} is not making progress"
            )
        # Fast-forward idle intervals: nobody alive, arrivals later.
        if not st.alive:
            next_release = self._next_release()
            if next_release is not None and next_release >= t:
                skip_to = next_release + 1
                st.idle_steps += skip_to - t
                st.t = t = skip_to

        arriving: list[Job] = []
        while (
            st.next_pending < len(st.pending)
            and st.pending[st.next_pending].release_time < t
        ):
            arriving.append(st.pending[st.next_pending])
            st.next_pending += 1
        while st.resubmit and st.resubmit[0][0] < t:
            arriving.append(heapq.heappop(st.resubmit)[2])
        arriving.sort(key=lambda j: (j.release_time, j.job_id))
        arrivals: list[int] = []
        for job in arriving:
            st.alive[job.job_id] = job
            arrivals.append(job.job_id)
        if prof is not None:
            prof.lap("arrivals")

        step_machine = machine
        caps_t = machine.capacities
        if self._capacity_schedule is not None:
            caps_t = tuple(int(c) for c in self._capacity_schedule(t))
            if len(caps_t) != machine.num_categories or any(
                not 0 <= c <= nominal
                for c, nominal in zip(caps_t, machine.capacities)
            ):
                raise SimulationError(
                    f"capacity schedule at t={t} returned {caps_t}; "
                    f"need {machine.num_categories} values in "
                    f"[0, nominal {machine.capacities}]"
                )
            if caps_t != machine.capacities:
                step_machine = KResourceMachine(
                    caps_t, names=machine.names, allow_zero=True
                )
            scheduler.rebind(step_machine)
        elif self._churn is not None:
            caps_t = self._churn.capacities(t)
            if caps_t != machine.capacities:
                step_machine = KResourceMachine(
                    caps_t, names=machine.names, allow_zero=True
                )
            scheduler.rebind(step_machine)
        if caps_t != st.last_caps:
            scheduler.notify_capacity_change(st.last_caps, caps_t)
            st.last_caps = caps_t
        if prof is not None:
            prof.lap("capacity")

        # Membership reconciliation happens exactly where the reference
        # scheduler runs register+prune: at allocation time.
        if arrivals or self._ft_dirty:
            self._ft_sync()

        if self._ft_lean:
            # ----------------------------------------------------------
            # Lean path: allotment matrix in, array state update out.
            # No per-task ids exist, so nothing per-job runs in Python
            # except the rare phase-barrier / completion events.
            # ----------------------------------------------------------
            D = self._ft_D
            A = self._ft_batch.allocate_matrix(D, caps_t)
            if self._validate:
                self._ft_check_matrix(A, caps_t)
            if prof is not None:
                prof.lap("allotment")
            # Pre-execution desire column sums — D is mutated in place
            # below for served rows, so capture the totals now.
            if obs is not None:
                ones = self._obs_ones
                if ones is None or ones.shape[0] != D.shape[0]:
                    ones = self._obs_ones = np.ones(
                        D.shape[0], dtype=np.int64
                    )
                obs_desired = ones @ D
            else:
                obs_desired = None
            row_tot = A.sum(axis=1)
            served = np.flatnonzero(row_tot)
            progress = int(row_tot.sum())
            completions: list[int] = []
            a_cols = None
            if served.size:
                self._ft_stale = True
                a_cols = A.sum(axis=0)
                st.busy += a_cols
                R = self._ft_R
                self._ft_LPI[served] = self._ft_PI[served]
                self._ft_EC[served] += row_tot[served]
                R[served] -= A[served]
                done = served[~R[served].any(axis=1)]
                for r in done.tolist():
                    pi = int(self._ft_PI[r]) + 1
                    self._ft_PI[r] = pi
                    job = self._ft_jobs[r]
                    if pi < int(self._ft_NP[r]):
                        phase = job.phases[pi]
                        R[r] = phase.work
                        self._ft_P[r] = phase.parallelism
                    else:
                        # completion: flush this row so the Job object is
                        # exactly what the reference engine would leave
                        jid = self._ft_jids[r]
                        job.restore_runtime_state(
                            {
                                "phase_idx": pi,
                                "last_phase_idx": int(self._ft_LPI[r]),
                                "remaining": R[r].tolist(),
                                "executed_counter": int(self._ft_EC[r]),
                                "completion_time": t,
                            }
                        )
                        st.completion[jid] = t
                        completions.append(jid)
                        del st.alive[jid]
                D[served] = np.minimum(self._ft_P[served], R[served])
            if prof is not None:
                prof.lap("execution")
        else:
            if not self._ft_incr:
                # Opted-out backend somewhere in the run: re-poll every
                # live job once, at the same point the reference polls.
                if self._ft_vec:
                    for i, job in enumerate(self._ft_jobs):
                        self._ft_D[i] = job.desire_vector()
                else:
                    self._ft_desires = {
                        jid: job.desire_vector()
                        for jid, job in zip(self._ft_jids, self._ft_jobs)
                    }
            # desires (incrementally maintained); the dict form is only
            # materialised when a consumer needs it
            if self._ft_vec:
                D = self._ft_D
                if st.trace is not None or self._supervisor is not None:
                    desires = {
                        jid: D[i].copy()
                        for i, jid in enumerate(self._ft_jids)
                    }
                else:
                    desires = None
                allotments = self._ft_batch.allocate(D, caps_t)
                if self._validate:
                    self._ft_check(allotments, caps_t)
                # Pre-execution column sums; the execution loop below
                # refreshes served rows of D in place.
                obs_desired = D.sum(axis=0) if obs is not None else None
            else:
                desires = self._ft_desires
                allotments = scheduler.allocate(
                    t,
                    desires,
                    jobs=st.alive if scheduler.clairvoyant else None,
                )
                if self._validate:
                    check_allotments(step_machine, desires, allotments)
                obs_desired = None
            if prof is not None:
                prof.lap("allotment")

            executed: dict[int, list[list[int]]] = {}
            progress = 0
            rng = self._rng
            policy = self._policy
            idx = self._ft_rowidx
            for jid, alloc in allotments.items():
                alloc = np.asarray(alloc, dtype=np.int64)
                if not alloc.any():
                    continue
                job = st.alive[jid]
                executed[jid] = job.execute(alloc, policy, rng)
                st.busy += alloc
                progress += int(alloc.sum())
                # the delta update: only executing jobs re-report desires
                if self._ft_vec and self._ft_incr:
                    self._ft_D[idx[jid]] = job.desire_vector()
            post_exec: dict[int, np.ndarray] | None = None
            if not self._ft_vec and self._ft_incr and executed:
                # The dict passed to allocate (and recorded in the trace)
                # keeps its pre-execution values; refreshed entries are
                # installed after the step record is written.
                post_exec = {
                    jid: st.alive[jid].desire_vector() for jid in executed
                }
            if prof is not None:
                prof.lap("execution")

            failed, killed = self._inject_faults(t, executed)
            if self._ft_incr:
                for jid in failed:
                    # fail_tasks re-enqueues work, changing the desire
                    job = st.alive.get(jid)
                    if job is None:
                        continue  # failed and then killed in the same step
                    if self._ft_vec:
                        self._ft_D[idx[jid]] = job.desire_vector()
                    else:
                        post_exec[jid] = job.desire_vector()
            if killed:
                self._ft_dirty = True
            if prof is not None:
                prof.lap("faults")

            if self._supervisor is not None:
                quarantined_before = len(st.quarantined)
                self._supervise(t, caps_t, desires, allotments, executed)
                if len(st.quarantined) != quarantined_before:
                    self._ft_dirty = True
            if prof is not None:
                prof.lap("supervise")

        stalled = False
        if progress == 0:
            # evaluated lazily, like the reference: zero-progress steps
            # are rare, so the activity scan stays off the hot path
            if self._ft_vec:
                active = bool(self._ft_jids) and bool(self._ft_D.any())
            else:
                active = bool(desires) and any(
                    d.any() for d in desires.values()
                )
        else:
            active = False
        if progress == 0 and active:
            if not self._faulty:
                raise SimulationError(
                    f"step {t}: scheduler {scheduler.name!r} executed "
                    f"nothing while {len(st.alive)} jobs are active — not "
                    "work-conserving"
                )
            stalled = True
            st.stall_run += 1
            st.stall_steps += 1
            st.longest_stall = max(st.longest_stall, st.stall_run)
            if st.stall_run > self._max_stall_steps:
                raise SimulationError(
                    f"step {t}: no progress for {st.stall_run} consecutive "
                    f"steps with {len(st.alive)} jobs alive — the machine "
                    "never recovered (max_stall_steps "
                    f"{self._max_stall_steps})"
                )
        elif progress:
            st.stall_run = 0

        if self._on_step is not None:
            self._on_step(t, st.alive)

        if not self._ft_lean:
            completions = []
            if executed:
                # A live job only completes by executing (see the
                # reference engine's completion scan), in live order.
                for jid in list(st.alive):
                    if jid in executed and st.alive[jid].is_complete:
                        st.alive[jid].completion_time = t
                        st.completion[jid] = t
                        completions.append(jid)
                        del st.alive[jid]
        if completions:
            st.makespan = t
            self._ft_dirty = True

        if obs is not None:
            if self._ft_lean:
                realloc = self._obs_realloc_matrix(A)
                if obs.bus.active:
                    obs.bus.emit(
                        t,
                        "alloc",
                        allotments={
                            int(jid): A[i].tolist()
                            for i, jid in enumerate(self._ft_jids)
                        },
                    )
                self._obs_common(
                    t,
                    obs_desired,
                    a_cols if a_cols is not None else np.zeros_like(
                        obs_desired
                    ),
                    realloc,
                    progress,
                    len(arrivals),
                    len(completions),
                    stalled,
                )
            else:
                self._obs_step(
                    t,
                    desires,
                    allotments,
                    progress,
                    len(arrivals),
                    len(completions),
                    stalled,
                    desired_tot=obs_desired,
                )

        if st.trace is not None:
            st.trace.append(
                StepRecord(
                    t=t,
                    desires=desires,
                    allotments={
                        jid: np.asarray(a, dtype=np.int64)
                        for jid, a in allotments.items()
                    },
                    executed=executed,
                    arrivals=tuple(arrivals),
                    completions=tuple(completions),
                    failed=failed,
                    killed=tuple(killed),
                )
            )

        if not self._ft_lean and post_exec is not None:
            if st.trace is not None:
                # the recorded step keeps the pre-execution dict intact
                self._ft_desires = dict(self._ft_desires)
            self._ft_desires.update(post_exec)

        if self._journal is not None:
            self._journal_put("step", {"t": t, "digest": self.digest()})
            if t % self._journal.checkpoint_every == 0 and self._unfinished():
                self._journal_put("checkpoint", self.checkpoint())
        if prof is not None:
            prof.lap("bookkeeping")

        # --------------------------------------------------------------
        # Quiescent-span skip: if this step was fully satisfied with
        # every category in DEQ mode, and no event can land before the
        # desires change, the next s steps are this step verbatim.
        # --------------------------------------------------------------
        if self._ft_lean:
            if (
                progress > 0
                and not arrivals
                and not completions
                and not self._ft_dirty
                and not self._faulty
                and self._ft_batch.quiescent()
            ):
                D = self._ft_D
                totals = D.sum(axis=0)
                if (totals <= np.asarray(caps_t, dtype=np.int64)).all():
                    mask = D > 0
                    # every live PhaseJob has an active category, so the
                    # entry-wise min equals min over jobs of steady_steps
                    s = int((self._ft_R[mask] // D[mask]).min()) - 1
                    next_release = self._next_release()
                    if next_release is not None:
                        s = min(s, next_release - t)
                    s = min(s, self._max_steps - t)
                    if s >= 1:
                        st.t += s
                        st.busy += s * totals
                        self._ft_stale = True
                        self._ft_LPI[:] = self._ft_PI
                        self._ft_EC += s * D.sum(axis=1)
                        self._ft_R -= s * D
                        if obs is not None:
                            self._obs_span(t, s, totals)
        elif (
            self._ft_vec
            and self._ft_incr
            and self._ft_steady
            and progress > 0
            and not arrivals
            and not completions
            and not failed
            and not killed
            and not self._ft_dirty
            and not self._faulty
            and st.trace is None
            and self._journal is None
            and self._supervisor is None
            and self._on_step is None
            and self._ft_jids
            and self._ft_batch.quiescent()
        ):
            D = self._ft_D
            totals = D.sum(axis=0)
            if (totals <= np.asarray(caps_t, dtype=np.int64)).all():
                s = min(job.steady_steps() for job in self._ft_jobs)
                next_release = self._next_release()
                if next_release is not None:
                    s = min(s, next_release - t)
                s = min(s, self._max_steps - t)
                if s >= 1:
                    st.t += s
                    st.busy += s * totals
                    for job in self._ft_jobs:
                        job.advance_steady(s)
                    if obs is not None:
                        self._obs_span(t, s, totals)
