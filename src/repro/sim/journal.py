"""Crash-safe write-ahead trace journaling.

A :class:`Journal` is an append-only JSONL file that makes a long
simulation survivable: every record is framed with a sequence number and a
CRC32 over its canonical payload, each write is flushed and fsync'd, and
readers stop at the first record that fails framing — a torn tail from a
mid-write crash is *detected and truncated*, never silently parsed.

Record stream of one run::

    meta        run header: scheduler name, machine, feature flags,
                churn events and supervisor spec (both plain data)
    checkpoint  full Simulator.checkpoint() payload (at start, then every
                ``checkpoint_every`` steps)
    step        per-step delta: {"t": ..., "digest": ...} where the digest
                is a CRC of the engine's post-step state
    end         final digest + makespan (a journal without one is a crash)

Recovery (:meth:`repro.sim.engine.Simulator.recover`) replays the journal:
restore the last intact checkpoint, re-execute forward comparing each
step's digest against the journaled one (divergence raises
:class:`~repro.errors.JournalError` — the run is *verified* bit-for-bit,
not assumed), truncate any torn tail, and keep appending to the same file
so a resumed run leaves one continuous journal.
"""

from __future__ import annotations

import json
import logging
import os
import time
import zlib
from typing import Any, Iterator

from repro.errors import JournalError

__all__ = ["Journal", "JournalRecord", "read_journal", "state_digest"]

JOURNAL_VERSION = 1

logger = logging.getLogger("repro.sim.journal")


def _frame_crc(seq: int, rtype: str, data: Any) -> int:
    payload = json.dumps(
        [seq, rtype, data], sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


class JournalRecord:
    """One parsed journal record (``seq``, ``type``, ``data``)."""

    __slots__ = ("seq", "type", "data")

    def __init__(self, seq: int, rtype: str, data: Any) -> None:
        self.seq = seq
        self.type = rtype
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JournalRecord(seq={self.seq}, type={self.type!r})"


class Journal:
    """Append-only, CRC-framed, fsync'd JSONL journal writer.

    Parameters
    ----------
    path:
        Journal file.  Created on first append; reopened in append mode
        when resuming (see ``start_seq``).
    checkpoint_every:
        The engine writes a full checkpoint record every this many steps
        (>= 1).  Smaller values bound replay work after a crash at the
        cost of journal size.
    fsync:
        Fsync after every record (default).  Disable only for runs whose
        journal is merely diagnostic — a non-fsync'd journal can lose an
        arbitrary suffix on power failure.
    start_seq:
        Sequence number of the last already-present record (resume).
    """

    def __init__(
        self,
        path: str,
        *,
        checkpoint_every: int = 25,
        fsync: bool = True,
        start_seq: int = 0,
    ) -> None:
        if checkpoint_every < 1:
            raise JournalError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.path = str(path)
        self.checkpoint_every = int(checkpoint_every)
        self._fsync = bool(fsync)
        self._seq = int(start_seq)
        self._fh = None
        #: wall-clock seconds the most recent append took (write + fsync)
        self.last_append_s = 0.0
        #: EWMA of append latency — the service's journal-health signal
        self.append_latency_s = 0.0

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return self._seq

    def append(self, rtype: str, data: Any) -> int:
        """Write one framed record; returns its sequence number."""
        if self._fh is None:
            self._fh = open(self.path, "ab")
        self._seq += 1
        record = {
            "seq": self._seq,
            "type": rtype,
            "crc": _frame_crc(self._seq, rtype, data),
            "data": data,
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        started = time.perf_counter()
        self._fh.write(line.encode("utf-8"))
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        self.last_append_s = time.perf_counter() - started
        # EWMA with a short memory: a stalling disk is visible within a
        # handful of appends, one slow outlier decays quickly.
        self.append_latency_s = (
            0.8 * self.append_latency_s + 0.2 * self.last_append_s
        )
        return self._seq

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - convenience
        self.close()


def _parse_line(line: bytes, expected_seq: int) -> JournalRecord | None:
    """One framed record, or None if the line fails any framing check."""
    try:
        doc = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict):
        return None
    try:
        seq = int(doc["seq"])
        rtype = str(doc["type"])
        crc = int(doc["crc"])
        data = doc["data"]
    except (KeyError, TypeError, ValueError):
        return None
    if seq != expected_seq or crc != _frame_crc(seq, rtype, data):
        return None
    return JournalRecord(seq, rtype, data)


def _self_framed(line: bytes) -> bool:
    """Does ``line`` parse as a record whose CRC matches its *own*
    framing (any sequence number)?  Distinguishes intact records after a
    corruption from the random junk of a torn tail."""
    try:
        doc = json.loads(line.decode("utf-8"))
        return isinstance(doc, dict) and int(doc["crc"]) == _frame_crc(
            int(doc["seq"]), str(doc["type"]), doc["data"]
        )
    except (KeyError, TypeError, ValueError, UnicodeDecodeError):
        return False


def read_journal(
    path: str, *, truncate: bool = False
) -> tuple[list[JournalRecord], int, bool]:
    """Read the valid prefix of a journal.

    Returns ``(records, valid_bytes, clean)``: every record up to (not
    including) the first framing failure, the byte length of that valid
    prefix, and whether the file ended cleanly (no torn/corrupt tail).
    With ``truncate=True`` a torn tail is physically cut off, leaving the
    file ready for appending.

    A framing failure in the *trailing* record — the signature of a
    crash mid-``fsync`` — is tolerated with a logged warning, and the
    valid prefix ends at the last good record.  A framing failure
    *followed by intact records* is not a torn write: it means data in
    the middle of the journal is corrupt or missing, silently resuming
    from the last record before it would drop acknowledged history, so
    it raises :class:`~repro.errors.JournalError` naming the position.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path!r}: {exc}") from exc

    records: list[JournalRecord] = []
    valid_bytes = 0
    clean = True
    pos = 0
    while pos < len(raw):
        nl = raw.find(b"\n", pos)
        if nl < 0:  # torn final record: no newline made it to disk
            clean = False
            break
        rec = _parse_line(raw[pos:nl], expected_seq=len(records) + 1)
        if rec is None:  # corrupt frame: everything after needs a look
            clean = False
            break
        records.append(rec)
        pos = nl + 1
        valid_bytes = pos
    if not clean:
        # Mid-file corruption check: any intact, self-framed record
        # after the bad frame means this is not a torn tail.
        tail = raw[valid_bytes:]
        bad_end = tail.find(b"\n")
        rest = tail[bad_end + 1 :] if bad_end >= 0 else b""
        intact_after = sum(
            1 for line in rest.split(b"\n") if line and _self_framed(line)
        )
        if intact_after:
            raise JournalError(
                f"{path!r}: corrupt or missing record at seq "
                f"{len(records) + 1} (byte {valid_bytes}) is followed by "
                f"{intact_after} intact record(s) — mid-journal "
                "corruption, not a torn tail; refusing to silently drop "
                "acknowledged history"
            )
        logger.warning(
            "journal %s: torn trailing record at seq %d (byte %d) — "
            "tolerated; recovering from the last good record",
            path,
            len(records) + 1,
            valid_bytes,
        )
    if not clean and truncate:
        with open(path, "r+b") as fh:
            fh.truncate(valid_bytes)
    return records, valid_bytes, clean


def iter_records(
    records: list[JournalRecord], rtype: str
) -> Iterator[JournalRecord]:
    """The subset of ``records`` with the given type, in order."""
    return (r for r in records if r.type == rtype)


def state_digest(payload: Any) -> int:
    """CRC32 of the canonical JSON encoding of ``payload``.

    Used both for per-step engine digests and for spot-checking payload
    equality in diagnostics; ``json.dumps(sort_keys=True)`` makes it
    independent of dict insertion order and ``PYTHONHASHSEED``.
    """
    return (
        zlib.crc32(
            json.dumps(
                payload, sort_keys=True, separators=(",", ":"), default=int
            ).encode("utf-8")
        )
        & 0xFFFFFFFF
    )
