"""Supervised execution: runtime invariant monitors.

The engine proves scheduler output against the Section-2 constraints every
step (``check_allotments``); the supervisor goes further and watches the
*behavioural* invariants the theorems rest on, while the run is live:

* **feasibility** — allotments within desires and within the effective
  (possibly churned/degraded) per-category capacities;
* **work conservation** — a category never leaves processors idle while
  some job's desire for it is unmet (the premise of Lemma 2's accounting);
* **RAD batching** (Lemma 4's squashed-sum argument) — once a category has
  at least ``P_alpha(t)`` active jobs the category is saturated, and while
  a round-robin cycle is open every allotment in it is a single processor;
* **checkpoint determinism** — periodically snapshots the run twice and
  requires bit-identical payloads, so a checkpoint written to the journal
  is guaranteed to be a pure function of state.

A :class:`Supervisor` bundles monitors with a failure *mode*:

* ``strict`` — any violation raises
  :class:`~repro.errors.InvariantViolation` naming the step, monitor,
  job and category: the run is wrong, stop it;
* ``resilient`` — the violation becomes a structured
  :class:`Incident`; if it is attributable to one job, that job is
  **quarantined** (removed from the live set, reported in
  ``SimulationResult.quarantined_jobs``) and the run degrades gracefully.
  Quarantined jobs leave the live set entirely, so stall accounting stays
  honest — a run whose remaining jobs are all quarantined terminates
  instead of stalling.

Monitors see a read-only :class:`StepView` of the step the engine just
executed.  They must not mutate anything.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import InvariantViolation, SimulationError

__all__ = [
    "StepView",
    "Violation",
    "Incident",
    "Monitor",
    "FeasibilityMonitor",
    "WorkConservationMonitor",
    "RadBatchingMonitor",
    "CheckpointDeterminismMonitor",
    "ScriptedViolation",
    "Supervisor",
    "default_monitors",
]


@dataclass(frozen=True)
class StepView:
    """Read-only snapshot of one executed step, handed to monitors.

    ``capacities`` are the *effective* per-category counts of this step
    (after churn/degradation), which is what feasibility means at runtime;
    the nominal machine is available via ``nominal_capacities``.
    ``checkpoint`` is a zero-argument callable returning the simulator's
    checkpoint payload (``None`` when checkpointing is unavailable).
    """

    t: int
    capacities: tuple[int, ...]
    nominal_capacities: tuple[int, ...]
    desires: Mapping[int, Any]
    allotments: Mapping[int, Any]
    executed: Mapping[int, list[list[int]]]
    scheduler: Any
    checkpoint: Callable[[], dict] | None = None


@dataclass(frozen=True)
class Violation:
    """One invariant breach, as reported by a monitor."""

    monitor: str
    message: str
    job_id: int | None = None
    category: int | None = None


@dataclass(frozen=True)
class Incident:
    """A violation the supervisor absorbed in ``resilient`` mode.

    ``action`` records what the engine did: ``"quarantined"`` (the
    offending job was pulled from the live set) or ``"logged"`` (not
    attributable to a single job; the run continues unchanged).
    """

    step: int
    monitor: str
    message: str
    job_id: int | None = None
    category: int | None = None
    action: str = "logged"

    def to_dict(self) -> dict[str, Any]:
        return {
            "step": self.step,
            "monitor": self.monitor,
            "message": self.message,
            "job_id": self.job_id,
            "category": self.category,
            "action": self.action,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Incident":
        return cls(
            step=int(data["step"]),
            monitor=str(data["monitor"]),
            message=str(data["message"]),
            job_id=(
                None if data.get("job_id") is None else int(data["job_id"])
            ),
            category=(
                None
                if data.get("category") is None
                else int(data["category"])
            ),
            action=str(data.get("action", "logged")),
        )


class Monitor:
    """Base class for pluggable runtime invariant monitors.

    Subclasses set :attr:`name`, implement :meth:`check` and describe
    their configuration in :meth:`spec` so a supervisor can be rebuilt
    from journal metadata (:func:`monitor_from_spec`).
    """

    name: str = "abstract"

    def check(self, view: StepView) -> list[Violation]:
        """Return every invariant breach visible in ``view`` (or [])."""
        raise NotImplementedError

    def spec(self) -> dict[str, Any]:
        """Serialisable ``{"kind": ..., **params}`` descriptor."""
        return {"kind": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _alloc_list(vec, k: int) -> list[int]:
    lst = vec.tolist() if hasattr(vec, "tolist") else list(vec)
    return [int(v) for v in lst] if len(lst) == k else []


class FeasibilityMonitor(Monitor):
    """Allotment <= desire per job; category totals <= effective P_alpha."""

    name = "feasibility"

    def check(self, view: StepView) -> list[Violation]:
        k = len(view.capacities)
        out: list[Violation] = []
        totals = [0] * k
        top: list[tuple[int, int]] = [(-1, -1)] * k  # (alloc, jid) maxima
        for jid, alloc in view.allotments.items():
            a = _alloc_list(alloc, k)
            if not a:
                out.append(
                    Violation(
                        self.name,
                        f"step {view.t}: job {jid} allotment has wrong "
                        f"arity (expected K={k})",
                        job_id=jid,
                    )
                )
                continue
            d = _alloc_list(view.desires.get(jid, ()), k) or [0] * k
            for alpha in range(k):
                if a[alpha] < 0 or a[alpha] > d[alpha]:
                    out.append(
                        Violation(
                            self.name,
                            f"step {view.t}: job {jid} category {alpha} "
                            f"allotment {a[alpha]} outside [0, desire "
                            f"{d[alpha]}]",
                            job_id=jid,
                            category=alpha,
                        )
                    )
                totals[alpha] += a[alpha]
                if a[alpha] > top[alpha][0]:
                    top[alpha] = (a[alpha], jid)
        for alpha in range(k):
            if totals[alpha] > view.capacities[alpha]:
                # Blame the largest allotment in the over-full category —
                # quarantining it restores feasibility fastest.
                out.append(
                    Violation(
                        self.name,
                        f"step {view.t}: category {alpha} total allotment "
                        f"{totals[alpha]} exceeds effective capacity "
                        f"{view.capacities[alpha]}",
                        job_id=top[alpha][1] if top[alpha][1] >= 0 else None,
                        category=alpha,
                    )
                )
        return out


class WorkConservationMonitor(Monitor):
    """No idle alpha-processor while some job's alpha-desire is unmet."""

    name = "work-conservation"

    def check(self, view: StepView) -> list[Violation]:
        k = len(view.capacities)
        out: list[Violation] = []
        totals = [0] * k
        for alloc in view.allotments.values():
            for alpha, a in enumerate(_alloc_list(alloc, k)):
                totals[alpha] += a
        for alpha in range(k):
            spare = view.capacities[alpha] - totals[alpha]
            if spare <= 0:
                continue
            for jid, d in view.desires.items():
                desire = _alloc_list(d, k)
                got = _alloc_list(
                    view.allotments.get(jid, [0] * k), k
                )
                if desire[alpha] > got[alpha]:
                    out.append(
                        Violation(
                            self.name,
                            f"step {view.t}: category {alpha} left "
                            f"{spare} processor(s) idle while job {jid} "
                            f"desired {desire[alpha]} and got "
                            f"{got[alpha]}",
                            job_id=jid,
                            category=alpha,
                        )
                    )
                    break  # one starved witness per category suffices
        return out


class RadBatchingMonitor(Monitor):
    """Lemma-4 invariants of the RAD DEQ/RR state machine.

    Applies only when the run's scheduler exposes per-category RAD state
    (``category_state``); silently inert otherwise.  Two checks:

    * **saturation** — with at least ``P_alpha(t)`` alpha-active jobs,
      the category allots exactly ``P_alpha(t)`` processors (the squashed
      sum accounts every processor-step);
    * **unit batching** — while a round-robin cycle is open after the
      step, every allotment the category granted is at most one
      processor (cycles serve batches of single processors).
    """

    name = "rad-batching"

    def check(self, view: StepView) -> list[Violation]:
        get_state = getattr(view.scheduler, "category_state", None)
        if get_state is None:
            return []
        k = len(view.capacities)
        out: list[Violation] = []
        for alpha in range(k):
            cap = view.capacities[alpha]
            if cap <= 0:
                continue
            active = [
                jid
                for jid, d in view.desires.items()
                if _alloc_list(d, k)[alpha] > 0
            ]
            allocs = {
                jid: _alloc_list(a, k)[alpha]
                for jid, a in view.allotments.items()
            }
            total = sum(allocs.values())
            if len(active) >= cap and total != cap:
                out.append(
                    Violation(
                        self.name,
                        f"step {view.t}: category {alpha} has "
                        f"{len(active)} active jobs >= P={cap} but allots "
                        f"{total} (squashed-sum saturation violated)",
                        category=alpha,
                    )
                )
            try:
                in_cycle = get_state(alpha).in_rr_cycle()
            except Exception:
                continue
            if in_cycle:
                for jid, a in allocs.items():
                    if a > 1:
                        out.append(
                            Violation(
                                self.name,
                                f"step {view.t}: category {alpha} is "
                                f"mid round-robin cycle but job {jid} "
                                f"got {a} > 1 processors",
                                job_id=jid,
                                category=alpha,
                            )
                        )
        return out


class CheckpointDeterminismMonitor(Monitor):
    """Every ``period`` steps, checkpoint twice and require identity.

    A checkpoint that is not a pure function of run state cannot give
    bit-for-bit recovery; this catches e.g. set-ordering leaks before a
    corrupt snapshot reaches the journal.
    """

    name = "checkpoint-determinism"

    def __init__(self, period: int = 50) -> None:
        if period < 1:
            raise SimulationError(
                f"checkpoint determinism period must be >= 1, got {period}"
            )
        self.period = int(period)

    def spec(self) -> dict[str, Any]:
        return {"kind": self.name, "period": self.period}

    def check(self, view: StepView) -> list[Violation]:
        if view.checkpoint is None or view.t % self.period != 0:
            return []
        first = json.dumps(view.checkpoint(), sort_keys=True)
        second = json.dumps(view.checkpoint(), sort_keys=True)
        if first != second:
            return [
                Violation(
                    self.name,
                    f"step {view.t}: two consecutive checkpoints of the "
                    f"same state differ (crc "
                    f"{zlib.crc32(first.encode()):08x} vs "
                    f"{zlib.crc32(second.encode()):08x}) — snapshot is "
                    "not deterministic",
                )
            ]
        return []


class ScriptedViolation(Monitor):
    """Fire a synthetic violation for ``job_id`` at ``step``.

    The deterministic fault for supervision drills: chaos tests and the
    ``krad supervise --inject-violation`` flag use it to prove the
    quarantine path end to end without corrupting a real scheduler.
    """

    name = "scripted-violation"

    def __init__(self, step: int, job_id: int, category: int = 0) -> None:
        if step < 1:
            raise SimulationError(
                f"scripted violation step must be >= 1, got {step}"
            )
        self.step = int(step)
        self.job_id = int(job_id)
        self.category = int(category)

    def spec(self) -> dict[str, Any]:
        return {
            "kind": self.name,
            "step": self.step,
            "job_id": self.job_id,
            "category": self.category,
        }

    def check(self, view: StepView) -> list[Violation]:
        if view.t != self.step or self.job_id not in view.desires:
            return []
        return [
            Violation(
                self.name,
                f"step {view.t}: injected violation for job "
                f"{self.job_id} (drill)",
                job_id=self.job_id,
                category=self.category,
            )
        ]


def default_monitors() -> list[Monitor]:
    """The always-on invariant set: feasibility, work conservation, RAD
    batching."""
    return [
        FeasibilityMonitor(),
        WorkConservationMonitor(),
        RadBatchingMonitor(),
    ]


_MONITOR_KINDS: dict[str, Callable[..., Monitor]] = {
    FeasibilityMonitor.name: FeasibilityMonitor,
    WorkConservationMonitor.name: WorkConservationMonitor,
    RadBatchingMonitor.name: RadBatchingMonitor,
    CheckpointDeterminismMonitor.name: CheckpointDeterminismMonitor,
    ScriptedViolation.name: ScriptedViolation,
}


def monitor_from_spec(spec: Mapping[str, Any]) -> Monitor:
    """Rebuild a monitor from its :meth:`Monitor.spec` descriptor."""
    kind = spec.get("kind")
    if kind not in _MONITOR_KINDS:
        raise SimulationError(f"unknown monitor kind {kind!r}")
    params = {k: v for k, v in spec.items() if k != "kind"}
    return _MONITOR_KINDS[kind](**params)


class Supervisor:
    """Bundle of monitors plus the strict/resilient failure policy.

    The supervisor itself is stateless across steps — incidents live in
    the engine's (checkpointable) run state — so one instance may be
    reused across runs and survives :meth:`Simulator.recover` via its
    :meth:`to_dict` descriptor in journal metadata.
    """

    MODES = ("strict", "resilient")

    def __init__(
        self,
        monitors: list[Monitor] | None = None,
        *,
        mode: str = "resilient",
    ) -> None:
        if mode not in self.MODES:
            raise SimulationError(
                f"supervisor mode must be one of {self.MODES}, got {mode!r}"
            )
        self.mode = mode
        self.monitors = (
            default_monitors() if monitors is None else list(monitors)
        )

    # ------------------------------------------------------------------
    def observe(self, view: StepView) -> list[Violation]:
        """Evaluate every monitor against one executed step.

        In ``strict`` mode the first violation raises
        :class:`InvariantViolation`; in ``resilient`` mode all violations
        are returned for the engine to quarantine/log.
        """
        violations: list[Violation] = []
        for monitor in self.monitors:
            violations.extend(monitor.check(view))
        if violations and self.mode == "strict":
            v = violations[0]
            raise InvariantViolation(
                f"invariant {v.monitor!r} violated at step {view.t}"
                + (f" by job {v.job_id}" if v.job_id is not None else "")
                + (
                    f" in category {v.category}"
                    if v.category is not None
                    else ""
                )
                + f": {v.message}",
                step=view.t,
                monitor=v.monitor,
                job_id=v.job_id,
                category=v.category,
            )
        return violations

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "supervisor",
            "version": 1,
            "mode": self.mode,
            "monitors": [m.spec() for m in self.monitors],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Supervisor":
        from repro.errors import SerializationError

        if (
            not isinstance(data, Mapping)
            or data.get("format") != "supervisor"
        ):
            raise SerializationError("expected a supervisor document")
        if data.get("version") != 1:
            raise SerializationError(
                f"unsupported supervisor version {data.get('version')!r}"
            )
        return cls(
            [monitor_from_spec(s) for s in data["monitors"]],
            mode=str(data["mode"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(m.name for m in self.monitors)
        return f"Supervisor(mode={self.mode!r}, monitors=[{names}])"
