"""Randomized K-RAD — defeating the oblivious adversary.

Theorem 1's ``K + 1 - 1/Pmax`` lower bound is for *deterministic*
schedulers: the adversary inspects the algorithm and places the critical job
exactly where it will be served last.  Against randomized algorithms the
paper cites the weaker ``2 - 1/sqrt(P)`` lower bound of Shmoys et al.
(FOCS'91) for K = 1 — randomization provably helps.

:class:`RandomizedKRad` is K-RAD with one change: newly arrived jobs enter
each category's service queue at a *uniformly random position* instead of
the back.  Against an oblivious adversary (the Figure-3 instance fixed in
advance), the special job's first task is now served after ~n/(2*P_1) RR
steps in expectation instead of n/P_1, cutting the expected level-1 delay in
half; the ``exp_randomized`` experiment measures the resulting expected
ratio sitting strictly below the deterministic forced ratio.

All worst-case guarantees of K-RAD still hold per realisation (the queue
discipline stays a valid RAD order), so this is a free win against fixed
instances — the classic price is that a *adaptive* adversary could re-derive
the bound against any fixed random seed.
"""

from __future__ import annotations

import numpy as np

from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler
from repro.schedulers.rad import RadCategoryState

__all__ = ["RandomizedKRad"]


class _RandomInsertState(RadCategoryState):
    """RAD category state whose newcomers land at random queue positions."""

    __slots__ = ("_rng",)

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self._rng = rng

    def register(self, job_ids) -> None:
        for jid in job_ids:
            if jid not in self._seen:
                self._seen.add(jid)
                pos = int(self._rng.integers(0, len(self._order) + 1))
                self._order.insert(pos, jid)


class RandomizedKRad(Scheduler):
    """K-RAD with uniformly random queue insertion (seeded, reproducible)."""

    name = "k-rad-random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = int(seed)
        self._states: list[_RandomInsertState] = []

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        root = np.random.SeedSequence(self._seed)
        self._states = [
            _RandomInsertState(np.random.default_rng(child))
            for child in root.spawn(machine.num_categories)
        ]

    def category_state(self, alpha: int) -> RadCategoryState:
        return self._states[alpha]

    def state_dict(self) -> dict:
        return {
            "states": [s.state_dict() for s in self._states],
            "rng": [s._rng.bit_generator.state for s in self._states],
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["states"]) != len(self._states):
            from repro.errors import ScheduleError

            raise ScheduleError(
                f"checkpoint has {len(state['states'])} categories, "
                f"scheduler has {len(self._states)}"
            )
        for s, data, rng_state in zip(
            self._states, state["states"], state["rng"]
        ):
            s.load_state_dict(data)
            s._rng.bit_generator.state = rng_state

    def allocate(self, t, desires, jobs=None):
        machine = self.machine
        k = machine.num_categories
        out: dict[int, np.ndarray] = {}  # sparse: zero rows omitted
        alive = desires.keys()
        for alpha, state in enumerate(self._states):
            state.register(alive)
            state.prune(alive)
            flat = {jid: int(d[alpha]) for jid, d in desires.items()}
            alloc = state.allocate(flat, machine.capacity(alpha))
            for jid, a in alloc.items():
                if a:
                    row = out.get(jid)
                    if row is None:
                        row = out[jid] = np.zeros(k, dtype=np.int64)
                    row[alpha] = a
        return out
