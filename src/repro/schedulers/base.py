"""Scheduler interface.

A scheduler maps per-job desires to per-job allotments, once per time step
and per category, subject to the capacity ``sum_i a(Ji, alpha, t) <= P_alpha``
and the productivity constraint ``a(Ji, alpha, t) <= d(Ji, alpha, t)``.

**Non-clairvoyance is enforced by construction**: ``allocate`` receives only
the desire vectors of released, uncompleted jobs (in arrival order) — never
release times, work, spans or DAG structure.  Clairvoyant baselines set
``clairvoyant = True`` and additionally receive the live job objects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from repro.errors import ScheduleError
from repro.jobs.base import Job
from repro.machine.machine import KResourceMachine

__all__ = ["Scheduler", "check_allotments"]


class Scheduler(ABC):
    """Base class for all allotment policies."""

    #: short name used in reports, tables and the CLI
    name: str = "abstract"

    #: clairvoyant schedulers get the live job objects in ``allocate``
    clairvoyant: bool = False

    def __init__(self) -> None:
        self._machine: KResourceMachine | None = None

    @property
    def machine(self) -> KResourceMachine:
        if self._machine is None:
            raise ScheduleError(
                f"{type(self).__name__} not bound to a machine; call reset()"
            )
        return self._machine

    @classmethod
    def from_name(cls, name: str) -> "Scheduler":
        """Instantiate a registered scheduler by its short ``name``.

        The single resolution point shared by the CLI ``--scheduler``
        flags, trace replay, and the arena registry: all of them accept
        exactly the names in :meth:`known_names` and raise the same
        ``ValueError`` listing the choices.  Imports lazily to keep the
        base module free of a package cycle.
        """
        from repro.schedulers import scheduler_by_name

        return scheduler_by_name(name)

    @classmethod
    def known_names(cls) -> list[str]:
        """Sorted short names accepted by :meth:`from_name`."""
        from repro.schedulers import scheduler_names

        return scheduler_names()

    def reset(self, machine: KResourceMachine) -> None:
        """Bind to a machine and clear all per-run state.

        Subclasses overriding this must call ``super().reset(machine)``.
        """
        self._machine = machine

    def rebind(self, machine: KResourceMachine) -> None:
        """Point at a new machine view *without* clearing state.

        Used by the engine for time-varying capacities (failure injection):
        queue orders, marks and estimates survive; only the capacities the
        next ``allocate`` sees change.  The category count must match.
        """
        if (
            self._machine is not None
            and machine.num_categories != self._machine.num_categories
        ):
            raise ScheduleError(
                "rebind cannot change the number of categories "
                f"({self._machine.num_categories} -> {machine.num_categories})"
            )
        self._machine = machine

    def notify_capacity_change(
        self,
        old_capacities: tuple[int, ...],
        new_capacities: tuple[int, ...],
    ) -> None:
        """Hook fired by the engine when the effective capacities change.

        Called once per boundary crossing (churn events, degradation
        windows opening/closing), *before* the rebind to the resized view.
        The default is a no-op; stateful schedulers override it to migrate
        capacity-dependent state — e.g. RAD re-batches an open round-robin
        cycle on shrink and absorbs it back into DEQ on growth.
        """

    # ------------------------------------------------------------------
    # observability surface (read-only; never affects allocation)
    # ------------------------------------------------------------------
    def obs_rr_depths(self) -> list[int] | None:
        """Per-category open round-robin cycle depths, or ``None``.

        Schedulers with a DEQ/RR state machine (RAD, K-RAD) report how
        many jobs are marked in each category's open cycle so the
        observability layer can sample queue depth per step.  The
        default ``None`` means "no such state" and records nothing.
        """
        return None

    def obs_transitions(self) -> list[dict[str, int]] | None:
        """Per-category DEQ<->RR transition totals, or ``None``.

        Cumulative counts per transition kind (see
        :attr:`~repro.schedulers.rad.RadCategoryState.TRANSITION_KINDS`);
        the observability layer diffs consecutive snapshots to emit
        transition events and exports the totals at run end.
        """
        return None

    # ------------------------------------------------------------------
    # checkpoint surface
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable per-run state for checkpoint/resume.

        Convention: per-run state is established in :meth:`reset`, so a
        scheduler that does not override ``reset`` is stateless and the
        base implementation returns ``{}``.  A scheduler that *does*
        override ``reset`` must also override ``state_dict`` and
        :meth:`load_state_dict` — otherwise resumed runs would silently
        diverge, so the base raises instead.
        """
        if type(self).reset is not Scheduler.reset:
            raise ScheduleError(
                f"{type(self).__name__} keeps per-run state but does not "
                "implement state_dict/load_state_dict; checkpointing is "
                "unsupported for it"
            )
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (call after ``reset``)."""
        if type(self).reset is not Scheduler.reset:
            raise ScheduleError(
                f"{type(self).__name__} keeps per-run state but does not "
                "implement state_dict/load_state_dict; checkpointing is "
                "unsupported for it"
            )
        if state:
            raise ScheduleError(
                f"stateless scheduler {type(self).__name__} given state "
                f"keys {sorted(state)}"
            )

    @abstractmethod
    def allocate(
        self,
        t: int,
        desires: Mapping[int, np.ndarray],
        jobs: Mapping[int, Job] | None = None,
    ) -> dict[int, np.ndarray]:
        """Compute allotments for step ``t``.

        Parameters
        ----------
        t:
            The current time step (1-based, matching the paper).
        desires:
            ``job_id -> d(Ji, *, t)`` for every released, uncompleted job,
            in arrival order.  Jobs with an all-zero desire vector still
            appear (they exist but have no ready task this step — this can
            not happen for DAG/phase jobs, whose uncompleted state always
            desires something, but the interface allows it).
        jobs:
            Live job objects; only passed when ``self.clairvoyant``.

        Returns
        -------
        dict
            ``job_id -> allotment vector``; ids may be omitted (treated as
            zero allotment).  Must satisfy the capacity and productivity
            constraints — the engine verifies via :func:`check_allotments`.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def check_allotments(
    machine: KResourceMachine,
    desires: Mapping[int, np.ndarray],
    allotments: Mapping[int, np.ndarray],
) -> None:
    """Verify scheduler output; raise :class:`ScheduleError` on violation.

    Checks (paper Section 2): only known jobs are allotted, allotments are
    non-negative and at most the desire, and per-category totals respect
    ``P_alpha``.

    Implementation note: this runs once per simulated step on every job, so
    it deliberately works on plain Python ints — per-array numpy calls here
    dominated whole-simulation profiles (see DESIGN.md performance notes).
    """
    k = machine.num_categories
    totals = [0] * k
    for job_id, alloc in allotments.items():
        d = desires.get(job_id)
        if d is None:
            raise ScheduleError(f"allotment for unknown job {job_id}")
        alloc_list = alloc.tolist() if hasattr(alloc, "tolist") else list(alloc)
        if len(alloc_list) != k:
            raise ScheduleError(
                f"job {job_id}: allotment length {len(alloc_list)}, "
                f"expected {k}"
            )
        d_list = d.tolist() if hasattr(d, "tolist") else list(d)
        for alpha in range(k):
            a = alloc_list[alpha]
            if a < 0:
                raise ScheduleError(
                    f"job {job_id}: negative allotment {alloc_list}"
                )
            if a > d_list[alpha]:
                raise ScheduleError(
                    f"job {job_id}: allotment {alloc_list} exceeds desire "
                    f"{d_list}"
                )
            totals[alpha] += a
    for alpha, cap in enumerate(machine.capacities):
        if totals[alpha] > cap:
            raise ScheduleError(
                f"total allotment {totals} exceeds capacities "
                f"{machine.capacities}"
            )
