"""Pure round-robin baseline (Motwani et al.'s RR, lifted to K resources).

Every category runs perpetual round-robin cycles: each step, the first
``P_alpha`` unmarked active jobs get exactly one processor; when unmarked
jobs run out, the cycle restarts.  Unlike RAD, RR never space-shares — a job
with desire 50 on an idle 64-processor category still receives one processor.
RR is 2-competitive for mean response time on K = 1 (the online optimum for
that metric) but pays heavily in makespan; the baseline benches show exactly
this trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler

__all__ = ["KRoundRobin"]


class _RRState:
    __slots__ = ("order", "seen", "marked")

    def __init__(self) -> None:
        self.order: list[int] = []
        self.seen: set[int] = set()
        self.marked: set[int] = set()


class KRoundRobin(Scheduler):
    """Time-share every category one processor at a time, FIFO cycles."""

    name = "k-rr"

    def __init__(self) -> None:
        super().__init__()
        self._states: list[_RRState] = []

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        self._states = [_RRState() for _ in range(machine.num_categories)]

    def state_dict(self) -> dict:
        return {
            "states": [
                {"order": list(st.order), "marked": sorted(st.marked)}
                for st in self._states
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        for st, data in zip(self._states, state["states"], strict=True):
            st.order = [int(j) for j in data["order"]]
            st.seen = set(st.order)
            st.marked = {int(j) for j in data["marked"]}

    def allocate(self, t, desires, jobs=None):
        machine = self.machine
        k = machine.num_categories
        out: dict[int, np.ndarray] = {}  # sparse: zero rows omitted
        for alpha, st in enumerate(self._states):
            for jid in desires:
                if jid not in st.seen:
                    st.seen.add(jid)
                    st.order.append(jid)
            if len(st.order) > len(desires):
                st.order = [j for j in st.order if j in desires]
                st.seen.intersection_update(desires.keys())
                st.marked.intersection_update(desires.keys())
            cap = machine.capacity(alpha)
            active = [j for j in st.order if desires[j][alpha] > 0]
            if not active:
                continue
            unmarked = [j for j in active if j not in st.marked]
            if len(unmarked) < cap:
                # cycle complete: clear marks and restart with all actives
                st.marked.clear()
                unmarked = active
            chosen = unmarked[:cap]
            st.marked.update(chosen)
            chosen_set = set(chosen)
            st.order = [j for j in st.order if j not in chosen_set] + chosen
            for jid in chosen:
                row = out.get(jid)
                if row is None:
                    row = out[jid] = np.zeros(k, dtype=np.int64)
                row[alpha] = 1
        return out
