"""SETF — shortest elapsed time first (non-clairvoyant SRPT proxy).

A classic non-clairvoyant response-time heuristic: without knowing remaining
work, favour the jobs that have *received the least service so far* — young
jobs are statistically small, so finishing them first approximates SRPT.
Here "service" is total processor-steps granted across all categories;
allocation is greedy full-desire in ascending-service order.

SETF shines on heavy-tailed mixes (mice finish before the elephants soak
up service) and pays on makespan when it defers wide old jobs; the APPS and
FAIR comparisons quantify both sides.  Unlike round-robin it needs no
cycle bookkeeping, and unlike FCFS it cannot starve newcomers.
"""

from __future__ import annotations

import numpy as np

from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler

__all__ = ["Setf"]


class Setf(Scheduler):
    """Least-total-service-first, greedy full-desire allocation."""

    name = "setf"

    def __init__(self) -> None:
        super().__init__()
        self._service: dict[int, int] = {}

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        self._service = {}

    def state_dict(self) -> dict:
        return {"service": {str(j): s for j, s in self._service.items()}}

    def load_state_dict(self, state: dict) -> None:
        self._service = {
            int(j): int(s) for j, s in state["service"].items()
        }

    def allocate(self, t, desires, jobs=None):
        machine = self.machine
        k = machine.num_categories
        for jid in desires:
            self._service.setdefault(jid, 0)
        if len(self._service) > len(desires):
            self._service = {
                jid: s for jid, s in self._service.items() if jid in desires
            }
        # ascending service; ties broken by arrival (dict order via id list)
        order = sorted(desires, key=lambda jid: (self._service[jid], jid))
        remaining = list(machine.capacities)
        out: dict[int, np.ndarray] = {}
        for jid in order:
            d = desires[jid]
            row = None
            granted = 0
            for alpha in range(k):
                a = min(int(d[alpha]), remaining[alpha])
                if a > 0:
                    if row is None:
                        row = out[jid] = np.zeros(k, dtype=np.int64)
                    row[alpha] = a
                    remaining[alpha] -= a
                    granted += a
            if granted:
                self._service[jid] += granted
        return out
