"""Clairvoyant baselines — the "optimal scheduler S" stand-ins.

The true offline optimum is NP-hard, but the paper's proofs only ever need
two concrete clairvoyant behaviours, both implemented here:

* :class:`ClairvoyantCriticalPath` — serve jobs by *largest remaining
  critical path* first, full desire, greedy per category.  Paired with the
  ``CriticalPathFirst`` execution policy this realises the optimal schedule
  the Theorem-1 proof describes for the Figure-3 instance (it unblocks every
  level of the special job immediately and perfectly overlaps the chain with
  the residual level-K work), and is a strong T* stand-in elsewhere.

* :class:`ClairvoyantSrpt` — smallest *remaining total work* first, the
  classic mean-response-time heuristic (SRPT is optimal for sequential jobs
  on one machine); used as the clairvoyant reference in the response-time
  benches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScheduleError
from repro.schedulers.base import Scheduler

__all__ = ["ClairvoyantCriticalPath", "ClairvoyantSrpt"]


class _PriorityGreedy(Scheduler):
    """Greedy full-desire allocation in a clairvoyant priority order."""

    clairvoyant = True

    def _priority(self, jid: int, job) -> tuple:
        raise NotImplementedError

    def allocate(self, t, desires, jobs=None):
        if jobs is None:
            raise ScheduleError(
                f"{type(self).__name__} is clairvoyant and needs job objects"
            )
        machine = self.machine
        k = machine.num_categories
        out = {jid: np.zeros(k, dtype=np.int64) for jid in desires}
        order = sorted(desires, key=lambda jid: self._priority(jid, jobs[jid]))
        remaining = list(machine.capacities)
        for jid in order:
            d = desires[jid]
            for alpha in range(k):
                a = min(int(d[alpha]), remaining[alpha])
                if a > 0:
                    out[jid][alpha] = a
                    remaining[alpha] -= a
        return out


class ClairvoyantCriticalPath(_PriorityGreedy):
    """Longest-remaining-critical-path-first, full desire."""

    name = "cv-critical-path"

    def _priority(self, jid, job):
        return (-job.remaining_span(), jid)


class ClairvoyantSrpt(_PriorityGreedy):
    """Smallest-remaining-total-work-first, full desire."""

    name = "cv-srpt"

    def _priority(self, jid, job):
        return (int(job.remaining_work_vector().sum()), jid)
