"""DAG-shop baseline: one task per job per step (Related Work positioning).

The paper positions the K-resource model against job-shop/DAG-shop
scheduling (Shmoys, Stein & Wein), where a job's tasks may be ordered by an
arbitrary partial order but **no two tasks of the same job run
concurrently**.  This scheduler enforces that restriction: each step every
job receives at most one processor in total, on its lowest-index category
with ready work and spare capacity, in FIFO rotation.

It is the strongest scheduler obeying the shop constraint that our model
can express, so the gap to K-RAD on parallel jobs quantifies exactly what
the K-DAG model's intra-job parallelism buys — the paper's motivation for
departing from shop scheduling.
"""

from __future__ import annotations

import numpy as np

from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler

__all__ = ["DagShopScheduler"]


class DagShopScheduler(Scheduler):
    """FIFO-rotating, one-processor-per-job shop scheduler."""

    name = "dag-shop"

    def __init__(self) -> None:
        super().__init__()
        self._order: list[int] = []
        self._seen: set[int] = set()

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        self._order = []
        self._seen = set()

    def state_dict(self) -> dict:
        return {"order": list(self._order)}

    def load_state_dict(self, state: dict) -> None:
        self._order = [int(j) for j in state["order"]]
        self._seen = set(self._order)

    def allocate(self, t, desires, jobs=None):
        machine = self.machine
        k = machine.num_categories
        for jid in desires:
            if jid not in self._seen:
                self._seen.add(jid)
                self._order.append(jid)
        if len(self._order) > len(desires):
            self._order = [j for j in self._order if j in desires]
            self._seen.intersection_update(desires.keys())
        remaining = list(machine.capacities)
        out: dict[int, np.ndarray] = {}
        served: list[int] = []
        for jid in self._order:
            d = desires[jid]
            for alpha in range(k):
                if d[alpha] > 0 and remaining[alpha] > 0:
                    alloc = np.zeros(k, dtype=np.int64)
                    alloc[alpha] = 1
                    out[jid] = alloc
                    remaining[alpha] -= 1
                    served.append(jid)
                    break  # shop constraint: one processor per job
        if served:
            served_set = set(served)
            self._order = [j for j in self._order if j not in served_set] + [
                j for j in self._order if j in served_set
            ]
        return out
