"""Greedy first-come-first-served baseline.

Serves jobs in arrival order, giving each its full desire until the category
runs out of processors.  Maximally work-conserving and maximally unfair: a
wide early job monopolises a category and late jobs starve until it finishes.
Good makespan on work-bound instances, terrible mean response time — the
opposite corner of the design space from round-robin.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler

__all__ = ["GreedyFcfs"]


class GreedyFcfs(Scheduler):
    """FCFS, full-desire-first allocation per category."""

    name = "greedy-fcfs"

    def allocate(self, t, desires, jobs=None):
        machine = self.machine
        k = machine.num_categories
        out: dict[int, np.ndarray] = {}  # sparse: zero rows omitted
        remaining = list(machine.capacities)
        for jid, d in desires.items():  # arrival order
            for alpha in range(k):
                if remaining[alpha] <= 0:
                    continue
                a = min(int(d[alpha]), remaining[alpha])
                if a > 0:
                    row = out.get(jid)
                    if row is None:
                        row = out[jid] = np.zeros(k, dtype=np.int64)
                    row[alpha] = a
                    remaining[alpha] -= a
        return out
