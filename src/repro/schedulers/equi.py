"""EQUI baseline: oblivious equal partitioning (Edmonds et al., STOC'97).

EQUI splits each category's processors equally among its active jobs without
looking at desires; a job that cannot use its share simply wastes it (the
allotment is capped at the desire to respect the model, but the unused
processors are *not* redistributed).  Edmonds et al. proved EQUI is
``(2 + sqrt 3)``-competitive for mean response time on K = 1; the waste is
what DEQ's desire-awareness removes, and the baseline benches quantify it.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler

__all__ = ["Equi"]


class Equi(Scheduler):
    """Equal split per category, desire-capped, no redistribution."""

    name = "equi"

    def allocate(self, t, desires, jobs=None):
        machine = self.machine
        k = machine.num_categories
        out: dict[int, np.ndarray] = {}  # sparse: zero rows omitted
        for alpha in range(k):
            active = [j for j, d in desires.items() if d[alpha] > 0]
            if not active:
                continue
            cap = machine.capacity(alpha)
            share = cap // len(active)
            extra = cap - share * len(active)
            for idx, jid in enumerate(active):
                # The first `extra` active jobs get the rounding surplus;
                # with fewer jobs than processors every job gets >= 1.
                quota = share + (1 if idx < extra else 0)
                granted = min(quota, int(desires[jid][alpha]))
                if granted:
                    row = out.get(jid)
                    if row is None:
                        row = out[jid] = np.zeros(k, dtype=np.int64)
                    row[alpha] = granted
        return out
