"""Dynamic equi-partitioning (DEQ) — the space-sharing half of RAD.

``deq_allocate`` implements the recursive procedure of Figure 2 with integer
processors:

1. every job desiring at most the fair share ``P / |Q|`` is *satisfied*
   (gets exactly its desire);
2. the freed capacity is re-partitioned among the remaining (*deprived*)
   jobs, recursively;
3. when no job is below the fair share, the deprived jobs split the capacity
   equally — the *mean deprived allotment* — with the integer remainder
   going to the earliest jobs in queue order (allotments differ by <= 1).

The function is also well-defined when ``|Q| > P`` (fair share 0): the first
``P`` jobs in queue order get one processor each, which is what the DEQ-only
baseline degenerates to under heavy load.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.jobs.base import Job
from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler

__all__ = ["deq_allocate", "KDeq"]


def deq_allocate(
    queue: Sequence[int], desires: Mapping[int, int], capacity: int
) -> dict[int, int]:
    """Partition ``capacity`` processors among ``queue`` by DEQ.

    Parameters
    ----------
    queue:
        Job ids in queue order (earliest first); order decides who receives
        the integer remainder.
    desires:
        ``job_id -> desire`` for this category; every queued job must have a
        strictly positive desire (it is *active* by definition).
    capacity:
        ``P_alpha`` processors to distribute.

    Returns
    -------
    dict
        ``job_id -> allotment`` with ``0 <= allotment <= desire`` and total
        at most ``capacity``.
    """
    if capacity < 0:
        raise ScheduleError(f"capacity must be >= 0, got {capacity}")
    alloc: dict[int, int] = {}
    remaining = list(queue)
    for jid in remaining:
        if desires[jid] <= 0:
            raise ScheduleError(
                f"job {jid} queued for DEQ with non-positive desire "
                f"{desires[jid]}"
            )
    cap = int(capacity)
    while remaining and cap > 0:
        fair = cap // len(remaining)
        satisfied = [j for j in remaining if desires[j] <= fair]
        if not satisfied:
            # Everyone is deprived: equal split, remainder to queue front.
            extra = cap - fair * len(remaining)
            for idx, jid in enumerate(remaining):
                alloc[jid] = fair + (1 if idx < extra else 0)
            return alloc
        for jid in satisfied:
            alloc[jid] = desires[jid]
            cap -= desires[jid]
        satisfied_set = set(satisfied)
        remaining = [j for j in remaining if j not in satisfied_set]
    for jid in remaining:  # capacity exhausted by satisfied jobs
        alloc[jid] = 0
    return alloc


class KDeq(Scheduler):
    """DEQ-only baseline: equi-partition every category, every step.

    This is Deng & Dymond's DEQ lifted to K resources — the space-sharing
    half of K-RAD without the round-robin cycle.  Under light workload it is
    identical to K-RAD; under heavy workload (more active jobs than
    processors) it degenerates to serving the queue front, so we rotate
    served jobs to the back whenever somebody received nothing, which keeps
    it starvation-free (a plain static order would starve late jobs
    entirely and make the comparison meaningless).
    """

    name = "k-deq"

    def __init__(self) -> None:
        super().__init__()
        self._order: list[list[int]] = []
        self._seen: list[set[int]] = []

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        self._order = [[] for _ in range(machine.num_categories)]
        self._seen = [set() for _ in range(machine.num_categories)]

    def state_dict(self) -> dict:
        return {"order": [list(o) for o in self._order]}

    def load_state_dict(self, state: dict) -> None:
        self._order = [[int(j) for j in o] for o in state["order"]]
        self._seen = [set(o) for o in self._order]

    def allocate(self, t, desires, jobs=None):
        k = self.machine.num_categories
        caps = self.machine.capacities
        out: dict[int, np.ndarray] = {}  # sparse: zero rows omitted
        for alpha in range(k):
            order = self._order[alpha]
            seen = self._seen[alpha]
            for jid in desires:  # register newcomers in arrival order
                if jid not in seen:
                    seen.add(jid)
                    order.append(jid)
            # prune completed jobs (absent from the desire map)
            if len(order) > len(desires):
                order[:] = [j for j in order if j in desires]
                seen.intersection_update(desires.keys())
            active = [j for j in order if desires[j][alpha] > 0]
            if not active:
                continue
            cat_desires = {j: int(desires[j][alpha]) for j in active}
            alloc = deq_allocate(active, cat_desires, caps[alpha])
            starving = any(a == 0 for a in alloc.values())
            for jid, a in alloc.items():
                if a:
                    row = out.get(jid)
                    if row is None:
                        row = out[jid] = np.zeros(k, dtype=np.int64)
                    row[alpha] = a
            if starving:
                served = {j for j, a in alloc.items() if a > 0}
                order[:] = [j for j in order if j not in served] + [
                    j for j in order if j in served
                ]
        return out
