"""K-RAD — the paper's contribution (Section 3).

K-RAD assigns one independent :class:`~repro.schedulers.rad.RadCategoryState`
to each of the K processor categories; RAD instance ``alpha`` manages the
``alpha``-tasks of all jobs.  The per-category instances share no state: a
job can simultaneously be deep in a round-robin cycle on a scarce category
and equi-partitioned on an abundant one.

Proven guarantees (all verified empirically in ``benchmarks/``):

* makespan: ``(K + 1 - 1/Pmax)``-competitive for arbitrary release times
  (Theorem 3) — optimal, matching the Theorem 1 lower bound;
* mean response time, batched jobs: ``(4K + 1 - 4K/(n+1))``-competitive
  (Theorem 6), improving to ``(2K + 1 - 2K/(n+1))`` under light workload
  (Theorem 5) and to 3-competitive for K = 1.
"""

from __future__ import annotations

import numpy as np

from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler
from repro.schedulers.rad import RadCategoryState

__all__ = ["KRad"]


class KRad(Scheduler):
    """One RAD scheduler per processor category (the paper's algorithm).

    ``rotate=False`` disables the FIFO queue rotation (ablation only; see
    :class:`~repro.schedulers.rad.RadCategoryState`).
    """

    name = "k-rad"

    def __init__(self, rotate: bool = True) -> None:
        super().__init__()
        self._rotate = bool(rotate)
        self._states: list[RadCategoryState] = []

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        self._states = [
            RadCategoryState(rotate=self._rotate)
            for _ in range(machine.num_categories)
        ]

    def category_state(self, alpha: int) -> RadCategoryState:
        """Inspect one category's RAD state (tests/diagnostics)."""
        return self._states[alpha]

    def notify_capacity_change(self, old_capacities, new_capacities):
        """Migrate each category's DEQ/RR state across a ``P_alpha`` change.

        Fired by the engine on every churn/degradation boundary.  The
        per-category RAD instance keeps its queue and marks; it records a
        re-batch (shrink mid-cycle) or an absorption (growth mid-cycle) in
        its migration ledger — see
        :meth:`~repro.schedulers.rad.RadCategoryState.on_resize`.
        """
        for alpha, state in enumerate(self._states):
            state.on_resize(
                int(old_capacities[alpha]), int(new_capacities[alpha])
            )

    def churn_transitions(self) -> list[dict[str, int]]:
        """Per-category DEQ<->RR transition counts (diagnostics)."""
        return [s.transitions for s in self._states]

    def state_dict(self) -> dict:
        return {"states": [s.state_dict() for s in self._states]}

    def load_state_dict(self, state: dict) -> None:
        states = state["states"]
        if len(states) != len(self._states):
            raise ValueError(
                f"checkpoint has {len(states)} category states, scheduler "
                f"has {len(self._states)}"
            )
        for s, data in zip(self._states, states):
            s.load_state_dict(data)

    def allocate(self, t, desires, jobs=None):
        machine = self.machine
        k = machine.num_categories
        # Sparse output: jobs with an all-zero allotment are omitted (the
        # Scheduler contract allows it), which keeps per-step cost
        # proportional to the number of *served* jobs.
        out: dict[int, np.ndarray] = {}
        alive = desires.keys()
        for alpha, state in enumerate(self._states):
            state.register(alive)
            state.prune(alive)
            flat = {jid: int(d[alpha]) for jid, d in desires.items()}
            alloc = state.allocate(flat, machine.capacity(alpha))
            for jid, a in alloc.items():
                if a:
                    row = out.get(jid)
                    if row is None:
                        row = out[jid] = np.zeros(k, dtype=np.int64)
                    row[alpha] = a
        return out
