"""K-RAD — the paper's contribution (Section 3).

K-RAD assigns one independent :class:`~repro.schedulers.rad.RadCategoryState`
to each of the K processor categories; RAD instance ``alpha`` manages the
``alpha``-tasks of all jobs.  The per-category instances share no state: a
job can simultaneously be deep in a round-robin cycle on a scarce category
and equi-partitioned on an abundant one.

Proven guarantees (all verified empirically in ``benchmarks/``):

* makespan: ``(K + 1 - 1/Pmax)``-competitive for arbitrary release times
  (Theorem 3) — optimal, matching the Theorem 1 lower bound;
* mean response time, batched jobs: ``(4K + 1 - 4K/(n+1))``-competitive
  (Theorem 6), improving to ``(2K + 1 - 2K/(n+1))`` under light workload
  (Theorem 5) and to 3-competitive for K = 1.

Two allocation entry points share one state machine:

* :meth:`KRad.allocate` — the per-step dict interface every scheduler
  implements (the reference engine's path);
* :meth:`KRad.begin_batch` — hands out a :class:`KRadBatch`, a row-aligned
  vectorised form of the same state used by the fast engine
  (:mod:`repro.sim.fastengine`).  Both produce bit-identical allocations;
  the differential conformance suite pins that equivalence down.
"""

from __future__ import annotations

import numpy as np

from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler
from repro.schedulers.deq import deq_allocate
from repro.schedulers.rad import RadCategoryState

__all__ = ["KRad", "KRadBatch"]


class _BatchCategory:
    """Vectorised twin of one :class:`RadCategoryState`.

    Queue order is represented by a per-row *service sequence number*:
    ascending ``seq`` is queue order, and moving a job to the queue back is
    assigning it the next fresh number.  Rotating served jobs in their
    original relative order therefore reproduces the list semantics of
    :meth:`RadCategoryState._rotate` exactly.
    """

    __slots__ = ("seq", "marked", "next_seq", "rotate", "transitions", "n_marked")

    def __init__(self) -> None:
        self.seq = np.empty(0, dtype=np.int64)
        self.marked = np.zeros(0, dtype=bool)
        self.next_seq = 0
        self.rotate = True
        self.transitions = dict.fromkeys(RadCategoryState.TRANSITION_KINDS, 0)
        self.n_marked = 0


class _BatchCategoryView:
    """Read-only :class:`RadCategoryState`-compatible view of a batch
    category (what monitors and diagnostics introspect mid-run)."""

    __slots__ = ("_batch", "_alpha")

    def __init__(self, batch: "KRadBatch", alpha: int) -> None:
        self._batch = batch
        self._alpha = alpha

    def in_rr_cycle(self) -> bool:
        return self._batch._cats[self._alpha].n_marked > 0

    @property
    def marked_jobs(self) -> frozenset[int]:
        c = self._batch._cats[self._alpha]
        jids = self._batch.jids
        return frozenset(jids[i] for i in np.flatnonzero(c.marked).tolist())

    @property
    def queue_order(self) -> tuple[int, ...]:
        c = self._batch._cats[self._alpha]
        jids = self._batch.jids
        return tuple(jids[i] for i in np.argsort(c.seq).tolist())

    @property
    def transitions(self) -> dict[str, int]:
        return dict(self._batch._cats[self._alpha].transitions)

    def state_dict(self) -> dict:
        return self._batch.category_dict(self._alpha)


class KRadBatch:
    """Row-aligned vectorised K-RAD state (the fast engine's substrate).

    Rows correspond, in order, to the engine's live jobs (arrival order).
    The engine owns row membership: it calls :meth:`sync` whenever the live
    set changes — which performs, in one shot, exactly what ``register`` +
    ``prune`` do on the list form — and :meth:`allocate` once per step with
    the ``(n, K)`` desire matrix.  While a batch is active it *is* the
    scheduler state; :meth:`KRad.state_dict` materialises it back to the
    canonical list form on demand, so checkpoints, digests and monitors
    see the identical structure either way.
    """

    def __init__(self, krad: "KRad", jids) -> None:
        self._krad = krad
        self.jids: list[int] = list(jids)
        n = len(self.jids)
        alive = set(self.jids)
        self._cats: list[_BatchCategory] = []
        for state in krad._states:
            c = _BatchCategory()
            c.rotate = state._rotate_enabled
            c.transitions = dict(state._transitions)
            # Seed queue order from the canonical state: known jobs keep
            # their rank (ids no longer alive are pruned), unseen jobs are
            # registered behind them in row order.
            order = [j for j in state._order if j in alive]
            seen = set(order)
            order += [j for j in self.jids if j not in seen]
            rank = {j: i for i, j in enumerate(order)}
            c.seq = np.asarray([rank[j] for j in self.jids], dtype=np.int64)
            c.next_seq = n
            marked = state._marked & alive
            c.marked = np.asarray(
                [j in marked for j in self.jids], dtype=bool
            )
            c.n_marked = len(marked)
            self._cats.append(c)

    # ------------------------------------------------------------------
    def sync(self, surv_pos, perm, fresh_pos, new_jids) -> None:
        """Reconcile rows with the engine's new live set.

        ``new_jids`` is the new live list; row ``surv_pos[i]`` of the new
        layout is old row ``perm[i]`` (surviving jobs keep seq and mark —
        including a killed-and-resubmitted job that never left the live
        set between two allocations, mirroring the list form where such a
        job is never pruned), and ``fresh_pos`` rows are newcomers
        registered at the queue back in row order.  Rows absent from
        ``perm`` are pruned.
        """
        n = len(new_jids)
        sp = np.asarray(surv_pos, dtype=np.intp)
        pm = np.asarray(perm, dtype=np.intp)
        fp = np.asarray(fresh_pos, dtype=np.intp)
        for c in self._cats:
            seq = np.empty(n, dtype=np.int64)
            marked = np.zeros(n, dtype=bool)
            if sp.size:
                seq[sp] = c.seq[pm]
                marked[sp] = c.marked[pm]
            if fp.size:
                seq[fp] = np.arange(
                    c.next_seq, c.next_seq + fp.size, dtype=np.int64
                )
                c.next_seq += int(fp.size)
            c.seq = seq
            c.marked = marked
            c.n_marked = int(marked.sum())
        self.jids = list(new_jids)

    # ------------------------------------------------------------------
    def allocate(self, desire_matrix: np.ndarray, capacities) -> dict:
        """One K-RAD step over the ``(n, K)`` desire matrix.

        Returns the same sparse ``{job_id: allotment vector}`` dict, with
        the same insertion order, as :meth:`KRad.allocate` — round-robin
        picks in queue order, then DEQ's satisfaction rounds.
        """
        jids = self.jids
        k = len(self._cats)
        out: dict[int, np.ndarray] = {}
        if not jids:
            for c in self._cats:
                if c.n_marked:
                    c.transitions["rr_to_deq"] += 1
                    c.marked[:] = False
                    c.n_marked = 0
            return out
        active_mask = desire_matrix > 0
        for alpha, c in enumerate(self._cats):
            cap = int(capacities[alpha])
            act = np.flatnonzero(active_mask[:, alpha])
            if act.size == 0:
                if c.n_marked:
                    # No active job while a cycle is open: the DEQ step
                    # that would close it is empty, but the cycle still
                    # closes and the marks clear (list form: Q empty,
                    # closing_cycle true).
                    c.transitions["rr_to_deq"] += 1
                    c.marked[:] = False
                    c.n_marked = 0
                continue
            seq = c.seq
            act_marked = c.marked[act]
            unmarked = act[~act_marked]
            if unmarked.size > cap:
                # Round-robin step: first `cap` unmarked actives in queue
                # order each get one processor and are marked.
                if cap > 0:
                    if c.n_marked == 0:
                        c.transitions["deq_to_rr"] += 1
                    chosen = unmarked[np.argsort(seq[unmarked])[:cap]]
                    c.marked[chosen] = True
                    c.n_marked += int(chosen.size)
                    if c.rotate:
                        seq[chosen] = np.arange(
                            c.next_seq,
                            c.next_seq + chosen.size,
                            dtype=np.int64,
                        )
                        c.next_seq += int(chosen.size)
                    for r in chosen.tolist():
                        jid = jids[r]
                        row = out.get(jid)
                        if row is None:
                            row = out[jid] = np.zeros(k, dtype=np.int64)
                        row[alpha] = 1
                continue
            # DEQ step (closing any open cycle): unmarked actives plus
            # the first min(|Q'|, cap - |Q|) marked actives, queue order.
            mact = act[act_marked]
            take = min(int(mact.size), cap - int(unmarked.size))
            closing = c.n_marked > 0
            if closing:
                c.transitions["rr_to_deq"] += 1
                c.marked[:] = False
                c.n_marked = 0
            if unmarked.size:
                part = unmarked[np.argsort(seq[unmarked])]
            else:
                part = unmarked
            if take > 0:
                m_sorted = mact[np.argsort(seq[mact])][:take]
                part = np.concatenate([part, m_sorted])
            if part.size == 0:
                continue
            part_list = part.tolist()
            col = desire_matrix[part, alpha].tolist()
            queue = [jids[r] for r in part_list]
            alloc = deq_allocate(queue, dict(zip(queue, col)), cap)
            rowpos = dict(zip(queue, part_list))
            served_rows: list[int] = []
            for jid, a in alloc.items():
                if a:
                    row = out.get(jid)
                    if row is None:
                        row = out[jid] = np.zeros(k, dtype=np.int64)
                    row[alpha] = a
                    served_rows.append(rowpos[jid])
            if closing and c.rotate and served_rows:
                sr = np.asarray(served_rows, dtype=np.intp)
                sr = sr[np.argsort(seq[sr])]
                seq[sr] = np.arange(
                    c.next_seq, c.next_seq + sr.size, dtype=np.int64
                )
                c.next_seq += int(sr.size)
        return out

    # ------------------------------------------------------------------
    def allocate_matrix(
        self, desire_matrix: np.ndarray, capacities
    ) -> np.ndarray:
        """Like :meth:`allocate`, returning an ``(n, K)`` allotment matrix.

        Identical allocation values and state evolution; used by the fast
        engine's lean execution path, where no consumer needs the dict
        form (and hence its insertion order).  DEQ rounds still run
        through :func:`deq_allocate` so per-job integer remainders match
        the reference bit-for-bit.
        """
        n = len(self.jids)
        k = len(self._cats)
        A = np.zeros((n, k), dtype=np.int64)
        if n == 0:
            for c in self._cats:
                if c.n_marked:
                    c.transitions["rr_to_deq"] += 1
                    c.marked[:] = False
                    c.n_marked = 0
            return A
        active_mask = desire_matrix > 0
        jids = self.jids
        for alpha, c in enumerate(self._cats):
            cap = int(capacities[alpha])
            act = np.flatnonzero(active_mask[:, alpha])
            if act.size == 0:
                if c.n_marked:
                    c.transitions["rr_to_deq"] += 1
                    c.marked[:] = False
                    c.n_marked = 0
                continue
            seq = c.seq
            act_marked = c.marked[act]
            unmarked = act[~act_marked]
            if unmarked.size > cap:
                if cap > 0:
                    if c.n_marked == 0:
                        c.transitions["deq_to_rr"] += 1
                    chosen = unmarked[np.argsort(seq[unmarked])[:cap]]
                    c.marked[chosen] = True
                    c.n_marked += int(chosen.size)
                    if c.rotate:
                        seq[chosen] = np.arange(
                            c.next_seq,
                            c.next_seq + chosen.size,
                            dtype=np.int64,
                        )
                        c.next_seq += int(chosen.size)
                    A[chosen, alpha] = 1
                continue
            mact = act[act_marked]
            take = min(int(mact.size), cap - int(unmarked.size))
            closing = c.n_marked > 0
            if closing:
                c.transitions["rr_to_deq"] += 1
                c.marked[:] = False
                c.n_marked = 0
            if unmarked.size:
                part = unmarked[np.argsort(seq[unmarked])]
            else:
                part = unmarked
            if take > 0:
                m_sorted = mact[np.argsort(seq[mact])][:take]
                part = np.concatenate([part, m_sorted])
            if part.size == 0:
                continue
            part_list = part.tolist()
            col = desire_matrix[part, alpha].tolist()
            queue = [jids[r] for r in part_list]
            alloc = deq_allocate(queue, dict(zip(queue, col)), cap)
            rowpos = dict(zip(queue, part_list))
            served_rows: list[int] = []
            for jid, a in alloc.items():
                if a:
                    A[rowpos[jid], alpha] = a
                    served_rows.append(rowpos[jid])
            if closing and c.rotate and served_rows:
                sr = np.asarray(served_rows, dtype=np.intp)
                sr = sr[np.argsort(seq[sr])]
                seq[sr] = np.arange(
                    c.next_seq, c.next_seq + sr.size, dtype=np.int64
                )
                c.next_seq += int(sr.size)
        return A

    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when no category has an open round-robin cycle — a fully
        satisfied allocation then repeats verbatim (the fast engine's
        steady-span precondition)."""
        return all(c.n_marked == 0 for c in self._cats)

    def on_resize(self, old_capacities, new_capacities) -> None:
        for alpha, c in enumerate(self._cats):
            old, new = int(old_capacities[alpha]), int(new_capacities[alpha])
            if new == old or c.n_marked == 0:
                continue
            c.transitions["rebatch" if new < old else "absorb"] += 1

    def category_dict(self, alpha: int) -> dict:
        """Materialise one category into RadCategoryState.state_dict form."""
        c = self._cats[alpha]
        order = [self.jids[i] for i in np.argsort(c.seq).tolist()]
        marked = sorted(
            self.jids[i] for i in np.flatnonzero(c.marked).tolist()
        )
        return {
            "order": order,
            "marked": marked,
            "rotate": c.rotate,
            "transitions": dict(c.transitions),
        }

    def category_view(self, alpha: int) -> _BatchCategoryView:
        return _BatchCategoryView(self, alpha)


class KRad(Scheduler):
    """One RAD scheduler per processor category (the paper's algorithm).

    ``rotate=False`` disables the FIFO queue rotation (ablation only; see
    :class:`~repro.schedulers.rad.RadCategoryState`).
    """

    name = "k-rad"

    def __init__(self, rotate: bool = True) -> None:
        super().__init__()
        self._rotate = bool(rotate)
        self._states: list[RadCategoryState] = []
        self._batch: KRadBatch | None = None

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        self._states = [
            RadCategoryState(rotate=self._rotate)
            for _ in range(machine.num_categories)
        ]
        self._batch = None

    def category_state(self, alpha: int):
        """Inspect one category's RAD state (tests/diagnostics/monitors).

        While a batch is active this returns a live read-only view of the
        vectorised state with the same introspection surface.
        """
        if self._batch is not None:
            return self._batch.category_view(alpha)
        return self._states[alpha]

    def notify_capacity_change(self, old_capacities, new_capacities):
        """Migrate each category's DEQ/RR state across a ``P_alpha`` change.

        Fired by the engine on every churn/degradation boundary.  The
        per-category RAD instance keeps its queue and marks; it records a
        re-batch (shrink mid-cycle) or an absorption (growth mid-cycle) in
        its migration ledger — see
        :meth:`~repro.schedulers.rad.RadCategoryState.on_resize`.
        """
        if self._batch is not None:
            self._batch.on_resize(old_capacities, new_capacities)
            return
        for alpha, state in enumerate(self._states):
            state.on_resize(
                int(old_capacities[alpha]), int(new_capacities[alpha])
            )

    def churn_transitions(self) -> list[dict[str, int]]:
        """Per-category DEQ<->RR transition counts (diagnostics)."""
        if self._batch is not None:
            return [dict(c.transitions) for c in self._batch._cats]
        return [s.transitions for s in self._states]

    def obs_rr_depths(self) -> list[int]:
        if self._batch is not None:
            return [c.n_marked for c in self._batch._cats]
        return [len(s._marked) for s in self._states]

    def obs_transitions(self) -> list[dict[str, int]]:
        return self.churn_transitions()

    def state_dict(self) -> dict:
        if self._batch is not None:
            return {
                "states": [
                    self._batch.category_dict(alpha)
                    for alpha in range(len(self._states))
                ]
            }
        return {"states": [s.state_dict() for s in self._states]}

    def load_state_dict(self, state: dict) -> None:
        self._batch = None
        states = state["states"]
        if len(states) != len(self._states):
            raise ValueError(
                f"checkpoint has {len(states)} category states, scheduler "
                f"has {len(self._states)}"
            )
        for s, data in zip(self._states, states):
            s.load_state_dict(data)

    # ------------------------------------------------------------------
    # batch (vectorised) entry point
    # ------------------------------------------------------------------
    def begin_batch(self, jids) -> KRadBatch:
        """Switch to the row-aligned vectorised state form.

        ``jids`` is the engine's live-job list in arrival order.  The
        returned :class:`KRadBatch` owns the state until :meth:`reset`,
        :meth:`load_state_dict` or a classic :meth:`allocate` call ends
        batch mode (materialising the state back first).
        """
        self._batch = KRadBatch(self, jids)
        return self._batch

    def _end_batch(self) -> None:
        """Materialise batch state back into the canonical list form."""
        if self._batch is None:
            return
        batch = self._batch
        self._batch = None
        for alpha, state in enumerate(self._states):
            state.load_state_dict(batch.category_dict(alpha))

    # ------------------------------------------------------------------
    def allocate(self, t, desires, jobs=None):
        if self._batch is not None:
            # A classic call while a batch is active (e.g. a tool driving
            # the scheduler directly): fall back coherently.
            self._end_batch()
        machine = self.machine
        k = machine.num_categories
        # Sparse output: jobs with an all-zero allotment are omitted (the
        # Scheduler contract allows it), which keeps per-step cost
        # proportional to the number of *served* jobs.
        out: dict[int, np.ndarray] = {}
        alive = desires.keys()
        # One tolist() per job instead of K numpy-scalar extractions per
        # job, and per-category desire maps holding only the alpha-active
        # jobs: profiling showed the K*n `int(d[alpha])` rescan — mostly
        # over jobs with zero alpha-desire — dominating large-K runs.
        # RadCategoryState reads desires via .get(j, 0) and only for
        # active jobs, so dropping the zero entries is behaviour-neutral.
        flats: list[dict[int, int]] = [{} for _ in range(k)]
        for jid, d in desires.items():
            row = d.tolist() if hasattr(d, "tolist") else list(d)
            for alpha in range(k):
                v = row[alpha]
                if v:
                    flats[alpha][jid] = int(v)
        for alpha, state in enumerate(self._states):
            state.register(alive)
            state.prune(alive)
            alloc = state.allocate(flats[alpha], machine.capacity(alpha))
            for jid, a in alloc.items():
                if a:
                    row = out.get(jid)
                    if row is None:
                        row = out[jid] = np.zeros(k, dtype=np.int64)
                    row[alpha] = a
        return out
