"""Multi-resource list scheduling adapted to the K-category desire model.

Perotin, Sun & Raghavan (arXiv:2106.07059) schedule *moldable* jobs on
multiple resource types by (1) deciding a per-resource allotment for
each job, with every allotment reduced to at most half of each
resource's pool so no single job can block the list, and (2) walking a
priority list, starting a job only when **all** the resources its
allotment names are simultaneously free.

:class:`ListScheduler` transplants that discipline into the paper's
non-clairvoyant desire/allotment model:

* the priority list is arrival order (the ``desires`` mapping is already
  ordered by arrival, and list scheduling with FIFO priorities is the
  classic Graham instantiation);
* the moldable allotment decision becomes a per-step *target* vector —
  the desire capped at the category capacity, and additionally at
  ``ceil(P_alpha / 2)`` whenever the category is contended (two or more
  listed jobs desire it), mirroring the half-pool reduction;
* the all-or-nothing start rule is kept: a job either receives its full
  target vector (every demanded category has enough processors left) or
  nothing this step, exactly like a list-scheduled job waiting for its
  resource set.

The first listed job with any desire always fits (targets never exceed
capacities and the walk starts from a full machine), so the scheduler is
work-conserving on fault-free machines; under outages a dark category
simply drops out of the target vector.  The scheduler is stateless and a
pure function of ``(desires, capacities)``, hence deterministic,
checkpoint-free, and bit-identical across engines.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler

__all__ = ["ListScheduler"]


class ListScheduler(Scheduler):
    """FIFO list scheduling with half-pool moldable allotment reduction."""

    name = "list-sched"

    def allocate(self, t, desires, jobs=None):
        machine = self.machine
        k = machine.num_categories
        caps = [machine.capacity(a) for a in range(k)]
        # contention census: how many listed jobs desire each category
        demand_counts = [0] * k
        for d in desires.values():
            d_list = d.tolist() if hasattr(d, "tolist") else list(d)
            for alpha in range(k):
                if d_list[alpha] > 0:
                    demand_counts[alpha] += 1
        # the per-category allotment ceiling: full pool when the category
        # is uncontended, half the pool (rounded up) when it is shared
        ceiling = [
            caps[alpha]
            if demand_counts[alpha] <= 1
            else max(1, -(-caps[alpha] // 2))
            for alpha in range(k)
        ]
        remaining = list(caps)
        out: dict[int, np.ndarray] = {}  # sparse: zero rows omitted
        for jid, d in desires.items():  # arrival order == list priority
            d_list = d.tolist() if hasattr(d, "tolist") else list(d)
            target = [
                min(int(d_list[alpha]), ceiling[alpha])
                for alpha in range(k)
            ]
            if not any(target):
                continue
            # all-or-nothing: start the job only if its entire target
            # vector fits in what the list walk has left
            if any(
                target[alpha] > remaining[alpha] for alpha in range(k)
            ):
                continue
            row = np.zeros(k, dtype=np.int64)
            for alpha in range(k):
                if target[alpha]:
                    row[alpha] = target[alpha]
                    remaining[alpha] -= target[alpha]
            out[jid] = row
        return out
