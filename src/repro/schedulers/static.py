"""Non-adaptive baselines: static partitioning and gang scheduling.

The paper's title claim is *adaptive* scheduling: allotments track each
job's instantaneous parallelism.  The classic alternatives these schedulers
implement are what DEQ was invented to beat (McCann, Vaswani & Zahorjan;
Tucker & Gupta):

* :class:`StaticPartition` — each job receives a fixed per-category quota
  when it arrives (its share of the processors unassigned at that moment)
  and keeps it until completion.  Quotas released by finished jobs are
  granted to the longest-waiting quota-less jobs.  No re-partitioning ever
  happens, so a job that stops using a category still holds its share —
  the waste adaptive scheduling removes.

* :class:`GangScheduler` — round-robin over whole-machine time slices: one
  job at a time receives its full desire on every category.  Perfect for a
  single wide job, hopeless utilization for many narrow ones.

Both respect the model constraints (never allot above desire or capacity),
so the gap to K-RAD is attributable purely to adaptivity.
"""

from __future__ import annotations

import numpy as np

from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler

__all__ = ["StaticPartition", "GangScheduler"]


class StaticPartition(Scheduler):
    """Fixed per-job quotas assigned at arrival, released at completion."""

    name = "static-partition"

    def __init__(self, target_jobs: int = 4) -> None:
        """``target_jobs`` sets the design load: arriving jobs are granted
        ``P_alpha // target_jobs`` processors per category (at least 1)
        while unassigned capacity lasts."""
        super().__init__()
        if target_jobs < 1:
            raise ValueError(f"target_jobs must be >= 1, got {target_jobs}")
        self._target = int(target_jobs)
        self._quota: dict[int, np.ndarray] = {}
        self._waiting: list[int] = []
        self._free: np.ndarray | None = None

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        self._quota = {}
        self._waiting = []
        self._free = machine.capacity_vector()

    def state_dict(self) -> dict:
        assert self._free is not None
        return {
            "quota": {
                str(j): q.tolist() for j, q in self._quota.items()
            },
            "waiting": list(self._waiting),
            "free": self._free.tolist(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._quota = {
            int(j): np.asarray(q, dtype=np.int64)
            for j, q in state["quota"].items()
        }
        self._waiting = [int(j) for j in state["waiting"]]
        self._free = np.asarray(state["free"], dtype=np.int64)

    def _try_assign(self, jid: int) -> bool:
        """Grant a quota from free capacity; False if nothing is free."""
        assert self._free is not None
        caps = self.machine.capacity_vector()
        want = np.maximum(caps // self._target, 1)
        grant = np.minimum(want, self._free)
        if not grant.any():
            return False
        self._quota[jid] = grant
        self._free = self._free - grant
        return True

    def allocate(self, t, desires, jobs=None):
        assert self._free is not None
        # release quotas of completed jobs
        for jid in list(self._quota):
            if jid not in desires:
                self._free = self._free + self._quota.pop(jid)
        self._waiting = [j for j in self._waiting if j in desires]
        # register newcomers
        for jid in desires:
            if jid not in self._quota and jid not in self._waiting:
                self._waiting.append(jid)
        # grant freed quotas FIFO
        still_waiting = []
        for jid in self._waiting:
            if not self._try_assign(jid):
                still_waiting.append(jid)
        self._waiting = still_waiting

        out: dict[int, np.ndarray] = {}
        for jid, quota in self._quota.items():
            granted = np.minimum(quota, desires[jid])
            if granted.any():
                out[jid] = granted.astype(np.int64)
        if not out and desires:
            # Emergency backfill: every quota is useless this step (jobs
            # desire only categories outside their partitions), which would
            # deadlock a strictly static policy.  Real static partitioners
            # carry exactly this patch; grant one processor to the first
            # job with any desire so the system stays work-conserving.
            k = self.machine.num_categories
            for jid, d in desires.items():
                for alpha in range(k):
                    if d[alpha] > 0:
                        row = np.zeros(k, dtype=np.int64)
                        row[alpha] = 1
                        out[jid] = row
                        return out
        return out


class GangScheduler(Scheduler):
    """Whole-machine time slices, one job per step, FIFO rotation."""

    name = "gang"

    def __init__(self) -> None:
        super().__init__()
        self._order: list[int] = []
        self._seen: set[int] = set()

    def reset(self, machine: KResourceMachine) -> None:
        super().reset(machine)
        self._order = []
        self._seen = set()

    def state_dict(self) -> dict:
        return {"order": list(self._order)}

    def load_state_dict(self, state: dict) -> None:
        self._order = [int(j) for j in state["order"]]
        self._seen = set(self._order)

    def allocate(self, t, desires, jobs=None):
        for jid in desires:
            if jid not in self._seen:
                self._seen.add(jid)
                self._order.append(jid)
        if len(self._order) > len(desires):
            self._order = [j for j in self._order if j in desires]
            self._seen.intersection_update(desires.keys())
        if not self._order:
            return {}
        jid = self._order[0]
        self._order = self._order[1:] + [jid]
        caps = self.machine.capacity_vector()
        granted = np.minimum(caps, desires[jid]).astype(np.int64)
        if not granted.any():
            return {}
        return {jid: granted}
