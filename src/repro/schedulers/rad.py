"""RAD: the per-category scheduler combining DEQ and round-robin (Figure 2).

RAD watches the number of *alpha-active* jobs (non-zero alpha-desire):

* ``|Q| <= P_alpha`` — space-share with DEQ;
* ``|Q| > P_alpha`` — time-share with a batched round-robin *cycle*: every
  step the first ``P_alpha`` unmarked active jobs each get one processor and
  are marked; once fewer than ``P_alpha`` unmarked jobs remain, the cycle
  closes — marked jobs are recycled to fill the idle processors, DEQ
  partitions the final step, and all marks clear.

Queue discipline: jobs enter at the back on arrival; a job served in a
round-robin step moves to the back, so service order within and across
cycles is FIFO — the fairness the mean-response-time analysis needs.

:class:`RadCategoryState` is the reusable single-category engine;
:class:`KRad` (in :mod:`repro.schedulers.krad`) instantiates one per
category.  :class:`Rad` exposes the K = 1 algorithm of the authors' earlier
work for the homogeneous experiments.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.machine.machine import KResourceMachine
from repro.schedulers.base import Scheduler
from repro.schedulers.deq import deq_allocate

__all__ = ["RadCategoryState", "Rad"]


class RadCategoryState:
    """Mark/queue state of one RAD instance (one processor category).

    ``rotate`` controls the queue discipline: True (default) moves served
    jobs to the back, making service FIFO across cycles; False keeps a
    static order (an ablation — the RR cycle still guarantees everyone one
    slot per cycle, but cycle-start order no longer reflects service
    recency).
    """

    __slots__ = ("_order", "_seen", "_marked", "_rotate_enabled", "_transitions")

    #: DEQ<->RR state-machine transition kinds tracked per category
    TRANSITION_KINDS = ("deq_to_rr", "rr_to_deq", "rebatch", "absorb")

    def __init__(self, rotate: bool = True) -> None:
        self._order: list[int] = []  # FIFO service order
        self._seen: set[int] = set()
        self._marked: set[int] = set()  # scheduled in the current RR cycle
        self._rotate_enabled = bool(rotate)
        # DEQ<->RR migration ledger: cycle opens ("deq_to_rr"), cycle
        # closes ("rr_to_deq"), capacity resized mid-cycle ("rebatch" on
        # shrink, "absorb" on growth).  Diagnostic only — allocation
        # decisions never read it — but checkpointed so resumed runs
        # report identical histories.
        self._transitions = dict.fromkeys(self.TRANSITION_KINDS, 0)

    def register(self, job_ids) -> None:
        """Add newly arrived jobs (in the given order) to the queue back."""
        if self._seen.issuperset(job_ids):
            # No newcomers: skip the per-job membership loop.  This runs
            # once per category per step, so the O(n) Python scan showed
            # up in large-K profiles even on arrival-free steps.
            return
        for jid in job_ids:
            if jid not in self._seen:
                self._seen.add(jid)
                self._order.append(jid)

    def prune(self, alive) -> None:
        """Drop completed jobs (ids not in ``alive``)."""
        if len(self._order) > len(alive):
            self._order = [j for j in self._order if j in alive]
            self._seen.intersection_update(alive)
            self._marked.intersection_update(alive)

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot (checkpoint/resume)."""
        return {
            "order": list(self._order),
            "marked": sorted(self._marked),
            "rotate": self._rotate_enabled,
            "transitions": dict(self._transitions),
        }

    def load_state_dict(self, state: dict) -> None:
        self._order = [int(j) for j in state["order"]]
        self._seen = set(self._order)
        self._marked = {int(j) for j in state["marked"]}
        self._rotate_enabled = bool(state["rotate"])
        self._transitions = dict.fromkeys(self.TRANSITION_KINDS, 0)
        self._transitions.update(
            {
                k: int(v)
                for k, v in state.get("transitions", {}).items()
                if k in self._transitions
            }
        )

    @property
    def transitions(self) -> dict[str, int]:
        """Counts of DEQ<->RR state-machine transitions (copy)."""
        return dict(self._transitions)

    def on_resize(self, old_capacity: int, new_capacity: int) -> str:
        """Migrate the DEQ/RR state machine across a capacity boundary.

        Marks (round-robin service credit) always survive a resize — a job
        already served this cycle stays served.  What changes is how the
        open cycle proceeds:

        * **shrink mid-cycle** (``"rebatch"``): the remaining unmarked jobs
          are re-batched at the smaller width — subsequent RR steps serve
          ``new_capacity`` jobs at a time, and the cycle simply takes more
          steps to close;
        * **growth mid-cycle** (``"absorb"``): if the unmarked remainder
          now fits, the very next step closes the cycle by a DEQ partition
          that absorbs the marked jobs — immediate RR -> DEQ absorption.

        Returns the transition label (``"none"`` outside a cycle) and
        records it in the migration ledger.
        """
        if new_capacity == old_capacity or not self._marked:
            return "none"
        kind = "rebatch" if new_capacity < old_capacity else "absorb"
        self._transitions[kind] += 1
        return kind

    @property
    def marked_jobs(self) -> frozenset[int]:
        """Jobs already served in the current round-robin cycle."""
        return frozenset(self._marked)

    @property
    def queue_order(self) -> tuple[int, ...]:
        return tuple(self._order)

    def in_rr_cycle(self) -> bool:
        """True while a round-robin cycle is open (some job is marked)."""
        return bool(self._marked)

    def allocate(self, desires: Mapping[int, int], capacity: int) -> dict[int, int]:
        """One step of RAD for this category (Figure 2, procedure RAD).

        ``desires`` maps *every* live job id to its alpha-desire (possibly
        zero); activity is derived here so marks survive temporary
        inactivity, exactly as in the paper where "unmark all" only happens
        when a cycle completes.
        """
        q = [j for j in self._order if desires.get(j, 0) > 0 and j not in self._marked]
        if len(q) > capacity:
            return self._round_robin_step(q, capacity)
        q_prime = [j for j in self._order if desires.get(j, 0) > 0 and j in self._marked]
        # Move min(|Q'|, P - |Q|) jobs from the front of Q' into Q, then DEQ;
        # this closes the cycle.
        take = min(len(q_prime), capacity - len(q))
        q = q + q_prime[:take]
        closing_cycle = bool(self._marked)
        if closing_cycle:
            self._transitions["rr_to_deq"] += 1
        self._marked.clear()
        if not q:
            return {}
        cat_desires = {j: int(desires[j]) for j in q}
        alloc = deq_allocate(q, cat_desires, capacity)
        if closing_cycle:
            # Steps that close a round-robin cycle count as a service round,
            # so served jobs rotate to the back like any RR step.  Pure DEQ
            # steps (no cycle open) leave the order alone — under light
            # workload RAD is then *identical* to DEQ-only scheduling, a
            # property the differential tests pin down.
            self._rotate([j for j, a in alloc.items() if a > 0])
        return alloc

    def _round_robin_step(self, q: list[int], capacity: int) -> dict[int, int]:
        if not self._marked and capacity > 0:  # a fresh cycle opens
            self._transitions["deq_to_rr"] += 1
        chosen = q[:capacity]
        self._marked.update(chosen)
        self._rotate(chosen)
        return {j: 1 for j in chosen}

    def _rotate(self, served) -> None:
        """Move served jobs to the queue back, keeping service order FIFO.

        Applied on every step that grants processors (both the round-robin
        steps and the DEQ step that closes a cycle), so the first jobs of
        the next cycle are always the longest-unserved ones.
        """
        if not self._rotate_enabled:
            return
        served_set = set(served)
        if not served_set:
            return
        self._order = [j for j in self._order if j not in served_set] + [
            j for j in self._order if j in served_set
        ]


class Rad(Scheduler):
    """The homogeneous (K = 1) RAD algorithm of He, Hsu & Leiserson.

    A thin wrapper around a single :class:`RadCategoryState`, provided for
    the K = 1 experiments (3-competitive mean response time).  On a K = 1
    machine :class:`~repro.schedulers.krad.KRad` behaves identically; this
    class exists so the homogeneous results read naturally.
    """

    name = "rad"

    def __init__(self) -> None:
        super().__init__()
        self._state = RadCategoryState()

    def reset(self, machine: KResourceMachine) -> None:
        if machine.num_categories != 1:
            raise ValueError(
                f"Rad is the K=1 algorithm; got K={machine.num_categories} "
                "(use KRad)"
            )
        super().reset(machine)
        self._state = RadCategoryState()

    def state_dict(self) -> dict:
        return {"state": self._state.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self._state.load_state_dict(state["state"])

    def category_state(self, alpha: int = 0) -> RadCategoryState:
        """The single category's RAD state (tests/diagnostics)."""
        if alpha != 0:
            raise ValueError(f"Rad has one category, asked for {alpha}")
        return self._state

    def notify_capacity_change(self, old_capacities, new_capacities):
        self._state.on_resize(
            int(old_capacities[0]), int(new_capacities[0])
        )

    def obs_rr_depths(self) -> list[int]:
        return [len(self._state._marked)]

    def obs_transitions(self) -> list[dict[str, int]]:
        return [self._state.transitions]

    def allocate(self, t, desires, jobs=None):
        self._state.register(desires.keys())
        self._state.prune(desires.keys())
        flat = {jid: int(d[0]) for jid, d in desires.items()}
        alloc = self._state.allocate(flat, self.machine.capacity(0))
        return {
            jid: np.asarray([a], dtype=np.int64) for jid, a in alloc.items()
        }
