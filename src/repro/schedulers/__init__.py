"""Schedulers: K-RAD (the contribution) and the baseline zoo."""

from repro.schedulers.base import Scheduler, check_allotments
from repro.schedulers.clairvoyant import ClairvoyantCriticalPath, ClairvoyantSrpt
from repro.schedulers.deq import KDeq, deq_allocate
from repro.schedulers.equi import Equi
from repro.schedulers.greedy import GreedyFcfs
from repro.schedulers.jobshop import DagShopScheduler
from repro.schedulers.krad import KRad
from repro.schedulers.listsched import ListScheduler
from repro.schedulers.rad import Rad, RadCategoryState
from repro.schedulers.randomized import RandomizedKRad
from repro.schedulers.static import GangScheduler, StaticPartition
from repro.schedulers.round_robin import KRoundRobin
from repro.schedulers.setf import Setf

__all__ = [
    "Scheduler",
    "check_allotments",
    "ClairvoyantCriticalPath",
    "ClairvoyantSrpt",
    "KDeq",
    "deq_allocate",
    "Equi",
    "GreedyFcfs",
    "DagShopScheduler",
    "KRad",
    "ListScheduler",
    "Rad",
    "RadCategoryState",
    "RandomizedKRad",
    "GangScheduler",
    "StaticPartition",
    "KRoundRobin",
    "Setf",
]

_REGISTRY = {
    cls.name: cls
    for cls in (
        KRad,
        Rad,
        KDeq,
        KRoundRobin,
        Equi,
        GreedyFcfs,
        DagShopScheduler,
        ClairvoyantCriticalPath,
        ClairvoyantSrpt,
        RandomizedKRad,
        GangScheduler,
        StaticPartition,
        Setf,
        ListScheduler,
    )
}


def scheduler_by_name(name: str) -> Scheduler:
    """Instantiate a scheduler by its short name (CLI convenience)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def scheduler_names() -> list[str]:
    """All registered short names, sorted (CLI help, arena registry)."""
    return sorted(_REGISTRY)


__all__ += ["scheduler_by_name", "scheduler_names"]
