#!/usr/bin/env python3
"""Capstone scenario: a full cluster study with realistic applications.

Uses the application templates (MapReduce, stencil solvers, ETL pipelines,
training epochs) arriving over time on a CPU/accelerator/IO cluster, and
answers the operator's questions end to end:

* which scheduler should this cluster run? (sweep + heatmap)
* is anyone being starved? (fairness report + job-state timeline)
* how confident are the numbers? (bootstrap confidence intervals)

Run:  python examples/cluster_study.py
"""

import numpy as np

from repro import KRad, KResourceMachine, simulate
from repro.analysis import bootstrap_ci, format_table
from repro.jobs.templates import application_mix
from repro.schedulers import Equi, GreedyFcfs, KRoundRobin
from repro.sim import RecordingScheduler, summarize_result
from repro.theory import verify_service_bound
from repro.viz import render_job_states


def main() -> None:
    machine = KResourceMachine((16, 8, 4), names=("cpu", "accel", "io"))
    print(f"machine: {machine}\n")

    # --- scheduler shoot-out over several seeds ------------------------
    scheds = {
        "k-rad": KRad,
        "greedy-fcfs": GreedyFcfs,
        "k-rr": KRoundRobin,
        "equi": Equi,
    }
    samples: dict[str, dict[str, list[float]]] = {
        name: {"makespan": [], "mean_rt": []} for name in scheds
    }
    for seed in range(5):
        rng = np.random.default_rng(seed)
        js = application_mix(rng, 12, release_spread=30)
        for name, factory in scheds.items():
            r = simulate(machine, factory(), js)
            samples[name]["makespan"].append(float(r.makespan))
            samples[name]["mean_rt"].append(r.mean_response_time)
    rows = []
    for name, metrics in sorted(samples.items()):
        mk = bootstrap_ci(metrics["makespan"], seed=1)
        rt = bootstrap_ci(metrics["mean_rt"], seed=1)
        rows.append([name, str(mk), str(rt)])
    print(
        format_table(
            ["scheduler", "makespan (95% CI)", "mean RT (95% CI)"],
            rows,
            title="application mix, 5 seeds, bootstrap CIs",
        )
    )

    # --- one K-RAD run in detail ---------------------------------------
    rng = np.random.default_rng(7)
    js = application_mix(rng, 10, release_spread=20)
    recorder = RecordingScheduler(KRad())
    result = simulate(machine, recorder, js, record_trace=True)
    summary = summarize_result(result, js)
    print(
        f"\nK-RAD detail run: makespan {summary.makespan}, mean slowdown "
        f"{summary.mean_slowdown:.2f}, p95 RT {summary.p95_response_time:.0f}"
    )
    for alpha, name in enumerate(machine.names):
        rep = verify_service_bound(
            recorder.records, machine.capacity(alpha), alpha
        )
        print(
            f"  {name}: {len(rep.gaps)} waiting windows, max gap "
            f"{rep.max_gap}, RR bound holds: {rep.all_within_bound}"
        )
    print()
    print(render_job_states(result.trace, max_steps=70))


if __name__ == "__main__":
    main()
