#!/usr/bin/env python3
"""A tour of the theory machinery: bounds, proof certification, fairness.

The other examples run schedules; this one runs the *proofs*:

1. every closed-form bound of the paper evaluated on a concrete workload;
2. the induction step of Theorem 5's proof (Inequality 8) machine-checked
   interval by interval on an idealized DEQ schedule;
3. the round-robin service-gap bound behind Theorem 6 verified window by
   window on a heavy workload;
4. Theorem 3 checked against the EXACT optimum (exhaustive search) on a
   small instance, not just against the lower-bound certificate.

Run:  python examples/theory_tour.py
"""

import numpy as np

from repro import KRad, KResourceMachine, simulate
from repro.analysis import format_table
from repro.jobs import workloads
from repro.sim import RecordingScheduler
from repro.theory import (
    certify_theorem5_induction,
    check_makespan_bound,
    check_theorem6,
    lemma2_bound,
    makespan_lower_bound,
    optimal_makespan_exact,
    theorem1_ratio,
    theorem5_ratio,
    theorem6_ratio,
    verify_service_bound,
)


def main() -> None:
    machine = KResourceMachine((16, 8), names=("cpu", "io"))
    rng = np.random.default_rng(42)

    # --- 1. the bounds, on a real workload -----------------------------
    js = workloads.random_dag_jobset(rng, 2, 10, size_hint=20)
    result = simulate(machine, KRad(), js)
    k, n = machine.num_categories, len(js)
    print(
        format_table(
            ["bound", "value"],
            [
                ["makespan lower bound (Sec. 4)", makespan_lower_bound(js, machine)],
                ["Lemma 2 upper bound", lemma2_bound(js, machine)],
                ["measured K-RAD makespan", result.makespan],
                ["Theorem 1/3 ratio K+1-1/Pmax", theorem1_ratio(k, machine.pmax)],
                ["Theorem 5 ratio 2K+1-2K/(n+1)", theorem5_ratio(k, n)],
                ["Theorem 6 ratio 4K+1-4K/(n+1)", theorem6_ratio(k, n)],
            ],
            title="1. the paper's bounds on a 10-job workload",
        )
    )
    print(f"   {check_makespan_bound(result, js, machine)}")
    print(f"   {check_theorem6(result, js, machine)}\n")

    # --- 2. the Theorem-5 induction, certified step by step ------------
    light = workloads.light_phase_jobset(rng, machine, 6)
    cert = certify_theorem5_induction(machine, light)
    print(
        "2. Theorem 5 induction (Inequality 8), idealized DEQ replay:\n"
        f"   {cert.num_steps} intervals over makespan {cert.makespan:.2f}; "
        f"all hold: {cert.all_hold}; min slack {cert.min_slack:.4f}\n"
    )

    # --- 3. the RR fairness bound behind Theorem 6 ---------------------
    heavy = workloads.heavy_phase_jobset(rng, machine, load_factor=4.0)
    recorder = RecordingScheduler(KRad())
    simulate(machine, recorder, heavy)
    for alpha in range(k):
        rep = verify_service_bound(
            recorder.records, machine.capacity(alpha), alpha
        )
        print(
            f"3. category {machine.names[alpha]}: {len(rep.gaps)} waiting "
            f"windows, max gap {rep.max_gap}, all within 2*ceil(n/P)+2: "
            f"{rep.all_within_bound}"
        )
    print()

    # --- 4. Theorem 3 vs the exact optimum -----------------------------
    small_machine = KResourceMachine((2, 1))
    small = workloads.random_dag_jobset(rng, 2, 3, size_hint=4)
    opt = optimal_makespan_exact(small_machine, small)
    krad = simulate(small_machine, KRad(), small)
    limit = theorem1_ratio(2, 2)
    print(
        "4. exact optimum on a small instance: "
        f"T* = {opt}, K-RAD = {krad.makespan}, true ratio "
        f"{krad.makespan / opt:.3f} <= {limit:.3f}"
    )


if __name__ == "__main__":
    main()
