#!/usr/bin/env python3
"""Scenario: the online cluster of ``online_cluster.py``, served live.

Same machine, same Poisson workload, same Theorem-3 check — but instead
of handing ``simulate()`` a finished job set, this script boots the
scheduling service in-process, streams every job through a client
socket with its Poisson arrival as the requested release time, scrapes
the live Prometheus endpoint mid-run, drains, and then proves the
service computed *exactly* what the batch pipeline computes for the
same jobs at the same effective release times.

Run:  python examples/service_demo.py
"""

import numpy as np

from repro import KRad, KResourceMachine, simulate
from repro.analysis import format_table, summarize
from repro.jobs import workloads
from repro.obs import Observability, parse_prometheus_text
from repro.service import (
    SchedulingService,
    ServiceClient,
    ServiceConfig,
    ThreadedServer,
    fetch_metrics_text,
)
from repro.theory import check_makespan_bound, makespan_lower_bound

CAPS = (8, 4, 4)
TENANTS = ("ada", "grace", "edsger")


def build_workload():
    rng = np.random.default_rng(7)
    n_jobs = 40
    jobset = workloads.random_dag_jobset(rng, 3, n_jobs, size_hint=25)
    releases = workloads.poisson_release_times(rng, n_jobs, rate=0.35)
    return workloads.with_release_times(jobset, releases), releases


def main() -> None:
    machine = KResourceMachine(CAPS, names=("cpu", "vector", "io"))
    jobset, releases = build_workload()
    print(f"machine: {machine}")
    print(
        f"workload: {len(jobset)} jobs from {len(TENANTS)} tenants, "
        f"Poisson arrivals over [0, {max(releases)}] steps\n"
    )

    config = ServiceConfig(
        capacities=CAPS,
        names=("cpu", "vector", "io"),
        seed=0,
        tenant_quota=20,
        max_in_flight=64,
    )
    service = SchedulingService(config, obs=Observability())
    with ThreadedServer(service, metrics_port=0) as server:
        host, port = server.address
        print(f"service listening on {host}:{port}")
        with ServiceClient(server.address) as client:
            acks = []
            for i, job in enumerate(jobset.jobs):
                ack = client.submit_blocking(
                    TENANTS[i % len(TENANTS)],
                    job,
                    release_time=int(releases[i]),
                )
                acks.append(ack)
            # the service is live: watch the run through /metrics
            live = parse_prometheus_text(
                fetch_metrics_text(server.metrics_address)
            )
            per_tenant = {
                t: live.get('krad_submissions_total{tenant="%s"}' % t, 0)
                for t in TENANTS
            }
            print(
                f"live scrape: clock={live['krad_service_clock']:.0f}, "
                + ", ".join(f"{t}={n:.0f}" for t, n in per_tenant.items())
                + " submissions"
            )
            summary = client.drain()
    print(
        f"drained: makespan={summary['makespan']}, "
        f"{summary['completed']} completed\n"
    )

    rts = summarize(list(summary["response_times"].values()))
    print(
        format_table(
            ["metric", "value"],
            [
                ["jobs completed", summary["completed"]],
                ["makespan", summary["makespan"]],
                ["mean response time", rts.mean],
                ["median response time", rts.median],
                ["p-max response time", rts.maximum],
            ],
            title="online service summary",
        )
    )

    # --- equivalence: the service is the batch computation, fed live ---
    # Effective releases come from the acks (a request released "in the
    # past" is clamped to the submission step).  A batch simulate() of
    # fresh copies of the same jobs at those releases must agree bit
    # for bit with what the service just served.
    releases_by_id = {int(k): v for k, v in summary["releases"].items()}
    completions_by_id = {int(k): v for k, v in summary["completions"].items()}
    effective = [releases_by_id[ack["job_id"]] for ack in acks]
    batch_jobset, _ = build_workload()
    batch_jobset = workloads.with_release_times(batch_jobset, effective)
    batch = simulate(machine, KRad(), batch_jobset, seed=0)
    same = (
        batch.makespan == summary["makespan"]
        and dict(batch.completion_times) == completions_by_id
    )
    print(
        f"\nbatch equivalence: simulate() makespan {batch.makespan} "
        f"== service makespan {summary['makespan']} "
        f"[{'OK' if same else 'MISMATCH'}]"
    )

    check = check_makespan_bound(batch, batch_jobset, machine)
    lb = makespan_lower_bound(batch_jobset, machine)
    print(
        f"Theorem 3 check: makespan {batch.makespan} / lower bound "
        f"{lb:.1f} = {check.measured:.3f} <= {check.bound:.3f} "
        f"[{'OK' if check.holds else 'VIOLATED'}]"
    )


if __name__ == "__main__":
    main()
