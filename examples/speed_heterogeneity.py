#!/usr/bin/env python3
"""Scenario: what if the vector units are 4x faster? (extension)

The paper's model is purely *functional* heterogeneity — every processor of
a category runs at unit speed.  Its concluding remarks pose performance +
functional heterogeneity as the open challenge; `repro.perf` explores it:
each category gets an integer speed, and an allotted processor chains
through up to that many dependent tasks per step.

This script takes one workload and sweeps speed profiles for the same
physical processor counts, showing how K-RAD — which never sees the speeds
— exploits faster categories anyway (its desires shrink faster there), and
how the generalised lower bound (work/throughput + weighted span) tracks
the measured makespans.

Run:  python examples/speed_heterogeneity.py
"""

import numpy as np

from repro import KRad
from repro.analysis import format_table
from repro.dag import dag_stats
from repro.jobs import workloads
from repro.perf import SpeedMachine, simulate_speeds, speed_makespan_lower_bound


def main() -> None:
    caps = (8, 4, 2)
    names = ("cpu", "vector", "io")
    rng = np.random.default_rng(11)
    jobset = workloads.random_dag_jobset(rng, 3, 16, size_hint=25)
    print(f"workload: {jobset}")
    from repro.jobs import DagJob

    sample = next(j for j in jobset if isinstance(j, DagJob))
    print(f"sample job stats: {dag_stats(sample.dag)}\n")

    profiles = {
        "baseline (paper model)": (1, 1, 1),
        "vector 4x": (1, 4, 1),
        "io 4x": (1, 1, 4),
        "cpu 2x + vector 4x": (2, 4, 1),
        "everything 2x": (2, 2, 2),
    }
    rows = []
    base_makespan = None
    for label, speeds in profiles.items():
        machine = SpeedMachine(caps, speeds, names=names)
        result = simulate_speeds(machine, KRad(), jobset)
        lb = speed_makespan_lower_bound(jobset, machine)
        if base_makespan is None:
            base_makespan = result.makespan
        rows.append(
            [
                label,
                str(speeds),
                result.makespan,
                base_makespan / result.makespan,
                lb,
                result.makespan / lb,
            ]
        )
    print(
        format_table(
            ["profile", "speeds", "makespan", "speedup", "LB", "vs LB"],
            rows,
            title=f"K-RAD on {caps} processors under different speed profiles",
        )
    )
    print(
        "\nThe scheduler is identical (and speed-oblivious) in every row; "
        "the speedups come\npurely from faster categories draining their "
        "desires sooner."
    )


if __name__ == "__main__":
    main()
