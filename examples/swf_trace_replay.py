#!/usr/bin/env python3
"""Scenario: replay a production-style SWF trace on a heterogeneous cluster.

The Parallel Workloads Archive distributes cluster traces in the Standard
Workload Format (SWF).  Those machines are single-resource; we lift each
job onto a K-resource machine with a documented *category mix* (the share
of each job's processor-time spent on CPU / vector / I/O phases), then run
K-RAD and inspect response times and utilization — the full "adopt this
library on your own trace" workflow.

The embedded trace below is synthetic but SWF-shaped (bursty submissions,
heavy-tailed runtimes); swap in any archive file via ``jobset_from_swf``.

Run:  python examples/swf_trace_replay.py
"""

import numpy as np

from repro import KRad, KResourceMachine, simulate
from repro.analysis import format_table, summarize
from repro.io import jobset_from_swf
from repro.sim import summarize_result
from repro.viz import render_utilization


def synthetic_trace(rng: np.random.Generator, n: int = 30) -> str:
    """Generate an SWF-shaped synthetic trace: Poisson-bursty submits,
    lognormal runtimes, power-of-two processor requests."""
    lines = ["; synthetic SWF-shaped trace (see module docstring)"]
    t = 0
    for jid in range(1, n + 1):
        t += int(rng.exponential(30))
        run = max(1, int(rng.lognormal(mean=4.0, sigma=1.0)))
        procs = int(2 ** rng.integers(0, 5))
        lines.append(
            f"{jid} {t} -1 {run} {procs} " + " ".join(["-1"] * 13)
        )
    return "\n".join(lines) + "\n"


def main() -> None:
    rng = np.random.default_rng(1)
    trace = synthetic_trace(rng)
    # 60% CPU, 25% vector, 15% I/O — a typical simulation-code mix
    jobset = jobset_from_swf(
        trace, category_mix=(0.60, 0.25, 0.15), time_scale=0.02
    )
    machine = KResourceMachine((32, 8, 4), names=("cpu", "vector", "io"))
    print(f"machine:  {machine}")
    print(f"workload: {jobset}")
    print(
        f"arrivals: steps {jobset.release_times().min()}.."
        f"{jobset.release_times().max()}\n"
    )

    result = simulate(machine, KRad(), jobset, record_trace=True)
    summary = summarize_result(result, jobset)
    rt = summarize(list(result.response_times().values()))
    print(
        format_table(
            ["metric", "value"],
            [
                ["makespan", result.makespan],
                ["mean response time", rt.mean],
                ["p95 response time", summary.p95_response_time],
                ["mean slowdown", summary.mean_slowdown],
                ["idle steps", result.idle_steps],
            ],
            title="SWF replay under K-RAD",
        )
    )
    print()
    bucket = max(1, result.makespan // 64)
    print(
        render_utilization(
            result.trace, category_names=machine.names, bucket=bucket
        )
    )


if __name__ == "__main__":
    main()
