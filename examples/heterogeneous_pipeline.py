#!/usr/bin/env python3
"""Scenario: a data-analytics cluster with CPUs, vector units and I/O nodes.

This is the workload the paper's introduction motivates: parallel programs
that interleave computation, I/O and vectorisable kernels, where each task
type can only run on its matching resource.  We generate a fleet of
ingest -> transform -> flush pipeline jobs plus vector-heavy analytics jobs,
then compare K-RAD against every baseline on both paper objectives
(makespan, mean response time).

The expected shape (and what the table shows): round-robin wastes the wide
vector units, greedy FCFS starves late jobs, EQUI wastes processors it
insists on handing to narrow jobs — K-RAD tracks the best of all of them on
both metrics simultaneously.

Run:  python examples/heterogeneous_pipeline.py
"""

import numpy as np

from repro import (
    Equi,
    GreedyFcfs,
    KDeq,
    KRad,
    KResourceMachine,
    KRoundRobin,
)
from repro.analysis import compare_schedulers, format_table
from repro.dag import builders
from repro.jobs import JobSet

CPU, VEC, IO = 0, 1, 2


def build_workload(rng: np.random.Generator) -> JobSet:
    dags = []
    # 12 ETL pipelines: ingest (io) -> transform (cpu) -> flush (io)
    for _ in range(12):
        items = int(rng.integers(4, 12))
        dags.append(builders.pipeline([IO, CPU, IO], items, 3))
    # 6 vector analytics jobs: cpu prep, wide vector burst, cpu reduce
    for _ in range(6):
        width = int(rng.integers(8, 24))
        dags.append(
            builders.fork_join(
                width, VEC, 3, fork_category=CPU, join_category=CPU
            )
        )
    # 6 wavefront solvers cycling cpu/vector/io along anti-diagonals
    for _ in range(6):
        dags.append(
            builders.diamond_mesh(
                int(rng.integers(3, 7)), int(rng.integers(3, 7)), 3
            )
        )
    return JobSet.from_dags(dags)


def main() -> None:
    machine = KResourceMachine((16, 8, 4), names=("cpu", "vector", "io"))
    rng = np.random.default_rng(2007)
    jobset = build_workload(rng)
    print(f"machine: {machine}")
    print(f"workload: {jobset}\n")

    schedulers = [KRad(), KDeq(), KRoundRobin(), Equi(), GreedyFcfs()]
    comparison = compare_schedulers(machine, schedulers, jobset)

    rows = [
        [
            name,
            metrics["makespan"],
            metrics["makespan_ratio"],
            metrics["mean_rt"],
            metrics["mean_rt_ratio"],
        ]
        for name, metrics in sorted(comparison.items())
    ]
    print(
        format_table(
            ["scheduler", "makespan", "vs LB", "mean RT", "vs LB "],
            rows,
            title="data-analytics cluster: scheduler comparison "
            "(LB = paper lower-bound certificate)",
        )
    )
    krad = comparison["k-rad"]
    best_mk = min(m["makespan"] for m in comparison.values())
    best_rt = min(m["mean_rt"] for m in comparison.values())
    print(
        f"\nK-RAD: makespan {krad['makespan']:.0f} "
        f"({krad['makespan'] / best_mk:.2f}x best), "
        f"mean RT {krad['mean_rt']:.1f} ({krad['mean_rt'] / best_rt:.2f}x best)"
    )


if __name__ == "__main__":
    main()
