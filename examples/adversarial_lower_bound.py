#!/usr/bin/env python3
"""Walk through the Theorem-1 lower-bound construction (Figure 3).

The paper proves that no deterministic non-clairvoyant scheduler can beat a
makespan competitive ratio of ``K + 1 - 1/Pmax``.  This script builds the
adversarial job set, shows the two schedules side by side —

* the **adversary's victim**: K-RAD executing critical-path tasks last
  (the adversary's prerogative: it names which of the identical-looking
  ready tasks was 'the important one' after the fact), so the K levels of
  the special job serialise;
* the **clairvoyant optimum**: critical-path tasks first, so every level
  unblocks immediately and all K resource categories work concurrently —

and prints the convergence of the ratio to the bound as the scale parameter
m grows.  Both simulated makespans match the proof's closed forms exactly.

Run:  python examples/adversarial_lower_bound.py
"""

from repro import (
    CP_FIRST,
    CP_LAST,
    ClairvoyantCriticalPath,
    KRad,
    KResourceMachine,
    simulate,
)
from repro.analysis import format_series, format_table
from repro.dag import figure3_instance
from repro.jobs import JobSet
from repro.theory import theorem1_ratio


def main() -> None:
    caps = (2, 2, 4)
    machine = KResourceMachine(caps, names=("cpu", "vector", "io"))
    K, pmax = len(caps), max(caps)
    limit = theorem1_ratio(K, pmax)
    print(f"machine: {machine}")
    print(f"theoretical limit: K + 1 - 1/Pmax = {limit:.3f}\n")

    inst = figure3_instance(2, caps)
    special = inst.dags[inst.special_index]
    print(
        f"instance at m=2: {inst.num_jobs} jobs "
        f"({inst.num_jobs - 1} single-task fillers + 1 special job with "
        f"{special.num_vertices} tasks, span {special.span()})\n"
    )

    rows, ms, ratios = [], [1, 2, 4, 8, 16], []
    for m in ms:
        inst = figure3_instance(m, caps)
        jobset = JobSet.from_dags(inst.dags)
        adv = simulate(machine, KRad(), jobset, policy=CP_LAST)
        opt = simulate(
            machine, ClairvoyantCriticalPath(), jobset, policy=CP_FIRST
        )
        ratio = adv.makespan / opt.makespan
        ratios.append(ratio)
        rows.append(
            [
                m,
                adv.makespan,
                inst.adversarial_makespan,
                opt.makespan,
                inst.optimal_makespan,
                ratio,
            ]
        )
        assert adv.makespan == inst.adversarial_makespan, "reproduction broken!"
        assert opt.makespan == inst.optimal_makespan, "reproduction broken!"

    print(
        format_table(
            ["m", "T adv", "closed", "T opt", "closed ", "ratio"],
            rows,
            title="simulated vs closed-form makespans (exact match required)",
        )
    )
    print()
    print(
        format_series(
            ms, ratios, x_label="m", y_label="T/T*",
            title=f"competitive ratio -> {limit:.3f} as m grows",
        )
    )


if __name__ == "__main__":
    main()
