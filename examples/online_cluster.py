#!/usr/bin/env python3
"""Scenario: an online cluster with Poisson job arrivals.

Theorem 3 covers *arbitrary release times*: K-RAD needs no knowledge of when
jobs arrive.  This script streams a Poisson arrival process of mixed
DAG jobs into a 3-resource machine, runs K-RAD, and reports response-time
statistics, utilization over time, and the Theorem-3 guarantee check for
this online trace.

Run:  python examples/online_cluster.py
"""

import numpy as np

from repro import KRad, KResourceMachine, simulate
from repro.analysis import format_table, summarize
from repro.jobs import workloads
from repro.theory import check_makespan_bound, makespan_lower_bound
from repro.viz import render_utilization


def main() -> None:
    machine = KResourceMachine((8, 4, 4), names=("cpu", "vector", "io"))
    rng = np.random.default_rng(7)
    n_jobs = 40

    jobset = workloads.random_dag_jobset(rng, 3, n_jobs, size_hint=25)
    releases = workloads.poisson_release_times(rng, n_jobs, rate=0.35)
    jobset = workloads.with_release_times(jobset, releases)
    print(f"machine: {machine}")
    print(
        f"workload: {n_jobs} jobs, Poisson arrivals over "
        f"[0, {max(releases)}] steps\n"
    )

    result = simulate(machine, KRad(), jobset, record_trace=True)
    print(result.summary(), "\n")

    rts = list(result.response_times().values())
    s = summarize(rts)
    print(
        format_table(
            ["metric", "value"],
            [
                ["jobs completed", result.num_jobs],
                ["makespan", result.makespan],
                ["idle steps (no job in system)", result.idle_steps],
                ["mean response time", s.mean],
                ["median response time", s.median],
                ["p-max response time", s.maximum],
            ],
            title="online run summary",
        )
    )

    check = check_makespan_bound(result, jobset, machine)
    lb = makespan_lower_bound(jobset, machine)
    print(
        f"\nTheorem 3 check: makespan {result.makespan} / lower bound "
        f"{lb:.1f} = {check.measured:.3f} <= {check.bound:.3f} "
        f"[{'OK' if check.holds else 'VIOLATED'}]"
    )
    print()
    bucket = max(1, result.makespan // 60)
    print(
        render_utilization(
            result.trace, category_names=machine.names, bucket=bucket
        )
    )


if __name__ == "__main__":
    main()
