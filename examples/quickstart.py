#!/usr/bin/env python3
"""Quickstart: schedule a small heterogeneous job mix with K-RAD.

Builds a 3-category machine (CPUs, vector units, I/O processors), submits a
handful of jobs — including the paper's Figure-1 example DAG — and runs the
K-RAD scheduler, printing per-job response times, utilization and an ASCII
Gantt chart of the schedule.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import KRad, KResourceMachine, simulate
from repro.dag import builders
from repro.jobs import JobSet
from repro.viz import render_gantt, render_utilization

CPU, VEC, IO = 0, 1, 2


def main() -> None:
    machine = KResourceMachine((4, 2, 2), names=("cpu", "vector", "io"))
    print(f"machine: {machine}\n")

    # A small mixed workload:
    dags = [
        builders.figure1_job(),                       # the paper's Figure 1
        builders.pipeline([IO, CPU, IO], 6, 3),       # read -> transform -> write
        builders.fork_join(8, VEC, 3,                 # CPU setup, vector burst
                           fork_category=CPU, join_category=CPU),
        builders.chain([CPU, VEC, CPU, VEC, CPU], 3), # ping-pong chain
    ]
    jobset = JobSet.from_dags(dags)
    print("jobs:")
    for job in jobset:
        print(
            f"  job {job.job_id}: work={job.work_vector().tolist()} "
            f"span={job.span()}"
        )

    result = simulate(machine, KRad(), jobset, record_trace=True)

    print(f"\n{result.summary()}\n")
    print("per-job response times:")
    for jid, rt in sorted(result.response_times().items()):
        print(f"  job {jid}: completed at t={result.completion_times[jid]}, "
              f"response {rt}")

    print()
    print(render_gantt(result.trace, category_names=machine.names))
    print()
    print(render_utilization(result.trace, category_names=machine.names))


if __name__ == "__main__":
    main()
