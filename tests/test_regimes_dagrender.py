"""Tests for regime classification and the DAG renderer."""

import numpy as np
import pytest

from repro.dag import KDag, builders
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import RecordingScheduler, simulate
from repro.theory import regime_fractions
from repro.viz import render_dag


def record(machine, js):
    sched = RecordingScheduler(KRad())
    simulate(machine, sched, js)
    return sched.records


class TestRegimes:
    def test_light_workload_never_rr(self, rng):
        machine = KResourceMachine((16, 8))
        js = workloads.light_phase_jobset(rng, machine, 6)
        report = regime_fractions(record(machine, js), machine)
        assert not report.ever_rr()
        assert all(f == 0.0 for f in
                   (report.rr_fraction(0), report.rr_fraction(1)))
        assert report.num_categories == 2

    def test_heavy_workload_enters_rr(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.heavy_phase_jobset(rng, machine, load_factor=6.0)
        report = regime_fractions(record(machine, js), machine)
        assert report.ever_rr()
        assert report.rr_fraction(0) > 0.0

    def test_idle_category_counted(self, rng):
        machine = KResourceMachine((4, 4))
        from repro.jobs import JobSet

        js = JobSet.from_dags([builders.chain([0] * 5, 2)])
        report = regime_fractions(record(machine, js), machine)
        # category 1 is never active
        assert report.idle_steps[1] == 5
        assert report.deq_steps[0] == 5

    def test_empty_records(self):
        machine = KResourceMachine((2,))
        report = regime_fractions([], machine)
        assert report.rr_fraction(0) == 0.0
        assert not report.ever_rr()


class TestRenderDag:
    def test_empty(self):
        assert "empty" in render_dag(KDag(1))

    def test_figure1_levels(self):
        out = render_dag(
            builders.figure1_job(), category_names=("cpu", "vec", "io")
        )
        assert out.splitlines()[0].startswith("K-DAG: 8 vertices")
        assert "L1: v0:cpu" in out
        assert "L4:" in out  # span 4 -> four levels
        assert "edges:" in out

    def test_truncation(self):
        dag = builders.independent_tasks([30])
        out = render_dag(dag, max_vertices_per_level=5)
        assert "+25 more" in out

    def test_category_names_default(self):
        out = render_dag(builders.chain([0, 1], 2))
        assert "c0" in out and "c1" in out
