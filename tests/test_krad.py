"""Unit tests for the K-RAD scheduler."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.machine import KResourceMachine
from repro.schedulers import KRad, Rad, check_allotments


def desires(d):
    """Helper: dict job_id -> list to dict job_id -> ndarray."""
    return {jid: np.asarray(v, dtype=np.int64) for jid, v in d.items()}


class TestKRad:
    def test_requires_reset(self):
        with pytest.raises(ScheduleError):
            KRad().allocate(1, desires({0: [1]}))

    def test_independent_categories(self):
        machine = KResourceMachine((2, 4))
        sched = KRad()
        sched.reset(machine)
        # category 0 overloaded (3 active > 2), category 1 light (2 active)
        d = desires({0: [1, 3], 1: [1, 5], 2: [1, 0]})
        alloc = sched.allocate(1, d)
        check_allotments(machine, d, alloc)
        # category 0 in RR: exactly one processor each to first two jobs;
        # job 2 gets nothing there (sparse output may omit its row)
        assert alloc[0][0] == 1 and alloc[1][0] == 1
        assert alloc.get(2, np.zeros(2))[0] == 0
        assert sched.category_state(0).in_rr_cycle()
        # category 1 in DEQ: full desires fit? 1+5 > 4 -> deprived split
        assert alloc[0][1] + alloc[1][1] == 4
        assert not sched.category_state(1).in_rr_cycle()

    def test_light_load_equals_deq(self):
        machine = KResourceMachine((8, 8))
        sched = KRad()
        sched.reset(machine)
        d = desires({0: [3, 1], 1: [2, 2]})
        alloc = sched.allocate(1, d)
        assert alloc[0].tolist() == [3, 1]
        assert alloc[1].tolist() == [2, 2]

    def test_capacity_never_exceeded_over_time(self):
        machine = KResourceMachine((3, 2))
        sched = KRad()
        sched.reset(machine)
        rng = np.random.default_rng(0)
        ids = list(range(6))
        for t in range(1, 50):
            d = desires({i: rng.integers(0, 5, size=2) for i in ids})
            alloc = sched.allocate(t, d)
            check_allotments(machine, d, alloc)

    def test_prunes_completed_jobs(self):
        machine = KResourceMachine((2,))
        sched = KRad()
        sched.reset(machine)
        sched.allocate(1, desires({0: [1], 1: [1], 2: [1]}))
        sched.allocate(2, desires({1: [1]}))  # 0 and 2 completed
        assert sched.category_state(0).queue_order == (1,)

    def test_reset_clears_state(self):
        machine = KResourceMachine((2,))
        sched = KRad()
        sched.reset(machine)
        sched.allocate(1, desires({0: [1], 1: [1], 2: [1]}))
        sched.reset(machine)
        assert sched.category_state(0).queue_order == ()
        assert not sched.category_state(0).in_rr_cycle()

    def test_name(self):
        assert KRad().name == "k-rad"


class TestRadK1:
    def test_rejects_multi_category_machine(self):
        with pytest.raises(ValueError):
            Rad().reset(KResourceMachine((2, 2)))

    def test_matches_krad_on_k1(self):
        machine = KResourceMachine((3,))
        rad, krad = Rad(), KRad()
        rad.reset(machine)
        krad.reset(machine)
        rng = np.random.default_rng(1)
        ids = list(range(5))
        for t in range(1, 40):
            d = desires({i: [int(rng.integers(0, 4))] for i in ids})
            a = rad.allocate(t, d)
            b = krad.allocate(t, d)
            a_full = {i: a.get(i, np.zeros(1)).tolist() for i in ids}
            b_full = {i: b.get(i, np.zeros(1)).tolist() for i in ids}
            assert a_full == b_full


class TestCheckAllotments:
    def test_unknown_job_rejected(self):
        machine = KResourceMachine((2,))
        with pytest.raises(ScheduleError):
            check_allotments(machine, desires({0: [1]}), desires({1: [1]}))

    def test_over_desire_rejected(self):
        machine = KResourceMachine((2,))
        with pytest.raises(ScheduleError):
            check_allotments(machine, desires({0: [1]}), desires({0: [2]}))

    def test_over_capacity_rejected(self):
        machine = KResourceMachine((2,))
        d = desires({0: [2], 1: [2]})
        with pytest.raises(ScheduleError):
            check_allotments(machine, d, d)

    def test_negative_rejected(self):
        machine = KResourceMachine((2,))
        with pytest.raises(ScheduleError):
            check_allotments(
                machine, desires({0: [1]}), desires({0: [-1]})
            )

    def test_wrong_shape_rejected(self):
        machine = KResourceMachine((2, 2))
        with pytest.raises(ScheduleError):
            check_allotments(machine, desires({0: [1, 1]}), desires({0: [1]}))

    def test_partial_allotment_ok(self):
        machine = KResourceMachine((2,))
        check_allotments(machine, desires({0: [1], 1: [1]}), desires({0: [1]}))
