"""Unit tests for the bound-verification helpers."""

import numpy as np
import pytest

from repro.dag import builders
from repro.errors import ReproError
from repro.jobs import JobSet, workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import simulate
from repro.theory import (
    check_lemma2,
    check_makespan_bound,
    check_theorem5,
    check_theorem6,
)


@pytest.fixture
def setup(machine2, rng):
    js = workloads.random_dag_jobset(rng, 2, 6)
    result = simulate(machine2, KRad(), js)
    return machine2, js, result


class TestChecks:
    def test_makespan_check_holds(self, setup):
        machine, js, result = setup
        chk = check_makespan_bound(result, js, machine)
        assert chk.holds
        assert chk.measured <= chk.bound
        assert "OK" in str(chk)

    def test_lemma2_check_holds(self, setup):
        machine, js, result = setup
        assert result.idle_steps == 0
        assert check_lemma2(result, js, machine).holds

    def test_lemma2_rejects_idle_runs(self, machine2):
        js = JobSet.from_dags(
            [builders.chain([0], 2), builders.chain([0], 2)],
            release_times=[0, 50],
        )
        result = simulate(machine2, KRad(), js)
        with pytest.raises(ReproError):
            check_lemma2(result, js, machine2)

    def test_theorem5_check(self, machine3, rng):
        js = workloads.light_phase_jobset(rng, machine3, 2)
        result = simulate(machine3, KRad(), js)
        assert check_theorem5(result, js, machine3).holds

    def test_theorem6_check(self, setup):
        machine, js, result = setup
        assert check_theorem6(result, js, machine).holds

    def test_job_count_mismatch(self, setup):
        machine, js, result = setup
        other = JobSet.from_dags([builders.chain([0], 2)])
        with pytest.raises(ReproError):
            check_makespan_bound(result, other, machine)

    def test_capacity_mismatch(self, setup):
        _, js, result = setup
        other_machine = KResourceMachine((2, 2))
        with pytest.raises(ReproError):
            check_makespan_bound(result, js, other_machine)

    def test_failed_check_reports(self, setup):
        machine, js, result = setup
        chk = check_makespan_bound(result, js, machine)
        # fabricate a violated check via the dataclass to test formatting
        from repro.theory.verify import BoundCheck

        bad = BoundCheck(name="x", measured=9.0, bound=1.0, holds=False)
        assert "VIOLATED" in str(bad)
