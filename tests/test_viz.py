"""Unit tests for ASCII visualisation."""

import numpy as np

from repro.dag import builders
from repro.jobs import JobSet
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import simulate
from repro.sim.trace import Trace
from repro.viz import render_gantt, render_utilization, sparkline


def traced_run(machine, dags):
    js = JobSet.from_dags(dags)
    return simulate(machine, KRad(), js, record_trace=True)


class TestGantt:
    def test_empty_trace(self):
        t = Trace(num_categories=1, capacities=(1,))
        assert "empty" in render_gantt(t)

    def test_rows_per_processor(self, machine2):
        r = traced_run(machine2, [builders.independent_tasks([4, 2])])
        out = render_gantt(r.trace, category_names=machine2.names)
        assert out.count("p0") == 2  # one per category
        assert "cpu" in out and "io" in out
        # all six tasks appear as job symbol '0' inside the grid cells
        cells = [
            line.split("|")[1]
            for line in out.splitlines()
            if line.lstrip().startswith("p")
        ]
        assert sum(c.count("0") for c in cells) == 6

    def test_truncation(self, machine2):
        r = traced_run(machine2, [builders.chain([0] * 20, 2)])
        out = render_gantt(r.trace, max_steps=5)
        assert "truncated" in out

    def test_multiple_jobs_distinct_symbols(self, machine2):
        r = traced_run(
            machine2,
            [builders.independent_tasks([2, 0]), builders.independent_tasks([2, 0])],
        )
        out = render_gantt(r.trace)
        assert "0" in out and "1" in out


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_zeroes(self):
        assert sparkline([0, 0]) == "  "

    def test_monotone_mapping(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"

    def test_top_override(self):
        assert sparkline([1.0], top=2.0) != sparkline([1.0], top=1.0)


class TestUtilization:
    def test_render(self, machine2):
        r = traced_run(machine2, [builders.independent_tasks([8, 4])])
        out = render_utilization(r.trace, category_names=machine2.names)
        assert "cpu" in out and "io" in out

    def test_bucketing(self, machine2):
        r = traced_run(machine2, [builders.chain([0] * 9, 2)])
        out = render_utilization(r.trace, bucket=3)
        body = out.splitlines()[1]
        # 9 steps bucketed by 3 -> 3 chars between the pipes
        assert len(body.split("|")[1]) == 3

    def test_empty_trace(self):
        t = Trace(num_categories=1, capacities=(1,))
        assert "empty" in render_utilization(t)
