"""Tests for RetryPolicy and engine-level kill/resubmit semantics."""

import pytest

from repro.dag import builders
from repro.errors import SimulationError
from repro.jobs import workloads
from repro.jobs.jobset import JobSet
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import RetryPolicy, simulate, validate_schedule
from repro.sim.faults import JobKiller, ScriptedKills

import numpy as np


class TestRetryPolicy:
    def test_exponential_backoff(self):
        p = RetryPolicy(max_attempts=5, base_delay=2, factor=2.0, max_delay=64)
        assert p.delay(1) == 2
        assert p.delay(2) == 4
        assert p.delay(3) == 8

    def test_delay_capped(self):
        p = RetryPolicy(max_attempts=9, base_delay=4, factor=4.0, max_delay=20)
        assert p.delay(1) == 4
        assert p.delay(2) == 16
        assert p.delay(3) == 20  # capped
        assert p.delay(8) == 20

    def test_attempt_cap(self):
        p = RetryPolicy(max_attempts=3)
        assert p.allows_retry(1)
        assert p.allows_retry(2)
        assert not p.allows_retry(3)

    def test_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError):
            RetryPolicy(base_delay=0)
        with pytest.raises(SimulationError):
            RetryPolicy(factor=0.5)
        with pytest.raises(SimulationError):
            RetryPolicy(base_delay=4, max_delay=2)
        with pytest.raises(SimulationError):
            p = RetryPolicy()
            p.delay(0)

    def test_round_trip(self):
        p = RetryPolicy(max_attempts=4, base_delay=3, factor=1.5, max_delay=30)
        q = RetryPolicy.from_dict(p.to_dict())
        assert q.to_dict() == p.to_dict()


def _chain_jobset(*lengths: int) -> JobSet:
    """Deterministic K=1 chains: job i executes one task per step."""
    return JobSet.from_dags(
        [builders.chain([0] * n, 1) for n in lengths]
    )


class TestKillResubmit:
    def test_killed_job_retried_and_completes(self):
        machine = KResourceMachine((4,))
        js = _chain_jobset(6, 3, 3)  # victim (job 0) runs steps 1..6
        r = simulate(
            machine,
            KRad(),
            js,
            fault_model=ScriptedKills({2: [0]}),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=2),
            record_trace=True,
        )
        assert r.failed_jobs == ()
        assert set(r.completion_times) == {0, 1, 2}
        assert r.retries == {0: 1}
        assert r.total_retries == 1
        validate_schedule(r.trace, js)

    def test_backoff_delays_restart(self):
        machine = KResourceMachine((4,))
        js = _chain_jobset(4)
        delay = 5
        r = simulate(
            machine,
            KRad(),
            js,
            fault_model=ScriptedKills({1: [0]}),
            retry_policy=RetryPolicy(max_attempts=2, base_delay=delay),
            record_trace=True,
        )
        # killed at step 1; no useful placement before step 1 + delay
        restart_steps = [
            p.t
            for p in r.trace.placements()
            if p.job_id == 0 and not p.wasted
        ]
        assert restart_steps
        assert min(restart_steps) >= 1 + delay
        # retry re-runs the whole chain: 4 useful + 1 wasted step
        assert r.completion_times[0] == 1 + delay + 4 - 1

    def test_attempts_exhausted_fails_permanently(self):
        machine = KResourceMachine((4,))
        js = _chain_jobset(6, 3)
        r = simulate(
            machine,
            KRad(),
            js,
            # kill the victim every step it could possibly be alive
            fault_model=ScriptedKills({t: [0] for t in range(1, 40)}),
            retry_policy=RetryPolicy(max_attempts=2, base_delay=1),
        )
        assert r.failed_jobs == (0,)
        assert 0 not in r.completion_times
        assert set(r.completion_times) == {1}
        assert r.retries.get(0) == 1  # retried once, then gave up

    def test_wasted_counts_killed_progress(self):
        machine = KResourceMachine((2,))
        js = _chain_jobset(6)
        r = simulate(
            machine,
            KRad(),
            js,
            fault_model=ScriptedKills({3: [0]}),
            retry_policy=RetryPolicy(max_attempts=2, base_delay=1),
        )
        # 3 steps of the chain executed before the kill — all wasted
        assert r.total_wasted == 3
        # busy minus wasted is exactly the useful (completed) work
        useful = r.busy - r.wasted_work_vector()
        assert useful.tolist() == js.total_work_vector().tolist()

    def test_goodput_below_one(self):
        machine = KResourceMachine((2,))
        js = _chain_jobset(6, 4)
        r = simulate(
            machine,
            KRad(),
            js,
            fault_model=ScriptedKills({2: [0]}),
            retry_policy=RetryPolicy(max_attempts=2, base_delay=1),
        )
        g = r.goodput_vector()
        assert np.all(g >= 0.0)
        assert np.all(g <= 1.0)
        assert g[0] < 1.0  # wasted work shows up

    def test_deterministic_with_random_killer(self, rng):
        machine = KResourceMachine((4, 2))
        js = workloads.random_dag_jobset(rng, 2, 4, size_hint=8)

        def run():
            return simulate(
                machine,
                KRad(),
                js,
                fault_model=JobKiller(0.05, seed=3),
                retry_policy=RetryPolicy(max_attempts=4, base_delay=2),
            )

        r1, r2 = run(), run()
        assert r1.completion_times == r2.completion_times
        assert r1.retries == r2.retries
        assert r1.failed_jobs == r2.failed_jobs
        assert r1.makespan == r2.makespan
