"""Property suites: serialization round-trips and renderer robustness."""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io import (
    jobset_from_dict,
    jobset_to_dict,
    jobset_to_swf,
    parse_swf,
    trace_from_dict,
    trace_to_dict,
)
from repro.jobs import RandomOrder, workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import simulate, validate_schedule
from repro.viz import (
    render_gantt,
    render_job_states,
    render_utilization,
)

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def any_workload(draw):
    k = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**31))
    n = draw(st.integers(1, 6))
    backend = draw(st.sampled_from(["dag", "phase"]))
    online = draw(st.booleans())
    rng = np.random.default_rng(seed)
    if backend == "dag":
        js = workloads.random_dag_jobset(rng, k, n, size_hint=8)
    else:
        js = workloads.random_phase_jobset(rng, k, n, max_work=12)
    if online:
        js = workloads.with_release_times(
            js, workloads.uniform_release_times(rng, n, horizon=10)
        )
    return k, js


class TestJsonRoundTripProperties:
    @given(any_workload())
    @_SETTINGS
    def test_jobset_round_trip_simulates_identically(self, case):
        k, js = case
        machine = KResourceMachine(tuple([3] * k))
        clone = jobset_from_dict(json.loads(json.dumps(jobset_to_dict(js))))
        a = simulate(machine, KRad(), js)
        b = simulate(machine, KRad(), clone)
        assert a.makespan == b.makespan
        assert a.completion_times == b.completion_times

    @given(any_workload())
    @_SETTINGS
    def test_trace_round_trip_still_validates(self, case):
        k, js = case
        machine = KResourceMachine(tuple([3] * k))
        r = simulate(machine, KRad(), js, record_trace=True)
        clone = trace_from_dict(
            json.loads(json.dumps(trace_to_dict(r.trace)))
        )
        validate_schedule(clone, js)


class TestSwfRoundTripProperty:
    @given(st.integers(0, 2**31), st.integers(1, 8))
    @_SETTINGS
    def test_emitted_swf_reparses(self, seed, n):
        rng = np.random.default_rng(seed)
        js = workloads.random_phase_jobset(rng, 1, n, max_parallelism=4)
        jobs = parse_swf(jobset_to_swf(js))
        assert len(jobs) == n
        assert all(j.run_time >= 1 and j.processors >= 1 for j in jobs)


class TestRendererRobustness:
    @given(any_workload())
    @_SETTINGS
    def test_renderers_never_crash(self, case):
        k, js = case
        machine = KResourceMachine(tuple([3] * k))
        r = simulate(machine, KRad(), js, record_trace=True)
        assert render_gantt(r.trace)
        assert render_utilization(r.trace)
        assert render_job_states(r.trace)
        assert render_job_states(r.trace, max_steps=3)

    def test_gantt_symbol_wrap_beyond_62_jobs(self):
        from repro.dag import builders
        from repro.jobs import JobSet

        machine = KResourceMachine((4,))
        js = JobSet.from_dags(
            [builders.chain([0], 1) for _ in range(70)]
        )
        r = simulate(machine, KRad(), js, record_trace=True)
        out = render_gantt(r.trace)
        assert "wrapping" in out  # legend mentions the wrap


class TestRandomPolicyEngine:
    def test_random_order_end_to_end_deterministic(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 5, size_hint=10)
        a = simulate(machine2, KRad(), js, policy=RandomOrder(), seed=9)
        b = simulate(machine2, KRad(), js, policy=RandomOrder(), seed=9)
        assert a.completion_times == b.completion_times

    def test_random_order_valid_schedule(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 5, size_hint=10)
        r = simulate(
            machine2, KRad(), js, policy=RandomOrder(), seed=3,
            record_trace=True,
        )
        validate_schedule(r.trace, js)
