"""Tests for the per-job state timeline renderer."""

from repro.dag import builders
from repro.jobs import JobSet
from repro.machine import KResourceMachine
from repro.schedulers import GreedyFcfs, KRad
from repro.sim import simulate
from repro.sim.trace import Trace
from repro.viz import render_job_states


def grid_rows(out: str) -> dict[int, str]:
    rows = {}
    for line in out.splitlines():
        stripped = line.strip()
        if stripped.startswith("j") and "|" in line:
            jid = int(stripped.split("|")[0].strip()[1:])
            rows[jid] = line.split("|")[1]
    return rows


class TestRenderJobStates:
    def test_empty(self):
        assert "empty" in render_job_states(Trace(1, (1,)))

    def test_light_load_is_all_satisfied(self):
        machine = KResourceMachine((8,))
        js = JobSet.from_dags([builders.chain([0] * 4, 1)])
        r = simulate(machine, KRad(), js, record_trace=True)
        rows = grid_rows(render_job_states(r.trace))
        assert rows[0] == "####"

    def test_fcfs_starves_late_jobs_visibly(self):
        machine = KResourceMachine((1,))
        js = JobSet.from_dags(
            [builders.chain([0] * 5, 1), builders.chain([0] * 5, 1)]
        )
        r = simulate(machine, GreedyFcfs(), js, record_trace=True)
        rows = grid_rows(render_job_states(r.trace))
        assert rows[0] == "#####" + " " * 5
        assert rows[1] == "." * 5 + "#####"

    def test_arrival_shows_blank_prefix(self):
        machine = KResourceMachine((2,))
        js = JobSet.from_dags(
            [builders.chain([0], 1), builders.chain([0], 1)],
            release_times=[0, 3],
        )
        r = simulate(machine, KRad(), js, record_trace=True)
        rows = grid_rows(render_job_states(r.trace))
        assert rows[1].startswith("   ")  # not in system for steps 1..3

    def test_deprived_marker(self):
        machine = KResourceMachine((2,))
        js = JobSet.from_dags([builders.independent_tasks([8])])
        r = simulate(machine, KRad(), js, record_trace=True)
        rows = grid_rows(render_job_states(r.trace))
        assert "+" in rows[0]  # desire 8 > capacity 2

    def test_truncation(self):
        machine = KResourceMachine((1,))
        js = JobSet.from_dags([builders.chain([0] * 12, 1)])
        r = simulate(machine, KRad(), js, record_trace=True)
        out = render_job_states(r.trace, max_steps=4)
        assert "truncated" in out
        assert grid_rows(out)[0] == "####"
