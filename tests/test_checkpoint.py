"""Checkpoint/resume determinism: the acceptance test of the subsystem.

A run interrupted at an arbitrary step, checkpointed, restored (optionally
through a JSON file) and run to completion must produce a result that is
*identical* to the uninterrupted run — same makespan, same completion
times, same busy/wasted vectors, same trace, same retry ledger.
"""

import numpy as np
import pytest

from repro.errors import SerializationError, SimulationError
from repro.io.serialize import dump_checkpoint, load_checkpoint
from repro.io.trace_io import trace_to_dict
from repro.jobs import workloads
from repro.jobs.policies import RandomOrder
from repro.machine import KResourceMachine
from repro.schedulers import GreedyFcfs, KRad, KRoundRobin, Setf
from repro.sim import RetryPolicy, Simulator
from repro.sim.faults import JobKiller, TaskFailures, periodic_outage


def _assert_identical(a, b):
    assert a.makespan == b.makespan
    assert a.completion_times == b.completion_times
    assert a.idle_steps == b.idle_steps
    assert a.busy.tolist() == b.busy.tolist()
    assert a.retries == b.retries
    assert a.failed_jobs == b.failed_jobs
    assert a.stall_steps == b.stall_steps
    assert a.longest_stall == b.longest_stall
    if a.wasted is None:
        assert b.wasted is None
    else:
        assert a.wasted.tolist() == b.wasted.tolist()
    if a.trace is None:
        assert b.trace is None
    else:
        assert trace_to_dict(a.trace) == trace_to_dict(b.trace)


def _make_jobset(rng, k=2, n=6):
    return workloads.random_dag_jobset(
        rng,
        k,
        n,
        size_hint=12,
        release_times=[0, 0, 2, 5, 5, 11][:n],
    )


def _run_pair(make_sim, stop_at, restore_kwargs):
    """Reference run vs interrupted-at-``stop_at``-then-resumed run."""
    ref = make_sim().run()
    sim = make_sim()
    partial = sim.run_until(stop_at)
    if partial is not None:
        # run finished before the interrupt point; nothing to resume
        _assert_identical(ref, partial)
        return ref, partial
    snap = sim.checkpoint()
    resumed = Simulator.restore(snap, **restore_kwargs).run()
    _assert_identical(ref, resumed)
    return ref, resumed


class TestHealthyResume:
    @pytest.mark.parametrize("stop_at", [1, 2, 3, 5, 8, 13, 1000])
    def test_krad_resume_identical(self, rng, stop_at):
        machine = KResourceMachine((4, 2))
        js = _make_jobset(rng)

        def make_sim():
            return Simulator(
                machine, KRad(), js.fresh_copy(), record_trace=True
            )

        _run_pair(
            make_sim, stop_at, {"scheduler": KRad()}
        )

    @pytest.mark.parametrize(
        "make_sched", [KRad, KRoundRobin, Setf, GreedyFcfs]
    )
    def test_all_schedulers_resume(self, rng, make_sched):
        machine = KResourceMachine((3, 2))
        js = _make_jobset(rng, n=5)

        def make_sim():
            return Simulator(
                machine, make_sched(), js.fresh_copy(), record_trace=True
            )

        _run_pair(make_sim, 4, {"scheduler": make_sched()})

    def test_resume_with_random_policy(self, rng):
        """RNG state must survive the round-trip bit-for-bit."""
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 4, size_hint=10)
        policy = RandomOrder()

        def make_sim():
            return Simulator(
                machine,
                KRad(),
                js.fresh_copy(),
                policy=policy,
                seed=77,
                record_trace=True,
            )

        _run_pair(
            make_sim, 3, {"scheduler": KRad(), "policy": policy}
        )

    def test_resume_during_idle_gap(self, rng):
        """Interrupt inside a fast-forwarded idle interval."""
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(
            rng, 1, 2, size_hint=4, release_times=[0, 50]
        )

        def make_sim():
            return Simulator(
                machine, KRad(), js.fresh_copy(), record_trace=True
            )

        ref, resumed = _run_pair(make_sim, 20, {"scheduler": KRad()})
        assert ref.idle_steps > 0


class TestFaultyResume:
    def test_resume_under_outage_and_task_failures(self, rng):
        machine = KResourceMachine((4, 2))
        js = _make_jobset(rng)
        cap = periodic_outage(
            (4, 2), category=0, period=7, duration=3, degraded=0
        )

        def make_sim():
            return Simulator(
                machine,
                KRad(),
                js.fresh_copy(),
                record_trace=True,
                capacity_schedule=cap,
                fault_model=TaskFailures(0.15, seed=5),
            )

        for stop_at in (2, 6, 9, 17):
            _run_pair(
                make_sim,
                stop_at,
                {
                    "scheduler": KRad(),
                    "capacity_schedule": cap,
                    "fault_model": TaskFailures(0.15, seed=5),
                },
            )

    def test_resume_with_kills_and_retries(self, rng):
        machine = KResourceMachine((4, 2))
        js = _make_jobset(rng)
        policy = RetryPolicy(max_attempts=3, base_delay=3)

        def make_sim():
            return Simulator(
                machine,
                KRad(),
                js.fresh_copy(),
                record_trace=True,
                fault_model=JobKiller(0.1, seed=9),
                retry_policy=policy,
            )

        ref = make_sim().run()
        # make sure the scenario actually exercises the retry machinery
        assert ref.total_retries > 0 or ref.failed_jobs
        for stop_at in (3, 7, 12):
            _run_pair(
                make_sim,
                stop_at,
                {
                    "scheduler": KRad(),
                    "fault_model": JobKiller(0.1, seed=9),
                    "retry_policy": policy,
                },
            )


class TestCheckpointFile:
    def test_json_round_trip(self, rng, tmp_path):
        machine = KResourceMachine((4, 2))
        js = _make_jobset(rng)
        ref = Simulator(
            machine, KRad(), js.fresh_copy(), record_trace=True
        ).run()

        sim = Simulator(
            machine, KRad(), js.fresh_copy(), record_trace=True
        )
        assert sim.run_until(5) is None
        path = str(tmp_path / "run.ckpt.json")
        dump_checkpoint(sim.checkpoint(), path)
        resumed = Simulator.restore(
            load_checkpoint(path), scheduler=KRad()
        ).run()
        _assert_identical(ref, resumed)

    def test_checkpoint_is_plain_json(self, rng):
        import json

        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(machine, KRad(), js.fresh_copy())
        sim.run_until(2)
        snap = sim.checkpoint()
        json.dumps(snap)  # must not contain numpy scalars/arrays


class TestGuards:
    def test_wrong_scheduler_rejected(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(machine, KRad(), js.fresh_copy())
        sim.run_until(1)
        snap = sim.checkpoint()
        with pytest.raises(SimulationError, match="scheduler"):
            Simulator.restore(snap, scheduler=Setf())

    def test_fault_model_presence_must_match(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(
            machine,
            KRad(),
            js.fresh_copy(),
            fault_model=TaskFailures(0.1, seed=0),
        )
        sim.run_until(1)
        snap = sim.checkpoint()
        with pytest.raises(SimulationError, match="fault_model"):
            Simulator.restore(snap, scheduler=KRad())

    def test_finished_run_cannot_checkpoint(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(machine, KRad(), js.fresh_copy())
        sim.run()
        with pytest.raises(SimulationError, match="finished"):
            sim.checkpoint()

    def test_bad_version_rejected(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(machine, KRad(), js.fresh_copy())
        sim.run_until(1)
        snap = sim.checkpoint()
        snap["version"] = 999
        with pytest.raises(SerializationError, match="version"):
            Simulator.restore(snap, scheduler=KRad())

    def test_bad_format_rejected(self, rng):
        with pytest.raises(SerializationError, match="checkpoint"):
            Simulator.restore({"format": "jobset"}, scheduler=KRad())

    def test_missing_section_rejected(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(machine, KRad(), js.fresh_copy())
        sim.run_until(1)
        snap = sim.checkpoint()
        del snap["rng"]
        with pytest.raises(SerializationError, match="rng"):
            Simulator.restore(snap, scheduler=KRad())

    def test_missing_engine_key_rejected(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(machine, KRad(), js.fresh_copy())
        sim.run_until(1)
        snap = sim.checkpoint()
        del snap["engine"]["stall_run"]
        with pytest.raises(SerializationError, match="stall_run"):
            Simulator.restore(snap, scheduler=KRad())

    def test_rerun_guard_still_fires(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(machine, KRad(), js.fresh_copy())
        sim.run()
        with pytest.raises(SimulationError, match="fresh copy"):
            sim.run()

    def test_run_until_after_finish_returns_result(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=6)
        sim = Simulator(machine, KRad(), js.fresh_copy())
        r = sim.run_until(10_000)
        assert r is not None
        assert sim.run_until(10_000) is r
