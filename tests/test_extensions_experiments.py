"""Integration tests for the extension experiment drivers."""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments import exp_ablation, exp_feedback, exp_randomized, exp_speeds


class TestExtensionDrivers:
    def test_randomized_small(self):
        report = exp_randomized.run(trials=4, ms=(2,), configs=((2, 2),))
        assert report.passed, report.failing_checks()

    def test_speeds_small(self):
        report = exp_speeds.run(seed=1, repeats=1, n_jobs=(4,))
        assert report.passed, report.failing_checks()

    def test_feedback_small(self):
        report = exp_feedback.run(seed=1, repeats=1, quanta=(2, 4), n_jobs=6)
        assert report.passed, report.failing_checks()

    def test_ablation(self):
        report = exp_ablation.run(seed=1, m=2)
        assert report.passed, report.failing_checks()


class TestRegistryComplete:
    def test_all_registered(self):
        assert {"RAND", "SPEED", "FEEDBACK", "ABLATE"} <= set(REGISTRY)

    def test_run_by_id(self):
        report = run_experiment("ablate", m=2)
        assert report.experiment_id == "ABLATE"


class TestFairnessDriver:
    def test_fair_small(self):
        from repro.experiments import exp_fairness

        report = exp_fairness.run(seed=1, repeats=1, num_jobs=20)
        assert report.passed, report.failing_checks()

    def test_fair_registered(self):
        assert "FAIR" in REGISTRY


class TestShopAndFaultDrivers:
    def test_shop_small(self):
        from repro.experiments import exp_dagshop

        report = exp_dagshop.run(seed=1, repeats=1)
        assert report.passed, report.failing_checks()

    def test_fault_small(self):
        from repro.experiments import exp_faults

        report = exp_faults.run(seed=1, repeats=1, n_jobs=6)
        assert report.passed, report.failing_checks()

    def test_churn_small(self):
        from repro.experiments import exp_churn

        report = exp_churn.run(seed=1, repeats=1)
        assert report.passed, report.failing_checks()


class TestOptDriver:
    def test_opt_small(self):
        from repro.experiments import exp_optimal

        report = exp_optimal.run(seed=1, instances=8)
        assert report.passed, report.failing_checks()


class TestHuntDriver:
    def test_hunt_small(self):
        from repro.experiments import exp_hunt

        report = exp_hunt.run(seed=1, iterations=300, configs=((2, 1),))
        assert report.passed, report.failing_checks()


class TestWorkloadTable:
    def test_wkld(self):
        from repro.experiments import exp_workloads

        report = exp_workloads.run(seed=2)
        assert report.passed, report.failing_checks()


class TestAppsDriver:
    def test_apps_small(self):
        from repro.experiments import exp_applications

        report = exp_applications.run(seed=3, repeats=2, num_jobs=8)
        assert report.passed, report.failing_checks()


class TestSensitivityDriver:
    def test_sens_small(self):
        from repro.experiments import exp_sensitivity

        report = exp_sensitivity.run(ks=(1, 2), ps=(2,), m=2)
        assert report.passed, report.failing_checks()
