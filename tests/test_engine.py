"""Unit tests for the simulation engine."""

import numpy as np
import pytest

from repro.dag import builders
from repro.errors import ScheduleError, SimulationError
from repro.jobs import DagJob, JobSet, Phase, PhaseJob
from repro.machine import KResourceMachine
from repro.schedulers import GreedyFcfs, KRad
from repro.schedulers.base import Scheduler
from repro.sim import Simulator, simulate


class TestBasics:
    def test_single_chain_job(self, machine2):
        js = JobSet.from_dags([builders.chain([0, 1, 0], 2)])
        r = simulate(machine2, KRad(), js)
        assert r.makespan == 3  # purely sequential
        assert r.mean_response_time == 3
        assert r.completion_times[0] == 3
        assert r.idle_steps == 0

    def test_parallel_job_uses_capacity(self, machine2):
        js = JobSet.from_dags([builders.independent_tasks([8, 0])])
        r = simulate(machine2, KRad(), js)
        assert r.makespan == 2  # 8 tasks on 4 cpus

    def test_mismatched_k_rejected(self, machine2):
        js = JobSet.from_dags([builders.chain([0], 1)])
        with pytest.raises(SimulationError):
            Simulator(machine2, KRad(), js)

    def test_release_semantics(self, machine2):
        # a job released at r first executes at step r+1
        js = JobSet.from_dags([builders.chain([0], 2)], release_times=[3])
        r = simulate(machine2, KRad(), js)
        assert r.completion_times[0] == 4
        assert r.response_time(0) == 1
        assert r.idle_steps == 3

    def test_idle_interval_fast_forward(self, machine2):
        dags = [builders.chain([0], 2), builders.chain([0], 2)]
        js = JobSet.from_dags(dags, release_times=[0, 1000])
        r = simulate(machine2, KRad(), js)
        assert r.makespan == 1001
        assert r.idle_steps == 999

    def test_simultaneous_releases(self, machine2):
        dags = [builders.chain([0], 2) for _ in range(3)]
        js = JobSet.from_dags(dags, release_times=[2, 2, 2])
        r = simulate(machine2, KRad(), js)
        assert all(ct == 3 for ct in r.completion_times.values())

    def test_phase_jobs_supported(self, machine2):
        js = JobSet([PhaseJob([Phase([8, 4], [4, 2])], job_id=0)])
        r = simulate(machine2, KRad(), js)
        assert r.makespan == 2

    def test_busy_accounting(self, machine2):
        js = JobSet.from_dags([builders.independent_tasks([4, 2])])
        r = simulate(machine2, KRad(), js)
        assert r.busy.tolist() == [4, 2]
        assert r.utilization(0) == 1.0

    def test_fresh_flag_preserves_jobset(self, machine2):
        js = JobSet.from_dags([builders.chain([0, 0], 2)])
        simulate(machine2, KRad(), js, fresh=True)
        assert not js[0].is_complete
        simulate(machine2, KRad(), js, fresh=False)
        assert js[0].is_complete


class TestDeterminism:
    def test_same_seed_same_result(self, machine3, rng):
        from repro.jobs import workloads

        js = workloads.random_dag_jobset(rng, 3, 8)
        a = simulate(machine3, KRad(), js, seed=1)
        b = simulate(machine3, KRad(), js, seed=1)
        assert a.makespan == b.makespan
        assert a.completion_times == b.completion_times


class TestGuards:
    def test_max_steps_guard(self, machine2):
        js = JobSet.from_dags([builders.chain([0] * 10, 2)])
        with pytest.raises(SimulationError):
            simulate(machine2, KRad(), js, max_steps=3)

    def test_lazy_scheduler_detected(self, machine2):
        class Lazy(Scheduler):
            name = "lazy"

            def allocate(self, t, desires, jobs=None):
                return {}

        js = JobSet.from_dags([builders.chain([0], 2)])
        with pytest.raises(SimulationError, match="work-conserving"):
            simulate(machine2, Lazy(), js)

    def test_cheating_scheduler_caught_by_validation(self, machine2):
        class Cheater(Scheduler):
            name = "cheater"

            def allocate(self, t, desires, jobs=None):
                # allocates more than capacity
                return {
                    jid: np.full(2, 100, dtype=np.int64) for jid in desires
                }

        js = JobSet.from_dags([builders.independent_tasks([200, 200])])
        with pytest.raises(ScheduleError):
            simulate(machine2, Cheater(), js)

    def test_validation_can_be_disabled_but_jobs_still_guard(self, machine2):
        class Cheater(Scheduler):
            name = "cheater"

            def allocate(self, t, desires, jobs=None):
                return {jid: desires[jid] + 100 for jid in desires}

        js = JobSet.from_dags([builders.chain([0], 2)])
        # job-level allotment check still fires
        with pytest.raises(ScheduleError):
            simulate(machine2, Cheater(), js, validate=False)


class TestTraceRecording:
    def test_trace_absent_by_default(self, machine2):
        js = JobSet.from_dags([builders.chain([0], 2)])
        assert simulate(machine2, KRad(), js).trace is None

    def test_trace_covers_all_work(self, machine2):
        js = JobSet.from_dags([builders.independent_tasks([5, 3])])
        r = simulate(machine2, KRad(), js, record_trace=True)
        assert r.trace is not None
        total = r.trace.busy_matrix().sum(axis=0)
        assert total.tolist() == [5, 3]

    def test_trace_arrivals_and_completions(self, machine2):
        js = JobSet.from_dags(
            [builders.chain([0], 2), builders.chain([1], 2)],
            release_times=[0, 1],
        )
        r = simulate(machine2, KRad(), js, record_trace=True)
        first = r.trace.steps[0]
        assert first.arrivals == (0,)
        assert first.completions == (0,)
        second = r.trace.steps[1]
        assert second.arrivals == (1,)
