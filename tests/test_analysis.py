"""Unit tests for the analysis package (tables, stats, sweeps, competitive)."""

import numpy as np
import pytest

from repro.analysis import (
    compare_schedulers,
    format_series,
    format_table,
    geometric_mean,
    grid,
    makespan_ratio,
    mean_response_ratio,
    run_sweep,
    summarize,
)
from repro.errors import ReproError
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import Equi, KRad


class TestTables:
    def test_basic_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "0.125" in out
        assert "2.500" in out

    def test_title_and_precision(self):
        out = format_table(["x"], [[1.23456]], title="T", precision=1)
        assert out.startswith("T\n")
        assert "1.2" in out

    def test_booleans(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_series(self):
        out = format_series([1, 2], [0.5, 1.0], title="S")
        assert out.startswith("S\n")
        assert out.count("#") > 0

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            format_series([1], [1.0, 2.0])


class TestStats:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4])
        assert s.n == 4 and s.mean == 2.5 and s.minimum == 1 and s.maximum == 4
        assert s.median == 2.5

    def test_summarize_single(self):
        assert summarize([5.0]).std == 0.0

    def test_summarize_empty(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([0.0, 1.0])


class TestSweeps:
    def test_grid(self):
        points = grid(a=[1, 2], b=["x"])
        assert points == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_run_sweep_collects_rows(self):
        points = grid(a=[1, 2, 3])
        sweep = run_sweep(points, lambda p, rng: {"sq": p["a"] ** 2})
        assert sweep.column("sq") == [1, 4, 9]
        assert sweep.headers == ["a", "sq"]
        assert sweep.as_table_rows() == [[1, 1], [2, 4], [3, 9]]

    def test_repeats_add_column(self):
        sweep = run_sweep(grid(a=[1]), lambda p, rng: {"v": 0}, repeats=3)
        assert len(sweep.rows) == 3
        assert sweep.column("rep") == [0, 1, 2]

    def test_deterministic_rng(self):
        def measure(p, rng):
            return {"v": float(rng.random())}

        a = run_sweep(grid(a=[1, 2]), measure, seed=4)
        b = run_sweep(grid(a=[1, 2]), measure, seed=4)
        assert a.column("v") == b.column("v")
        c = run_sweep(grid(a=[1, 2]), measure, seed=5)
        assert a.column("v") != c.column("v")

    def test_filter(self):
        sweep = run_sweep(grid(a=[1, 2]), lambda p, rng: {"v": p["a"]})
        assert sweep.filter(a=2).column("v") == [2]

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([], lambda p, rng: {})

    def test_inconsistent_metrics_rejected(self):
        calls = [0]

        def measure(p, rng):
            calls[0] += 1
            return {"a": 1} if calls[0] == 1 else {"b": 2}

        with pytest.raises(ValueError):
            run_sweep(grid(a=[1, 2]), measure)


class TestCompetitive:
    def test_makespan_ratio(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 5)
        m = makespan_ratio(machine2, KRad(), js)
        assert m.ratio >= 1.0 - 1e-9
        assert m.within_bound
        assert m.theorem_limit is not None  # auto-filled for k-rad

    def test_mean_response_ratio(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 6)
        m = mean_response_ratio(machine2, KRad(), js)
        assert m.ratio >= 1.0 - 1e-9
        assert m.within_bound

    def test_no_limit_for_baselines(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 4)
        m = mean_response_ratio(machine2, Equi(), js)
        assert m.theorem_limit is None
        assert m.within_bound  # vacuously

    def test_compare_schedulers(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 6)
        out = compare_schedulers(machine2, [KRad(), Equi()], js)
        assert set(out) == {"k-rad", "equi"}
        for metrics in out.values():
            assert metrics["makespan_ratio"] >= 1.0 - 1e-9
            assert "mean_rt_ratio" in metrics
