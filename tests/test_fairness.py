"""Tests for the RR fairness analysis and instrumentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import GreedyFcfs, KRad
from repro.sim import simulate
from repro.sim.instrument import RecordingScheduler
from repro.theory.fairness import jain_index, service_gaps, verify_service_bound


def record_run(machine, jobset, inner=None):
    sched = RecordingScheduler(inner or KRad())
    simulate(machine, sched, jobset)
    return sched


class TestRecordingScheduler:
    def test_records_every_step(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 6)
        sched = record_run(machine2, js)
        assert len(sched.records) >= 1
        assert sched.records[0].t == 1
        assert sched.name == "k-rad"

    def test_record_accessors(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 6)
        sched = record_run(machine2, js)
        rec = sched.records[0]
        for jid in rec.served_jobs(0):
            assert rec.allotments[jid][0] > 0
        for jid in rec.active_jobs(0):
            assert rec.desires[jid][0] > 0

    def test_transparent_results(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 8)
        plain = simulate(machine2, KRad(), js)
        wrapped = simulate(machine2, RecordingScheduler(KRad()), js)
        assert plain.makespan == wrapped.makespan
        assert plain.completion_times == wrapped.completion_times

    def test_reset_clears_records(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 4)
        sched = RecordingScheduler(KRad())
        simulate(machine2, sched, js)
        n1 = len(sched.records)
        simulate(machine2, sched, js)  # reset() runs inside simulate
        assert len(sched.records) <= n1 + 5  # fresh recording, not appended


class TestServiceGaps:
    def test_no_gaps_under_light_load(self, rng):
        machine = KResourceMachine((16, 16))
        js = workloads.light_phase_jobset(rng, machine, 4)
        sched = record_run(machine, js)
        for alpha in range(2):
            gaps = service_gaps(sched.records, 16, alpha)
            assert gaps == []  # DEQ always serves every active job

    def test_heavy_load_has_bounded_gaps(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.heavy_phase_jobset(rng, machine, load_factor=6.0)
        sched = record_run(machine, js)
        report = verify_service_bound(sched.records, 2, 0)
        assert report.gaps  # the RR regime makes jobs wait...
        assert report.all_within_bound  # ...but never beyond the bound
        assert report.max_gap >= 1
        assert report.worst() is not None

    def test_fcfs_violates_rr_bound(self, rng):
        """Sanity: the bound is not vacuous — FCFS breaks it."""
        from repro.dag import builders
        from repro.jobs import JobSet

        machine = KResourceMachine((2,))
        dags = [builders.chain([0] * 40, 1) for _ in range(2)]
        dags += [builders.chain([0], 1) for _ in range(6)]
        js = JobSet.from_dags(dags)
        sched = record_run(machine, js, inner=GreedyFcfs())
        report = verify_service_bound(sched.records, 2, 0)
        assert not report.all_within_bound

    def test_capacity_validated(self):
        with pytest.raises(ReproError):
            service_gaps([], 0, 0)

    @given(st.integers(0, 2**31), st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_property_krad_gaps_always_bounded(self, seed, p):
        machine = KResourceMachine((p,))
        rng = np.random.default_rng(seed)
        js = workloads.heavy_phase_jobset(
            rng, machine, load_factor=4.0, max_work=10
        )
        sched = record_run(machine, js)
        assert verify_service_bound(sched.records, p, 0).all_within_bound


class TestJainIndex:
    def test_even_is_one(self):
        assert jain_index([3, 3, 3]) == pytest.approx(1.0)

    def test_skewed_is_one_over_n(self):
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero(self):
        assert jain_index([0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(ReproError):
            jain_index([])
        with pytest.raises(ReproError):
            jain_index([-1.0])
