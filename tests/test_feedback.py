"""Unit tests for the A-GREEDY feedback extension."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.feedback import AGreedyEstimator, FeedbackKRad
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad, check_allotments
from repro.sim import simulate, validate_schedule
from repro.theory import check_makespan_bound


class TestEstimator:
    def test_initial_estimate_is_one(self):
        est = AGreedyEstimator()
        assert est.estimate(0, 0) == 1

    def test_satisfied_efficient_doubles(self):
        est = AGreedyEstimator(quantum=2, responsiveness=2.0)
        for _ in range(2):
            est.observe(0, 0, allotted=1, used=1, deprived=False)
        assert est.estimate(0, 0) == 2
        for _ in range(2):
            est.observe(0, 0, allotted=2, used=2, deprived=False)
        assert est.estimate(0, 0) == 4

    def test_inefficient_halves(self):
        est = AGreedyEstimator(quantum=1, responsiveness=2.0)
        # grow to 4 first
        est.observe(0, 0, allotted=1, used=1, deprived=False)
        est.observe(0, 0, allotted=2, used=2, deprived=False)
        assert est.estimate(0, 0) == 4
        est.observe(0, 0, allotted=4, used=1, deprived=False)  # wasteful
        assert est.estimate(0, 0) == 2

    def test_deprived_efficient_holds(self):
        est = AGreedyEstimator(quantum=1)
        est.observe(0, 0, allotted=1, used=1, deprived=False)
        value = est.estimate(0, 0)
        est.observe(0, 0, allotted=1, used=1, deprived=True)
        assert est.estimate(0, 0) == value

    def test_estimate_never_below_one(self):
        est = AGreedyEstimator(quantum=1)
        for _ in range(5):
            est.observe(0, 0, allotted=1, used=0, deprived=False)
        assert est.estimate(0, 0) == 1

    def test_estimate_capped(self):
        est = AGreedyEstimator(quantum=1, max_estimate=4)
        for _ in range(6):
            a = est.estimate(0, 0)
            est.observe(0, 0, allotted=a, used=a, deprived=False)
        assert est.estimate(0, 0) == 4

    def test_update_only_at_quantum_boundary(self):
        est = AGreedyEstimator(quantum=3)
        est.observe(0, 0, allotted=1, used=1, deprived=False)
        est.observe(0, 0, allotted=1, used=1, deprived=False)
        assert est.estimate(0, 0) == 1  # quantum not complete
        est.observe(0, 0, allotted=1, used=1, deprived=False)
        assert est.estimate(0, 0) == 2

    def test_forget(self):
        est = AGreedyEstimator(quantum=1)
        est.observe(7, 0, allotted=1, used=1, deprived=False)
        assert est.estimate(7, 0) == 2
        est.forget(7)
        assert est.estimate(7, 0) == 1

    def test_used_above_allotted_rejected(self):
        est = AGreedyEstimator()
        with pytest.raises(ReproError):
            est.observe(0, 0, allotted=1, used=2, deprived=False)

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            AGreedyEstimator(quantum=0)
        with pytest.raises(ReproError):
            AGreedyEstimator(responsiveness=1.0)
        with pytest.raises(ReproError):
            AGreedyEstimator(utilization_threshold=0.0)
        with pytest.raises(ReproError):
            AGreedyEstimator(max_estimate=0)

    def test_reset(self):
        est = AGreedyEstimator(quantum=1)
        est.observe(0, 0, allotted=1, used=1, deprived=False)
        est.reset()
        assert est.estimate(0, 0) == 1


class TestFeedbackKRad:
    def test_completes_and_valid(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 8)
        sched = FeedbackKRad(quantum=4)
        r = simulate(machine2, sched, js, record_trace=True)
        validate_schedule(r.trace, js)
        assert set(r.completion_times) == {j.job_id for j in js}

    def test_allotments_respect_true_desires(self, machine2):
        sched = FeedbackKRad(quantum=2)
        sched.reset(machine2)
        rng = np.random.default_rng(1)
        for t in range(1, 40):
            d = {
                i: rng.integers(0, 6, size=2).astype(np.int64)
                for i in range(5)
            }
            alloc = sched.allocate(t, d)
            check_allotments(machine2, d, alloc)

    def test_waste_accounting(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=25)
        sched = FeedbackKRad(quantum=2)
        simulate(machine2, sched, js)
        assert sched.wasted >= 0

    def test_reset_clears_waste(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 4)
        sched = FeedbackKRad()
        simulate(machine2, sched, js, fresh=True)
        sched.reset(machine2)
        assert sched.wasted == 0

    def test_degradation_is_bounded(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 10, size_hint=20)
        inst = simulate(machine2, KRad(), js)
        fb = simulate(machine2, FeedbackKRad(quantum=4), js)
        assert fb.makespan <= 2 * inst.makespan

    def test_still_within_theorem3(self, machine3, rng):
        js = workloads.random_dag_jobset(rng, 3, 8)
        r = simulate(machine3, FeedbackKRad(quantum=4), js)
        assert check_makespan_bound(r, js, machine3).holds
