"""Unit tests for JSON serialization."""

import json

import numpy as np
import pytest

from repro.dag import builders, figure3_special_job
from repro.errors import ReproError
from repro.io import (
    dag_from_dict,
    dag_to_dict,
    dump_jobset,
    job_from_dict,
    job_to_dict,
    jobset_from_dict,
    jobset_to_dict,
    load_jobset,
    machine_from_dict,
    machine_to_dict,
)
from repro.jobs import DagJob, JobSet, Phase, PhaseJob, workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import simulate


class TestMachine:
    def test_round_trip(self):
        m = KResourceMachine((4, 2), names=("cpu", "io"))
        assert machine_from_dict(machine_to_dict(m)) == m

    def test_bad_format_rejected(self):
        with pytest.raises(ReproError):
            machine_from_dict({"format": "kdag", "version": 1})

    def test_bad_version_rejected(self):
        d = machine_to_dict(KResourceMachine((1,)))
        d["version"] = 99
        with pytest.raises(ReproError):
            machine_from_dict(d)

    def test_not_a_dict_rejected(self):
        with pytest.raises(ReproError):
            machine_from_dict([1, 2])


class TestDag:
    def test_round_trip_preserves_structure(self):
        dag = figure3_special_job(2, (2, 2, 4))
        clone = dag_from_dict(dag_to_dict(dag))
        assert clone.num_vertices == dag.num_vertices
        assert clone.categories().tolist() == dag.categories().tolist()
        assert sorted(clone.edges()) == sorted(dag.edges())
        assert clone.span() == dag.span()

    def test_json_serialisable(self):
        dag = builders.figure1_job()
        text = json.dumps(dag_to_dict(dag))
        clone = dag_from_dict(json.loads(text))
        assert clone.work_vector().tolist() == [3, 3, 2]


class TestJob:
    def test_dag_job_round_trip(self):
        job = DagJob(builders.chain([0, 1], 2), job_id=7, release_time=3)
        clone = job_from_dict(job_to_dict(job))
        assert isinstance(clone, DagJob)
        assert clone.job_id == 7 and clone.release_time == 3
        assert clone.work_vector().tolist() == [1, 1]

    def test_phase_job_round_trip(self):
        job = PhaseJob(
            [Phase([4, 0], [2, 1]), Phase([0, 6], [1, 3])], job_id=2
        )
        clone = job_from_dict(job_to_dict(job))
        assert isinstance(clone, PhaseJob)
        assert clone.work_vector().tolist() == [4, 6]
        assert clone.span() == job.span()

    def test_runtime_state_not_saved(self):
        job = PhaseJob([Phase([4], [2])])
        job.execute(np.asarray([2]), None)
        clone = job_from_dict(job_to_dict(job))
        assert clone.remaining_work_vector().tolist() == [4]

    def test_unknown_backend_rejected(self):
        d = job_to_dict(PhaseJob([Phase([1], [1])]))
        d["backend"] = "quantum"
        with pytest.raises(ReproError):
            job_from_dict(d)

    def test_unsupported_job_type_rejected(self):
        class Fake:
            job_id = 0
            release_time = 0

        with pytest.raises((ReproError, AttributeError)):
            job_to_dict(Fake())


class TestJobSet:
    def test_round_trip_mixed_backends(self, rng):
        js = JobSet(
            [
                DagJob(builders.fork_join(3, 0, 2), job_id=0),
                PhaseJob([Phase([3, 3], [2, 2])], job_id=1),
            ]
        )
        clone = jobset_from_dict(jobset_to_dict(js))
        assert len(clone) == 2
        assert clone.total_work_vector().tolist() == js.total_work_vector().tolist()

    def test_file_round_trip_and_replay(self, tmp_path, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 5)
        path = tmp_path / "workload.json"
        dump_jobset(js, str(path))
        loaded = load_jobset(str(path))
        a = simulate(machine2, KRad(), js)
        b = simulate(machine2, KRad(), loaded)
        assert a.makespan == b.makespan
        assert a.completion_times == b.completion_times
