"""Chaos test: SIGKILL a journaled run mid-step, recover, compare traces.

This is the acceptance test of the journaling subsystem.  A child process
runs a journaled simulation and kills itself — ``SIGKILL``, no cleanup, no
atexit, exactly like a power cut as far as user space can fake one — at a
seeded step.  The parent recovers from the journal the child left behind
and must finish with a trace bit-for-bit identical to an uninterrupted
in-process reference run.
"""

import os
import signal
import subprocess
import sys

import numpy as np

import repro
from repro.io.trace_io import trace_to_dict
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.machine.churn import ChurnEvent, ChurnSchedule
from repro.schedulers import KRad
from repro.sim import Simulator, read_journal

SEED = 20260805
KILL_AT = 9

_CHILD = """\
import os, signal, sys
sys.path.insert(0, {src!r})

import numpy as np
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.machine.churn import ChurnEvent, ChurnSchedule
from repro.schedulers import KRad
from repro.sim import Journal, Simulator

rng = np.random.default_rng({seed})
js = workloads.random_dag_jobset(rng, 2, 8, size_hint=16)
churn = ChurnSchedule(
    (4, 2), [ChurnEvent(step=3, category=0, delta=-2, duration=4)]
)

def die(t, alive):
    if t == {kill_at}:
        os.kill(os.getpid(), signal.SIGKILL)  # no cleanup of any kind

Simulator(
    KResourceMachine((4, 2)),
    KRad(),
    js,
    record_trace=True,
    churn=churn,
    on_step=die,
    journal=Journal({journal!r}, checkpoint_every=4),
).run()
print("NOT REACHED")
"""


def _reference_result():
    rng = np.random.default_rng(SEED)
    js = workloads.random_dag_jobset(rng, 2, 8, size_hint=16)
    churn = ChurnSchedule(
        (4, 2), [ChurnEvent(step=3, category=0, delta=-2, duration=4)]
    )
    return Simulator(
        KResourceMachine((4, 2)),
        KRad(),
        js,
        record_trace=True,
        churn=churn,
    ).run()


class TestKillAndRecover:
    def test_sigkilled_run_recovers_bitwise_identical(self, tmp_path):
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        journal = str(tmp_path / "chaos.journal")
        script = tmp_path / "child.py"
        script.write_text(
            _CHILD.format(
                src=src, seed=SEED, kill_at=KILL_AT, journal=journal
            )
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONHASHSEED": "0"},
            timeout=120,
        )
        # the child must actually have died by SIGKILL, mid-run
        assert proc.returncode == -signal.SIGKILL
        assert "NOT REACHED" not in proc.stdout
        assert os.path.exists(journal)

        records, _, _ = read_journal(journal)
        assert records[0].type == "meta"
        assert not any(r.type == "end" for r in records)  # it *crashed*
        steps = [r.data["t"] for r in records if r.type == "step"]
        assert steps and steps[-1] < KILL_AT + 2  # died where scripted

        ref = _reference_result()
        recovered = Simulator.recover(journal).run()
        assert recovered.makespan == ref.makespan
        assert recovered.completion_times == ref.completion_times
        assert recovered.busy.tolist() == ref.busy.tolist()
        assert recovered.stall_steps == ref.stall_steps
        # the acceptance bar: bit-for-bit identical final traces
        assert trace_to_dict(recovered.trace) == trace_to_dict(ref.trace)
        # and the stitched journal now records a completed run
        records, _, clean = read_journal(journal)
        assert clean
        assert records[-1].type == "end"
        assert records[-1].data["makespan"] == ref.makespan

    def test_double_kill_still_recovers(self, tmp_path):
        """Crash, recover in a child, crash again, recover in-process."""
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        journal = str(tmp_path / "chaos2.journal")
        script = tmp_path / "child.py"
        script.write_text(
            _CHILD.format(
                src=src, seed=SEED, kill_at=KILL_AT, journal=journal
            )
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL

        resume = tmp_path / "resume.py"
        resume.write_text(
            "import os, signal, sys\n"
            f"sys.path.insert(0, {src!r})\n"
            "from repro.sim import Simulator\n"
            "def die(t, alive):\n"
            f"    if t == {KILL_AT + 4}:\n"
            "        os.kill(os.getpid(), signal.SIGKILL)\n"
            f"sim = Simulator.recover({journal!r}, on_step=die)\n"
            "sim.run()\n"
        )
        proc = subprocess.run(
            [sys.executable, str(resume)],
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL

        ref = _reference_result()
        recovered = Simulator.recover(journal).run()
        assert recovered.makespan == ref.makespan
        assert trace_to_dict(recovered.trace) == trace_to_dict(ref.trace)
