"""Resilience primitives: retry budgets, circuit breaker, degradation
ladder, watchdog supervision, and the deterministic chaos schedule."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.errors import CircuitOpenError, DeadlineExceeded, ServiceError
from repro.service import (
    SERVICE_STATES,
    ChaosConfig,
    ChaosSchedule,
    CircuitBreaker,
    ResilienceConfig,
    RetryBudget,
    Watchdog,
    service_state_code,
)


class FakeClock:
    """Injectable monotonic clock; sleep() advances it, nothing waits."""

    def __init__(self):
        self.now = 0.0
        self.slept: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, s: float) -> None:
        self.slept.append(s)
        self.now += s

    def advance(self, s: float) -> None:
        self.now += s


# ----------------------------------------------------------------------
# retry budget
# ----------------------------------------------------------------------
class TestRetryBudget:
    def test_attempt_budget_raises_typed_deadline(self):
        clk = FakeClock()
        budget = RetryBudget(max_attempts=3, max_elapsed_s=100.0, seed=0)
        session = budget.session("op", clock=clk, sleep=clk.sleep)
        for _ in range(3):
            session.charge()
            session.backoff(last_error="boom")
        with pytest.raises(DeadlineExceeded) as exc:
            session.charge()
        err = exc.value
        assert err.op == "op"
        assert err.attempts == 3
        assert err.elapsed == pytest.approx(sum(clk.slept))
        assert err.last_error == "boom"
        assert isinstance(err, ServiceError)  # catchable as the base

    def test_wall_clock_budget_raises(self):
        clk = FakeClock()
        budget = RetryBudget(max_attempts=1000, max_elapsed_s=5.0, seed=0)
        session = budget.session("op", clock=clk, sleep=clk.sleep)
        session.charge()
        clk.advance(5.0)
        with pytest.raises(DeadlineExceeded, match="deadline"):
            session.charge()

    def test_backoff_is_exponential_and_capped(self):
        clk = FakeClock()
        budget = RetryBudget(
            max_attempts=10,
            max_elapsed_s=1e9,
            base_backoff_s=0.1,
            max_backoff_s=0.5,
            multiplier=2.0,
            jitter=0.0,
        )
        session = budget.session("op", clock=clk, sleep=clk.sleep)
        delays = []
        for _ in range(5):
            session.charge()
            delays.append(session.next_delay())
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]  # doubled then capped

    def test_retry_after_hint_scales_delay(self):
        clk = FakeClock()
        budget = RetryBudget(
            max_attempts=10,
            max_elapsed_s=1e9,
            base_backoff_s=0.01,
            max_backoff_s=10.0,
            jitter=0.0,
        )
        session = budget.session("op", clock=clk, sleep=clk.sleep)
        session.charge()
        assert session.next_delay(retry_after=8) == pytest.approx(0.08)

    def test_jitter_is_seed_deterministic_and_bounded(self):
        def delays(seed):
            clk = FakeClock()
            budget = RetryBudget(
                max_attempts=6,
                max_elapsed_s=1e9,
                base_backoff_s=0.1,
                max_backoff_s=100.0,
                jitter=0.25,
                seed=seed,
            )
            session = budget.session("op", clock=clk, sleep=clk.sleep)
            out = []
            for _ in range(6):
                session.charge()
                out.append(session.next_delay())
            return out

        assert delays(7) == delays(7)  # reproducible
        assert delays(7) != delays(8)  # actually jittered
        clean = [0.1 * 2**i for i in range(6)]
        for d, base in zip(delays(7), clean):
            assert 0.75 * base <= d <= 1.25 * base

    def test_delay_never_exceeds_remaining_budget(self):
        clk = FakeClock()
        budget = RetryBudget(
            max_attempts=100,
            max_elapsed_s=1.0,
            base_backoff_s=10.0,  # hint far past the deadline
            max_backoff_s=100.0,
            jitter=0.0,
        )
        session = budget.session("op", clock=clk, sleep=clk.sleep)
        session.charge()
        clk.advance(0.9)
        assert session.next_delay() <= 0.1 + 1e-9

    def test_validation(self):
        with pytest.raises(ServiceError):
            RetryBudget(max_attempts=0)
        with pytest.raises(ServiceError):
            RetryBudget(max_elapsed_s=0)
        with pytest.raises(ServiceError):
            RetryBudget(jitter=1.0)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clk, **kw):
        transitions = []
        br = CircuitBreaker(
            clock=clk,
            on_transition=lambda old, new: transitions.append((old, new)),
            **kw,
        )
        return br, transitions

    def test_trips_open_after_consecutive_failures(self):
        clk = FakeClock()
        br, transitions = self._breaker(clk, failure_threshold=3)
        for _ in range(2):
            br.record_failure()
        assert br.state == CircuitBreaker.CLOSED
        br.record_success()  # success resets the streak
        for _ in range(2):
            br.record_failure()
        assert br.state == CircuitBreaker.CLOSED
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert transitions == [("closed", "open")]

    def test_open_fails_fast_then_half_opens(self):
        clk = FakeClock()
        br, _ = self._breaker(
            clk, failure_threshold=1, reset_timeout_s=2.0
        )
        br.record_failure()
        assert not br.allow()
        with pytest.raises(CircuitOpenError) as exc:
            br.check("submit")
        assert exc.value.op == "submit"
        assert 0 < exc.value.retry_after <= 2.0
        clk.advance(2.0)
        assert br.state == CircuitBreaker.HALF_OPEN
        assert br.allow()  # the single probe
        assert not br.allow()  # concurrent probes refused

    def test_half_open_probe_success_closes(self):
        clk = FakeClock()
        br, transitions = self._breaker(
            clk, failure_threshold=1, reset_timeout_s=1.0
        )
        br.record_failure()
        clk.advance(1.0)
        assert br.allow()
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_half_open_probe_failure_reopens(self):
        clk = FakeClock()
        br, _ = self._breaker(
            clk, failure_threshold=1, reset_timeout_s=1.0
        )
        br.record_failure()
        clk.advance(1.0)
        assert br.allow()
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert br.retry_after() == pytest.approx(1.0)  # timer restarted

    def test_validation(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ServiceError):
            CircuitBreaker(reset_timeout_s=0)


class BreakerMachine(RuleBasedStateMachine):
    """Property: the breaker only ever makes legal transitions, and its
    behaviour (allow/refuse) always matches its advertised state."""

    LEGAL = {
        ("closed", "open"),
        ("open", "half-open"),
        ("half-open", "closed"),
        ("half-open", "open"),
    }

    @initialize(
        threshold=st.integers(min_value=1, max_value=4),
        timeout=st.floats(min_value=0.5, max_value=4.0),
    )
    def setup(self, threshold, timeout):
        self.clk = FakeClock()
        self.transitions = []
        self.br = CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout_s=timeout,
            clock=self.clk,
            on_transition=lambda old, new: self.transitions.append(
                (old, new)
            ),
        )

    @rule()
    def success(self):
        self.br.record_success()

    @rule()
    def failure(self):
        self.br.record_failure()

    @rule(s=st.floats(min_value=0.0, max_value=5.0))
    def tick(self, s):
        self.clk.advance(s)

    @rule()
    def probe_gate(self):
        state = self.br.state
        allowed = self.br.allow()
        if state == CircuitBreaker.OPEN:
            assert not allowed
        if state == CircuitBreaker.CLOSED:
            assert allowed

    @invariant()
    def only_legal_transitions(self):
        for old, new in self.transitions:
            assert (old, new) in self.LEGAL, (old, new)

    @invariant()
    def open_implies_retry_hint(self):
        if self.br._state == CircuitBreaker.OPEN:
            assert self.br.retry_after() >= 0.0
        else:
            assert self.br.retry_after() == 0.0


def test_breaker_state_machine():
    run_state_machine_as_test(
        BreakerMachine,
        settings=settings(max_examples=40, deadline=None),
    )


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
class TestResilienceConfig:
    def test_state_codes_cover_ladder(self):
        assert [service_state_code(s) for s in SERVICE_STATES] == [
            0,
            1,
            2,
            3,
            4,
        ]
        with pytest.raises(ServiceError):
            service_state_code("on-fire")

    def test_default_config_is_advisory_only(self):
        cfg = ResilienceConfig()
        base = dict(
            journal_latency_s=0.0,
            recovering=False,
            read_only=False,
            draining=False,
        )
        assert cfg.classify(depth_frac=0.0, **base) == "healthy"
        assert cfg.classify(depth_frac=0.9, **base) == "degraded"
        # never shedding/read-only without explicit thresholds
        assert cfg.classify(depth_frac=1.0, **base) == "degraded"

    def test_worst_rung_wins(self):
        cfg = ResilienceConfig(
            degraded_depth_frac=0.5,
            shed_depth_frac=0.9,
            journal_degraded_s=0.1,
            journal_read_only_s=1.0,
        )
        assert (
            cfg.classify(
                depth_frac=1.0,
                journal_latency_s=2.0,
                recovering=True,
                read_only=False,
                draining=True,
            )
            == "draining"
        )
        assert (
            cfg.classify(
                depth_frac=1.0,
                journal_latency_s=2.0,
                recovering=True,
                read_only=False,
                draining=False,
            )
            == "read-only"
        )
        assert (
            cfg.classify(
                depth_frac=0.95,
                journal_latency_s=0.0,
                recovering=True,
                read_only=False,
                draining=False,
            )
            == "shedding"
        )
        assert (
            cfg.classify(
                depth_frac=0.0,
                journal_latency_s=0.0,
                recovering=True,
                read_only=False,
                draining=False,
            )
            == "degraded"
        )

    def test_validation(self):
        with pytest.raises(ServiceError):
            ResilienceConfig(degraded_depth_frac=0.0)
        with pytest.raises(ServiceError):
            ResilienceConfig(shed_depth_frac=1.5)
        with pytest.raises(ServiceError):
            ResilienceConfig(journal_read_only_s=-1)


# ----------------------------------------------------------------------
# watchdog
# ----------------------------------------------------------------------
class FakeProc:
    def __init__(self, rc_schedule):
        """``rc_schedule``: values poll() returns in turn (None = alive);
        the last value repeats forever."""
        self.rcs = list(rc_schedule)
        self.killed = False

    def poll(self):
        if len(self.rcs) > 1:
            return self.rcs.pop(0)
        return self.rcs[0]

    def kill(self):
        self.killed = True
        self.rcs = [-9]


class TestWatchdog:
    def _dog(self, procs, probes, **kw):
        """Watchdog over scripted processes and probe answers."""
        clk = FakeClock()
        events = []
        spawned = []

        def spawn():
            spawned.append(procs.pop(0))
            return spawned[-1]

        def probe():
            return probes.pop(0) if probes else True

        kw.setdefault("probe_interval_s", 0.1)
        kw.setdefault("grace_s", 0.0)
        kw.setdefault("recovery_deadline_s", 1.0)
        dog = Watchdog(
            spawn,
            probe,
            clock=clk,
            sleep=clk.sleep,
            on_event=lambda kind, detail: events.append(kind),
            **kw,
        )
        return dog, events, spawned

    def test_clean_exit_ends_supervision(self):
        dog, events, _ = self._dog([FakeProc([None, 0])], [True])
        assert dog.run() == 0
        assert events == ["spawn", "exit"]
        assert dog.restarts == 0

    def test_drained_with_failures_exit_code_passes_through(self):
        dog, _, _ = self._dog([FakeProc([None, 1])], [True])
        assert dog.run() == 1

    def test_crash_restarts_then_clean_exit(self):
        dog, events, _ = self._dog(
            [FakeProc([None, -9]), FakeProc([None, 0])],
            [True, True],
            max_restarts=2,
        )
        assert dog.run() == 0
        assert dog.restarts == 1
        assert "restart" in events

    def test_hang_kills_and_restarts(self):
        hung = FakeProc([None])
        dog, events, spawned = self._dog(
            [hung, FakeProc([None, 0])],
            [True] + [False] * 3 + [True, True],
            hang_probes=3,
            max_restarts=2,
        )
        assert dog.run() == 0
        assert hung.killed
        assert "hang" in events
        assert dog.restarts == 1
        assert len(spawned) == 2

    def test_restart_budget_exhausted_gives_up(self):
        dog, events, _ = self._dog(
            [FakeProc([-9]), FakeProc([-9]), FakeProc([-9])],
            [True],
            max_restarts=2,
        )
        assert dog.run() == 3
        assert dog.restarts == 2
        assert events[-1] == "giveup"

    def test_recovery_deadline_bounds_restart(self):
        # The replacement never answers a probe: the deadline expires,
        # the budget drains, the watchdog gives up with rc 3.
        dog, events, spawned = self._dog(
            [FakeProc([None, -9]), FakeProc([None]), FakeProc([None])],
            [True] + [False] * 1000,
            max_restarts=2,
            recovery_deadline_s=0.5,
        )
        assert dog.run() == 3
        assert all(p.killed for p in spawned[1:])
        assert events[-1] == "giveup"

    def test_initial_start_must_answer(self):
        dog, events, _ = self._dog(
            [FakeProc([None])], [False] * 1000, recovery_deadline_s=0.3
        )
        assert dog.run() == 3
        assert events == ["spawn", "giveup"]


# ----------------------------------------------------------------------
# chaos schedule
# ----------------------------------------------------------------------
class TestChaosSchedule:
    def test_fault_plan_is_pure_function_of_seed_and_index(self):
        cfg = ChaosConfig(
            seed=42,
            drop_rate=0.2,
            delay_rate=0.2,
            corrupt_rate=0.2,
            disconnect_rate=0.2,
        )
        a = [ChaosSchedule(cfg).fault_at(i) for i in range(200)]
        b = [ChaosSchedule(cfg).fault_at(i) for i in range(200)]
        assert a == b
        other = ChaosConfig(
            seed=43,
            drop_rate=0.2,
            delay_rate=0.2,
            corrupt_rate=0.2,
            disconnect_rate=0.2,
        )
        c = [ChaosSchedule(other).fault_at(i) for i in range(200)]
        assert a != c

    def test_next_fault_matches_fault_at(self):
        cfg = ChaosConfig(seed=3, drop_rate=0.3, delay_rate=0.3)
        sched = ChaosSchedule(cfg)
        live = [sched.next_fault() for _ in range(100)]
        replay = [sched.fault_at(i) for i in range(100)]
        assert live == replay
        assert sched.messages == 100
        assert sched.injected["drop"] == sum(
            1 for f in live if f and f.kind == "drop"
        )

    def test_disarming_one_rate_keeps_other_assignments(self):
        # One draw per fault type in fixed order: turning corruption off
        # never reshuffles which messages get dropped.
        on = ChaosConfig(seed=9, drop_rate=0.3, corrupt_rate=0.3)
        off = ChaosConfig(seed=9, drop_rate=0.3, corrupt_rate=0.0)
        sched_on = ChaosSchedule(on)
        sched_off = ChaosSchedule(off)
        for i in range(300):
            f_on, f_off = sched_on.fault_at(i), sched_off.fault_at(i)
            if f_on is not None and f_on.kind == "drop":
                assert f_off is not None and f_off.kind == "drop"

    def test_partition_window_drops_everything(self):
        cfg = ChaosConfig(seed=0, partitions=((5, 10),))
        sched = ChaosSchedule(cfg)
        for i in range(5, 10):
            f = sched.fault_at(i)
            assert f is not None and f.kind == "drop"
        assert sched.fault_at(4) is None
        assert sched.fault_at(10) is None

    def test_corrupt_preserves_framing(self):
        cfg = ChaosConfig(seed=1, corrupt_rate=0.99)
        sched = ChaosSchedule(cfg)
        fault = next(
            f
            for f in (sched.fault_at(i) for i in range(100))
            if f is not None and f.kind == "corrupt"
        )
        line = b'{"ok":true,"job_id":7}\n'
        mangled = ChaosSchedule.corrupt(line, fault)
        assert mangled != line
        assert mangled.endswith(b"\n")  # framing survives
        assert len(mangled) == len(line)

    def test_describe_names_every_fault(self):
        cfg = ChaosConfig(seed=5, drop_rate=0.4, delay_rate=0.4)
        sched = ChaosSchedule(cfg)
        for _ in range(30):
            sched.next_fault()
        text = sched.describe()
        assert "seed=5" in text
        faulted = [
            i for i in range(30) if sched.fault_at(i) is not None
        ]
        for i in faulted:
            assert f"#{i}:" in text

    def test_validation(self):
        with pytest.raises(ServiceError):
            ChaosConfig(drop_rate=1.0)
        with pytest.raises(ServiceError):
            ChaosConfig(max_delay_s=-1)
        with pytest.raises(ServiceError):
            ChaosConfig(partitions=((3, 3),))
        assert not ChaosConfig().active
        assert ChaosConfig(drop_rate=0.1).active
