"""Tests for the speed-aware clairvoyant baseline and the hunt module."""

import numpy as np
import pytest

from repro.dag import KDag, builders
from repro.errors import ReproError, ScheduleError
from repro.jobs import CP_FIRST, DagJob, JobSet, workloads
from repro.machine import KResourceMachine
from repro.perf import SpeedAwareClairvoyant, SpeedMachine, simulate_speeds
from repro.sim import simulate


class TestSpeedAwareClairvoyant:
    def test_prioritises_slow_category_chain(self):
        # category 1 is 4x faster; the cat-0 chain carries more weighted
        # span than the (longer) cat-1 chain
        slow = DagJob(builders.chain([0] * 6, 2), job_id=0)
        fast = DagJob(builders.chain([1] * 8, 2), job_id=1)
        machine = KResourceMachine((1, 1))
        sched = SpeedAwareClairvoyant((1, 4))
        sched.reset(machine)
        d = {0: np.asarray([1, 0]), 1: np.asarray([0, 1])}
        alloc = sched.allocate(1, d, jobs={0: slow, 1: fast})
        # weighted spans: slow 6, fast 2 -> slow first (no contention here,
        # both get their category anyway)
        assert alloc[0].tolist() == [1, 0]
        assert alloc[1].tolist() == [0, 1]

    def test_contended_category_goes_to_heavier_weighted_job(self):
        a = DagJob(builders.chain([0] * 5, 2), job_id=0)  # weighted 5
        b = DagJob(builders.chain([0, 1, 1], 2), job_id=1)  # 1 + 2/4 = 1.5
        machine = KResourceMachine((1, 2))
        sched = SpeedAwareClairvoyant((1, 4))
        sched.reset(machine)
        d = {0: np.asarray([1, 0]), 1: np.asarray([1, 0])}
        alloc = sched.allocate(1, d, jobs={0: a, 1: b})
        assert alloc[0].tolist() == [1, 0]
        assert 1 not in alloc or alloc[1].sum() == 0

    def test_requires_jobs(self):
        machine = KResourceMachine((1,))
        sched = SpeedAwareClairvoyant((1,))
        sched.reset(machine)
        with pytest.raises(ScheduleError):
            sched.allocate(1, {0: np.asarray([1])}, jobs=None)

    def test_speed_count_checked(self):
        machine = KResourceMachine((1, 1))
        sched = SpeedAwareClairvoyant((1,))
        sched.reset(machine)
        with pytest.raises(ScheduleError):
            sched.allocate(
                1, {0: np.asarray([1, 0])},
                jobs={0: DagJob(builders.chain([0], 2))},
            )

    def test_invalid_speeds(self):
        with pytest.raises(ScheduleError):
            SpeedAwareClairvoyant((0,))

    def test_end_to_end_on_speed_machine(self, rng):
        machine = SpeedMachine((4, 2), (1, 4))
        js = workloads.random_dag_jobset(rng, 2, 5, size_hint=10)
        r = simulate_speeds(
            machine, SpeedAwareClairvoyant((1, 4)), js, policy=CP_FIRST
        )
        assert len(r.completion_times) == 5

    def test_phase_jobs_use_conservative_weighting(self, rng):
        js = workloads.random_phase_jobset(rng, 2, 4, max_work=10)
        machine = KResourceMachine((4, 4))
        sched = SpeedAwareClairvoyant((2, 2))
        r = simulate(machine, sched, js)
        assert len(r.completion_times) == 4


class TestHuntUnit:
    def test_deterministic_given_seed(self):
        from repro.analysis.hunt import hunt_adversarial_instances

        machine = KResourceMachine((2, 1))
        a = hunt_adversarial_instances(machine, seed=3, iterations=60)
        b = hunt_adversarial_instances(machine, seed=3, iterations=60)
        assert a.best_ratio == b.best_ratio
        assert a.evaluations == b.evaluations

    def test_best_instance_is_replayable(self):
        from repro.analysis.hunt import hunt_adversarial_instances
        from repro.jobs.policies import CP_LAST
        from repro.schedulers import KRad
        from repro.theory.optimal import optimal_makespan_exact

        machine = KResourceMachine((2, 1))
        res = hunt_adversarial_instances(machine, seed=0, iterations=120)
        js = res.best_jobset
        opt = optimal_makespan_exact(machine, js)
        r = simulate(machine, KRad(), js, policy=CP_LAST)
        assert r.makespan / opt == pytest.approx(res.best_ratio)

    def test_mutations_preserve_validity(self):
        from repro.analysis.hunt import _mutate

        rng = np.random.default_rng(0)
        dags = [builders.chain([0, 1], 2)]
        for _ in range(200):
            dags = _mutate(dags, 2, rng, max_tasks=10)
            for d in dags:
                d.validate()
            assert sum(d.num_vertices for d in dags) <= 10 + 1

    def test_iterations_validated(self):
        from repro.analysis.hunt import hunt_adversarial_instances

        with pytest.raises(ReproError):
            hunt_adversarial_instances(
                KResourceMachine((2,)), iterations=0
            )
