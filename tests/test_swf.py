"""Tests for the SWF (Standard Workload Format) bridge."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.io import jobset_from_swf, jobset_to_swf, parse_swf
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import simulate

SAMPLE = """\
; Synthetic mini-trace in SWF
; UnixStartTime: 0
1 0 5 100 4 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
2 10 0 50 2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
3 20 0 -1 8 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
4 30 0 200 0 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
5 40 0 10 1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
"""


class TestParse:
    def test_parses_valid_jobs_skips_failed(self):
        jobs = parse_swf(SAMPLE)
        # jobs 3 (run -1) and 4 (procs 0) dropped
        assert [j.job_id for j in jobs] == [1, 2, 5]
        assert jobs[0].run_time == 100
        assert jobs[0].processors == 4
        assert jobs[1].submit_time == 10

    def test_comments_and_blanks_ignored(self):
        assert parse_swf ("; only comments\n\n;x\n") == []

    def test_malformed_line_rejected(self):
        with pytest.raises(WorkloadError, match="fields"):
            parse_swf("1 2 3\n")
        with pytest.raises(WorkloadError):
            parse_swf("a b c d e\n")


class TestJobsetFromSwf:
    def test_lifts_to_phase_jobs(self):
        js = jobset_from_swf(
            SAMPLE, category_mix=(0.5, 0.5), time_scale=0.1
        )
        assert len(js) == 3
        assert js.num_categories == 2
        # submit times scaled
        assert js.release_times().tolist() == [0, 1, 4]
        # each job: one phase per category with positive share
        assert js[0].phases[0].work[0] > 0
        assert js[0].phases[1].work[1] > 0

    def test_zero_share_category_skipped(self):
        js = jobset_from_swf(SAMPLE, category_mix=(1.0, 0.0))
        for job in js:
            assert all(ph.work[1] == 0 for ph in job.phases)

    def test_mix_validated(self):
        with pytest.raises(WorkloadError):
            jobset_from_swf(SAMPLE, category_mix=(0.5, 0.4))
        with pytest.raises(WorkloadError):
            jobset_from_swf(SAMPLE, category_mix=(-0.5, 1.5))
        with pytest.raises(WorkloadError):
            jobset_from_swf(SAMPLE, category_mix=(1.0,), time_scale=0)

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError, match="no valid jobs"):
            jobset_from_swf("; nothing\n", category_mix=(1.0,))

    def test_max_jobs(self):
        js = jobset_from_swf(SAMPLE, category_mix=(1.0,), max_jobs=2)
        assert len(js) == 2

    def test_simulates_end_to_end(self):
        js = jobset_from_swf(
            SAMPLE, category_mix=(0.7, 0.3), time_scale=0.05
        )
        machine = KResourceMachine((8, 4))
        r = simulate(machine, KRad(), js)
        assert len(r.completion_times) == len(js)


class TestRoundTrip:
    def test_emit_and_reparse(self, rng):
        js = workloads.random_phase_jobset(rng, 1, 5, max_parallelism=4)
        text = jobset_to_swf(js, comment="round trip")
        jobs = parse_swf(text)
        assert len(jobs) == 5
        assert jobs[0].processors >= 1
        assert text.startswith("; round trip")

    def test_emitted_trace_lifts_back(self, rng):
        js = workloads.random_phase_jobset(rng, 1, 4, max_parallelism=4)
        text = jobset_to_swf(js)
        back = jobset_from_swf(text, category_mix=(1.0,))
        assert len(back) == 4
