"""Unit and property tests for squashed sums and Lemma 4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.theory.squashed import (
    aggregate_span,
    check_lemma4,
    lemma4_rhs,
    squashed_sum,
    squashed_work_area,
    squashed_work_areas,
)


class TestSquashedSum:
    def test_definition_by_hand(self):
        # <2, 1, 3> sorted = 1,2,3; weights 3,2,1 -> 3+4+3 = 10
        assert squashed_sum([2, 1, 3]) == 10

    def test_empty(self):
        assert squashed_sum([]) == 0.0

    def test_single(self):
        assert squashed_sum([7]) == 7

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            squashed_sum([-1])

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_equation4_minimum_over_permutations(self, values):
        """Definition 4's sort is the argmin of Equation 4's formulation."""
        rng = np.random.default_rng(0)
        m = len(values)
        target = squashed_sum(values)
        weights = np.arange(m, 0, -1)
        for _ in range(20):
            perm = rng.permutation(m)
            permuted = float(np.dot(weights, np.asarray(values)[perm]))
            assert permuted >= target - 1e-6 * max(1.0, target)

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=20),
        st.lists(st.integers(0, 100), min_size=1, max_size=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_superadditive_in_elements(self, a, b):
        """Adding elements never decreases the squashed sum."""
        assert squashed_sum(a + b) >= squashed_sum(a) - 1e-9


class TestSquashedWorkArea:
    def test_divides_by_capacity(self):
        assert squashed_work_area([2, 1, 3], 2) == 5.0

    def test_capacity_validated(self):
        with pytest.raises(ReproError):
            squashed_work_area([1], 0)

    def test_matrix_version(self):
        wm = np.asarray([[2, 4], [1, 0], [3, 4]])
        out = squashed_work_areas(wm, (2, 4))
        assert out[0] == squashed_sum([2, 1, 3]) / 2
        assert out[1] == squashed_sum([4, 0, 4]) / 4

    def test_matrix_shape_validated(self):
        with pytest.raises(ReproError):
            squashed_work_areas(np.ones((3, 2)), (2,))

    def test_aggregate_span(self):
        assert aggregate_span([3, 4, 5]) == 12


@st.composite
def lemma4_case(draw):
    m = draw(st.integers(1, 25))
    a = draw(
        st.lists(st.integers(0, 50), min_size=m, max_size=m)
    )
    h = draw(st.integers(1, 12))
    s = draw(st.lists(st.integers(0, h), min_size=m, max_size=m))
    idx = draw(st.integers(0, m - 1))
    s = list(s)
    s[idx] = h  # guarantee l > 0
    return np.asarray(a, float), np.asarray(s, float), float(h)


class TestLemma4:
    @given(lemma4_case())
    @settings(max_examples=500, deadline=None)
    def test_lemma_holds(self, case):
        a, s, h = case
        assert check_lemma4(a, s, h)

    def test_tight_example(self):
        # all s_i = h: l = m, P = m*h; sq-sum grows by h * m(m+1)/2 exactly
        m, h = 5, 3.0
        a = np.zeros(m)
        s = np.full(m, h)
        lhs = squashed_sum(a + s)
        rhs = lemma4_rhs(a, s, h)
        assert lhs == pytest.approx(rhs)

    def test_precondition_s_range(self):
        with pytest.raises(ReproError):
            check_lemma4([0.0], [2.0], 1.0)

    def test_precondition_l_positive(self):
        with pytest.raises(ReproError):
            check_lemma4([0.0, 0.0], [0.5, 0.5], 1.0)

    def test_precondition_h_positive(self):
        with pytest.raises(ReproError):
            check_lemma4([0.0], [0.0], 0.0)

    def test_precondition_shapes(self):
        with pytest.raises(ReproError):
            check_lemma4([0.0, 1.0], [1.0], 1.0)
