"""Tests for the non-adaptive baselines (static partitioning, gang)."""

import numpy as np
import pytest

from repro.dag import builders
from repro.jobs import JobSet, Phase, PhaseJob, workloads
from repro.machine import KResourceMachine
from repro.schedulers import (
    GangScheduler,
    KRad,
    StaticPartition,
    check_allotments,
)
from repro.sim import simulate, validate_schedule


def desires(d):
    return {jid: np.asarray(v, dtype=np.int64) for jid, v in d.items()}


class TestStaticPartition:
    def test_quota_assigned_at_arrival(self):
        machine = KResourceMachine((8, 4))
        s = StaticPartition(target_jobs=4)
        s.reset(machine)
        alloc = s.allocate(1, desires({0: [8, 4]}))
        # quota = caps // 4 = (2, 1), capped by desire
        assert alloc[0].tolist() == [2, 1]

    def test_quota_is_sticky(self):
        machine = KResourceMachine((8, 8))
        s = StaticPartition(target_jobs=2)
        s.reset(machine)
        s.allocate(1, desires({0: [8, 8]}))
        # a huge later desire still only gets the original quota
        alloc = s.allocate(2, desires({0: [100, 100]}))
        assert alloc[0].tolist() == [4, 4]

    def test_quota_released_on_completion(self):
        machine = KResourceMachine((4,))
        s = StaticPartition(target_jobs=1)
        s.reset(machine)
        s.allocate(1, desires({0: [4], 1: [4]}))
        # job 0 holds everything; job 1 waits
        alloc = s.allocate(2, desires({1: [4]}))  # job 0 completed
        assert alloc[1].tolist() == [4]

    def test_waiting_jobs_fifo(self):
        machine = KResourceMachine((2,))
        s = StaticPartition(target_jobs=1)
        s.reset(machine)
        a1 = s.allocate(1, desires({0: [2], 1: [2], 2: [2]}))
        assert set(a1) == {0}
        a2 = s.allocate(2, desires({1: [2], 2: [2]}))  # 0 done
        assert set(a2) == {1}

    def test_backfill_prevents_deadlock(self):
        machine = KResourceMachine((2, 2))
        s = StaticPartition(target_jobs=2)
        s.reset(machine)
        # job arrives desiring only category 1 but category-1 capacity is
        # exhausted by earlier quotas whose holders want only category 0...
        s.allocate(1, desires({0: [2, 2], 1: [2, 2]}))
        # both quotas assigned; now both jobs desire ONLY categories their
        # quota lacks -> backfill must grant something
        alloc = s.allocate(2, desires({0: [0, 0], 1: [0, 0]}))
        assert alloc == {} or all(a.sum() <= 1 for a in alloc.values())

    def test_capacity_respected_over_time(self, rng):
        machine = KResourceMachine((4, 2))
        s = StaticPartition(target_jobs=3)
        s.reset(machine)
        for t in range(1, 40):
            d = desires(
                {i: rng.integers(0, 5, size=2) for i in range(6)}
            )
            check_allotments(machine, d, s.allocate(t, d))

    def test_target_jobs_validated(self):
        with pytest.raises(ValueError):
            StaticPartition(target_jobs=0)

    def test_end_to_end_valid_schedule(self, rng):
        machine = KResourceMachine((4, 4))
        js = workloads.random_dag_jobset(rng, 2, 5, size_hint=10)
        r = simulate(machine, StaticPartition(), js, record_trace=True)
        validate_schedule(r.trace, js)


class TestGangScheduler:
    def test_one_job_gets_the_machine(self):
        machine = KResourceMachine((4, 4))
        s = GangScheduler()
        s.reset(machine)
        alloc = s.allocate(1, desires({0: [9, 2], 1: [3, 3]}))
        assert set(alloc) == {0}
        assert alloc[0].tolist() == [4, 2]

    def test_rotation(self):
        machine = KResourceMachine((2,))
        s = GangScheduler()
        s.reset(machine)
        d = desires({0: [2], 1: [2], 2: [2]})
        served = [list(s.allocate(t, d))[0] for t in range(1, 7)]
        assert served == [0, 1, 2, 0, 1, 2]

    def test_end_to_end(self, rng):
        machine = KResourceMachine((4, 2))
        js = workloads.random_phase_jobset(rng, 2, 5, max_work=15)
        r = simulate(machine, GangScheduler(), js, record_trace=True)
        validate_schedule(r.trace, js)
        assert len(r.completion_times) == 5

    def test_adaptive_beats_gang_on_narrow_mix(self):
        # many narrow jobs: gang wastes almost the whole machine per slice
        machine = KResourceMachine((8,))
        jobs = [
            PhaseJob([Phase([6], [1])], job_id=i) for i in range(8)
        ]
        js = JobSet(jobs)
        gang = simulate(machine, GangScheduler(), js)
        krad = simulate(machine, KRad(), js)
        assert krad.makespan < gang.makespan


class TestAdaptExperiment:
    def test_adapt_driver(self):
        from repro.experiments import exp_adaptivity

        report = exp_adaptivity.run(seed=1, repeats=1, n_jobs=6)
        assert report.passed, report.failing_checks()
