"""Unit tests for lower bounds and competitive-ratio closed forms."""

import numpy as np
import pytest

from repro.dag import builders
from repro.errors import ReproError
from repro.jobs import JobSet
from repro.machine import KResourceMachine
from repro.theory import bounds


def simple_jobset():
    # job 0: chain of 3 cat-0 tasks (span 3); job 1: 6 independent cat-1
    return JobSet.from_dags(
        [builders.chain([0, 0, 0], 2), builders.independent_tasks([0, 6])]
    )


class TestMakespanLowerBound:
    def test_work_bound_dominates(self):
        machine = KResourceMachine((4, 1))
        js = simple_jobset()
        # work bounds: 3/4 and 6/1; span bound max(3, 1) = 3
        assert bounds.makespan_lower_bound(js, machine) == 6.0

    def test_span_bound_dominates(self):
        machine = KResourceMachine((4, 8))
        js = simple_jobset()
        assert bounds.makespan_lower_bound(js, machine) == 3.0

    def test_release_times_counted(self):
        machine = KResourceMachine((4, 8))
        js = JobSet.from_dags(
            [builders.chain([0, 0, 0], 2), builders.independent_tasks([0, 6])],
            release_times=[10, 0],
        )
        assert bounds.makespan_lower_bound(js, machine) == 13.0

    def test_k_mismatch_rejected(self):
        machine = KResourceMachine((4,))
        with pytest.raises(ReproError):
            bounds.makespan_lower_bound(simple_jobset(), machine)


class TestLemma2Bound:
    def test_formula(self):
        machine = KResourceMachine((4, 2))
        js = simple_jobset()
        expected = 3 / 4 + 6 / 2 + (1 - 1 / 4) * 3
        assert bounds.lemma2_bound(js, machine) == pytest.approx(expected)


class TestClosedForms:
    def test_theorem1_and_3_agree(self):
        assert bounds.theorem1_ratio(3, 8) == bounds.theorem3_ratio(3, 8)
        assert bounds.theorem1_ratio(3, 8) == pytest.approx(4 - 1 / 8)

    def test_theorem1_k1_matches_classic(self):
        assert bounds.theorem1_ratio(1, 16) == pytest.approx(2 - 1 / 16)

    def test_theorem5_ratio(self):
        assert bounds.theorem5_ratio(2, 9) == pytest.approx(5 - 4 / 10)

    def test_theorem6_ratio(self):
        assert bounds.theorem6_ratio(2, 9) == pytest.approx(9 - 8 / 10)

    def test_k1_mean_response_under_3(self):
        for n in (1, 2, 10, 1000):
            assert bounds.k1_mean_response_ratio(n) < 3.0
        assert bounds.k1_mean_response_ratio(10**9) == pytest.approx(3.0, abs=1e-6)

    def test_k1_beats_edmonds(self):
        assert bounds.k1_mean_response_ratio(10**9) < bounds.EDMONDS_EQUI_RATIO

    def test_validation(self):
        with pytest.raises(ReproError):
            bounds.theorem1_ratio(0, 4)
        with pytest.raises(ReproError):
            bounds.theorem5_ratio(1, 0)
        with pytest.raises(ReproError):
            bounds.theorem6_ratio(0, 1)


class TestResponseLowerBounds:
    def test_batched_required(self):
        machine = KResourceMachine((4, 2))
        js = JobSet.from_dags(
            [builders.chain([0], 2), builders.chain([1], 2)],
            release_times=[0, 5],
        )
        with pytest.raises(ReproError):
            bounds.total_response_lower_bound(js, machine)

    def test_span_term(self):
        machine = KResourceMachine((100, 100))
        js = simple_jobset()
        # swa tiny with huge machines; aggregate span = 3 + 1
        assert bounds.total_response_lower_bound(js, machine) == 4.0

    def test_swa_term(self):
        machine = KResourceMachine((1, 1))
        js = simple_jobset()
        from repro.theory.squashed import squashed_sum

        expected = max(squashed_sum([3, 0]), squashed_sum([0, 6]), 4.0)
        assert bounds.total_response_lower_bound(js, machine) == expected

    def test_mean_divides_by_n(self):
        machine = KResourceMachine((1, 1))
        js = simple_jobset()
        assert bounds.mean_response_lower_bound(
            js, machine
        ) == bounds.total_response_lower_bound(js, machine) / 2

    def test_theorem5_total_rt_bound_formula(self):
        machine = KResourceMachine((2, 2))
        js = simple_jobset()
        from repro.theory.squashed import squashed_work_areas

        swa = squashed_work_areas(js.work_matrix(), machine.capacities)
        expected = (2 - 2 / 3) * swa.sum() + 4
        assert bounds.theorem5_total_rt_bound(js, machine) == pytest.approx(
            expected
        )
