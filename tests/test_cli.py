"""Unit tests for the CLI entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FIG3" in out and "THM6" in out

    def test_run_fig1(self, capsys):
        assert main(["FIG1"]) == 0
        out = capsys.readouterr().out
        assert "experiment PASSED" in out

    def test_run_lowercase(self, capsys):
        assert main(["fig1"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["BOGUS"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_lem4_accepts_seed(self, capsys):
        assert main(["LEM4", "--seed", "3"]) == 0

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_out_file(self, capsys, tmp_path):
        out = tmp_path / "report.txt"
        assert main(["FIG1", "--out", str(out)]) == 0
        text = out.read_text()
        assert "FIG1" in text and "experiment PASSED" in text

    def test_extension_experiment_runs(self, capsys):
        assert main(["ABLATE"]) == 0
        assert "ablation" in capsys.readouterr().out


class TestCliOutputFormats:
    def test_markdown_out(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        assert main(["FIG1", "--out", str(out), "--markdown"]) == 0
        text = out.read_text()
        assert "## FIG1" in text and "| quantity |" in text

    def test_json_out(self, capsys, tmp_path):
        import json

        out = tmp_path / "r.jsonl"
        assert main(["FIG1", "--out", str(out), "--json"]) == 0
        doc = json.loads(out.read_text().strip())
        assert doc["experiment_id"] == "FIG1"
        assert doc["passed"] is True
        assert isinstance(doc["checks"], dict)

    def test_report_to_dict_round_trips_json(self):
        import json

        from repro.experiments import run_experiment

        doc = run_experiment("FIG1").to_dict()
        json.dumps(doc)  # must not raise on numpy leftovers


class TestCliFlagConflicts:
    """Flag combinations that would silently ignore half the invocation
    must be rejected loudly with a one-line error."""

    def test_markdown_and_json_conflict(self, capsys):
        assert main(["FIG1", "--out", "x", "--markdown", "--json"]) == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("flag", ["--markdown", "--json"])
    def test_format_without_out_rejected(self, capsys, flag):
        assert main(["FIG1", flag]) == 2
        err = capsys.readouterr().err
        assert f"{flag} formats the --out file" in err

    @pytest.mark.parametrize(
        "extra",
        [
            ["--repeats", "2"],
            ["--out", "x"],
            ["--engine", "fast"],
            ["--obs-out", "m.prom"],
            ["--events-out", "e.jsonl"],
        ],
    )
    def test_list_with_run_flags_rejected(self, capsys, extra):
        assert main(["list", *extra]) == 2
        err = capsys.readouterr().err
        assert "'list' runs nothing" in err
        assert extra[0] in err

    def test_faults_max_attempts_without_kill_rate(self, capsys):
        assert main(["faults", "--jobs", "3", "--max-attempts", "4"]) == 2
        err = capsys.readouterr().err
        assert "--max-attempts only governs killed-job retries" in err
        assert "Traceback" not in err

    def test_supervise_checkpoint_every_without_journal(self, capsys):
        assert main(["supervise", "--checkpoint-every", "5"]) == 2
        err = capsys.readouterr().err
        assert "--checkpoint-every sets the journal's checkpoint" in err
        assert "Traceback" not in err


class TestCliObservability:
    def test_experiment_exports_metrics_and_events(self, capsys, tmp_path):
        import json

        from repro.obs import get_default_obs, parse_prometheus_text

        prom = tmp_path / "metrics.prom"
        events = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "FIG1",
                    "--obs-out",
                    str(prom),
                    "--events-out",
                    str(events),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"metrics: {prom}" in out
        assert f"events: {events}" in out
        samples = parse_prometheus_text(prom.read_text())
        assert samples["krad_runs_total"] > 0
        assert samples["krad_completions_total"] > 0
        kinds = {
            json.loads(line)["kind"]
            for line in events.read_text().splitlines()
        }
        assert {"run_start", "step", "run_end"} <= kinds
        assert get_default_obs() is None  # torn down after the run

    def test_fault_probe_exports_retry_counters(self, capsys, tmp_path):
        from repro.obs import parse_prometheus_text

        prom = tmp_path / "faults.prom"
        assert (
            main(
                [
                    "faults",
                    "--jobs",
                    "8",
                    "--seed",
                    "3",
                    "--kill-rate",
                    "0.05",
                    "--max-attempts",
                    "4",
                    "--obs-out",
                    str(prom),
                ]
            )
            == 0
        )
        samples = parse_prometheus_text(prom.read_text())
        assert samples["krad_job_kills_total"] > 0
        assert samples["krad_retries_total"] > 0

    def test_obs_out_into_missing_dir_rejected(self, capsys, tmp_path):
        from repro.obs import get_default_obs

        target = str(tmp_path / "no" / "dir" / "m.prom")
        assert main(["FIG1", "--obs-out", target]) == 2
        err = capsys.readouterr().err
        assert "cannot write" in err
        assert "Traceback" not in err
        assert get_default_obs() is None

    def test_failing_run_still_clears_default_obs(self, capsys, tmp_path):
        from repro.obs import get_default_obs

        assert (
            main(["faults", "--outage", "nope", "--obs-out", "m.prom"]) == 2
        )
        assert get_default_obs() is None


class TestCliAll:
    def test_all_aggregates_and_reports(self, capsys, monkeypatch):
        """Run `krad all` against a stubbed registry (fast, deterministic)."""
        from repro import cli
        from repro.experiments.common import ExperimentReport

        def make(passed):
            def run(**kwargs):
                return ExperimentReport(
                    experiment_id="STUB",
                    title="stub",
                    headers=["x"],
                    rows=[[1]],
                    checks={"c": passed},
                )

            return run

        monkeypatch.setattr(
            cli, "REGISTRY", {"A1": make(True), "A2": make(True)}
        )
        monkeypatch.setattr(
            "repro.experiments.REGISTRY",
            {"A1": make(True), "A2": make(True)},
        )
        assert cli.main(["all"]) == 0
        out = capsys.readouterr().out
        assert "ALL EXPERIMENTS PASSED" in out

    def test_all_fails_when_one_fails(self, capsys, monkeypatch):
        from repro import cli
        from repro.experiments.common import ExperimentReport

        def run_bad(**kwargs):
            return ExperimentReport(
                experiment_id="BAD",
                title="bad",
                headers=["x"],
                rows=[],
                checks={"c": False},
            )

        monkeypatch.setattr(cli, "REGISTRY", {"B1": run_bad})
        monkeypatch.setattr(
            "repro.experiments.REGISTRY", {"B1": run_bad}
        )
        assert cli.main(["all"]) == 1
        assert "SOME EXPERIMENTS FAILED" in capsys.readouterr().out


class TestFaultsSubcommand:
    def test_healthy_probe(self, capsys):
        assert main(["faults", "--jobs", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fault probe" in out
        assert "completed 4/4 jobs" in out
        assert "goodput per category" in out

    def test_task_failures_probe(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "--jobs",
                    "4",
                    "--task-fail-rate",
                    "0.2",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wasted" in out

    def test_full_outage_probe(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "--jobs",
                    "3",
                    "--capacities",
                    "4",
                    "--outage",
                    "6:2:0",
                    "--seed",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stall" in out

    def test_bad_outage_spec(self, capsys):
        assert main(["faults", "--outage", "nope"]) == 2
        assert "krad faults" in capsys.readouterr().err

    def test_bad_rate_rejected(self, capsys):
        assert main(["faults", "--task-fail-rate", "1.5"]) == 2
        assert "task failure rate" in capsys.readouterr().err

    def test_conflicting_fault_modes_rejected(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "--outage",
                    "10:4",
                    "--availability",
                    "0.8",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "mutually exclusive" in err
        assert err.count("\n") == 1  # one-line message, no traceback
        assert "Traceback" not in err

    def test_out_into_missing_dir_rejected(self, capsys, tmp_path):
        target = str(tmp_path / "no" / "such" / "dir" / "metrics.txt")
        assert (
            main(["faults", "--jobs", "3", "--seed", "1", "--out", target])
            == 2
        )
        err = capsys.readouterr().err
        assert "cannot write" in err
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_out_appends_table(self, capsys, tmp_path):
        target = str(tmp_path / "metrics.txt")
        assert (
            main(["faults", "--jobs", "3", "--seed", "1", "--out", target])
            == 0
        )
        assert "fault probe" in open(target).read()


class TestSuperviseSubcommand:
    def test_clean_supervised_run(self, capsys):
        assert main(["supervise", "--jobs", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "incident" not in out

    def test_churned_run_prints_migrations(self, capsys):
        assert (
            main(
                [
                    "supervise",
                    "--jobs",
                    "8",
                    "--seed",
                    "1",
                    "--churn",
                    "3:0:-3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "category 0 migrations" in out

    def test_injected_violation_resilient_quarantines(self, capsys):
        rc = main(
            [
                "supervise",
                "--jobs",
                "8",
                "--seed",
                "1",
                "--inject-violation",
                "2:3",
            ]
        )
        assert rc == 1  # quarantined jobs => non-zero
        out = capsys.readouterr().out
        assert "quarantined=1" in out
        assert "incident: step 2 [scripted-violation] quarantined" in out

    def test_injected_violation_strict_fails_fast(self, capsys):
        rc = main(
            [
                "supervise",
                "--jobs",
                "8",
                "--seed",
                "1",
                "--mode",
                "strict",
                "--inject-violation",
                "2:3",
            ]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "scripted-violation" in err
        assert "step 2" in err
        assert "Traceback" not in err

    def test_journal_written(self, capsys, tmp_path):
        journal = str(tmp_path / "run.journal")
        assert (
            main(
                [
                    "supervise",
                    "--jobs",
                    "5",
                    "--seed",
                    "1",
                    "--journal",
                    journal,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"journal: {journal}" in out
        from repro.sim import read_journal

        records, _, clean = read_journal(journal)
        assert clean
        assert records[-1].type == "end"

    def test_bad_churn_spec_rejected(self, capsys):
        assert main(["supervise", "--churn", "nope"]) == 2
        err = capsys.readouterr().err
        assert "STEP:CAT:DELTA" in err
        assert "Traceback" not in err

    def test_bad_injection_spec_rejected(self, capsys):
        assert main(["supervise", "--inject-violation", "7"]) == 2
        assert "STEP:JOB" in capsys.readouterr().err


class TestRecoverSubcommand:
    def test_missing_journal_rejected(self, capsys, tmp_path):
        assert main(["recover", str(tmp_path / "nope.journal")]) == 2
        err = capsys.readouterr().err
        assert "krad recover" in err
        assert "Traceback" not in err

    def test_completed_journal_rejected(self, capsys, tmp_path):
        journal = str(tmp_path / "done.journal")
        assert (
            main(
                [
                    "supervise",
                    "--jobs",
                    "4",
                    "--seed",
                    "1",
                    "--journal",
                    journal,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["recover", journal]) == 2
        assert "nothing to recover" in capsys.readouterr().err

    def test_recovers_crashed_journal(self, capsys, tmp_path):
        """Truncate a completed journal back to mid-run (drop the end
        record and the tail of the steps) and recover it."""
        import json

        journal = str(tmp_path / "crashed.journal")
        assert (
            main(
                [
                    "supervise",
                    "--jobs",
                    "6",
                    "--seed",
                    "1",
                    "--journal",
                    journal,
                    "--checkpoint-every",
                    "4",
                ]
            )
            == 0
        )
        capsys.readouterr()
        lines = open(journal, "rb").read().splitlines(keepends=True)
        kept = [
            ln
            for ln in lines
            if json.loads(ln)["type"] != "end"
        ][:-3]
        open(journal, "wb").write(b"".join(kept))
        assert main(["recover", journal]) == 0
        out = capsys.readouterr().out
        assert f"recovered from {journal}" in out
        assert "makespan" in out


class TestServeCli:
    """Flag-conflict guards of the service subcommands: every bad
    combination fails fast with exit 2 and a one-line stderr, never a
    traceback."""

    @pytest.mark.parametrize(
        "argv,fragment",
        [
            (
                ["serve", "--socket", "/tmp/x.sock", "--port", "7000"],
                "--socket and --port",
            ),
            (["serve", "--checkpoint-every", "5"], "--checkpoint-every"),
            (
                ["serve", "--churn", "5:0:-1", "--availability", "0.5"],
                "mutually exclusive",
            ),
            (
                ["serve", "--churn", "5:0:-1", "--outage", "10:2"],
                "mutually exclusive",
            ),
            (
                ["serve", "--outage", "10:2", "--availability", "0.5"],
                "--outage and --availability",
            ),
            (["serve", "--max-attempts", "3"], "--max-attempts"),
            (["serve", "--step-slice", "0"], "step_slice"),
            (["serve", "--tenant-quota", "0"], "tenant_quota"),
            (["serve", "--shed-horizon", "0"], "shed_horizon"),
            (["serve", "--shards", "0"], "--shards"),
            (
                [
                    "serve", "--shards", "2", "--supervised",
                    "--port", "7000", "--journal", "x.journal",
                ],
                "recovery story",
            ),
            (
                ["serve", "--shards", "2", "--availability", "0.5"],
                "single-service only",
            ),
            (
                ["serve", "--shards", "2", "--churn", "5:0:-1"],
                "single-service only",
            ),
            (
                ["serve", "--capacities", "4,1", "--shards", "2"],
                "every shard needs",
            ),
            (
                ["submit", "--connect", "1.2.3.4:1", "--socket", "/tmp/x"],
                "--connect and --socket",
            ),
            (["submit", "--jobs", "3"], "where is the service"),
            (["submit", "--connect", "nocolon"], "HOST:PORT"),
            (
                [
                    "submit", "--connect", "1.2.3.4:1",
                    "--job-file", "x.json", "--jobs", "2",
                ],
                "pick one source",
            ),
            (["drain", "--connect", "nope"], "HOST:PORT"),
            (["drain"], "where is the service"),
            (["shards", "status", "--connect", "nope"], "HOST:PORT"),
            (["shards", "status"], "where is the service"),
            (["recover", "x.journal", "--max-attempts", "2"], "--kill-rate"),
        ],
    )
    def test_conflicts_exit_2_one_line(self, capsys, argv, fragment):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert fragment in err
        assert "Traceback" not in err
        assert err.strip().count("\n") == 0

    def test_submit_unreachable_service(self, capsys):
        # port 1 is never listening; transport errors are CLI errors
        assert main(["submit", "--connect", "127.0.0.1:1"]) == 2
        err = capsys.readouterr().err
        assert "cannot connect" in err and "Traceback" not in err

    def test_drain_unreachable_service(self, capsys):
        assert main(["drain", "--connect", "127.0.0.1:1"]) == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_shards_unreachable_service(self, capsys):
        assert main(["shards", "status", "--connect", "127.0.0.1:1"]) == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_recover_missing_journal(self, capsys):
        assert main(["recover", "/nonexistent/x.journal"]) == 2
        err = capsys.readouterr().err
        assert "krad recover:" in err and "Traceback" not in err

    def test_recover_rebuilds_fault_hooks_from_flags(self, capsys, tmp_path):
        """A service journal written under fault injection recovers when
        (and only when) the same fault flags come back."""
        import json

        journal = str(tmp_path / "svc.journal")
        from repro.obs import Observability
        from repro.service import SchedulingService, ServiceConfig
        from repro.sim import JobKiller, RetryPolicy

        cfg = ServiceConfig(
            capacities=(4, 2), seed=9, journal_path=journal
        )
        svc = SchedulingService(
            cfg,
            obs=Observability(),
            fault_model=JobKiller(0.05, seed=9),
            retry_policy=RetryPolicy(max_attempts=4),
        )
        import numpy as np

        from repro.jobs import workloads

        rng = np.random.default_rng(2)
        for job in workloads.random_phase_jobset(rng, 2, 4, max_work=20).jobs:
            assert svc.submit("t", job)["ok"]
        svc.tick()
        del svc  # crash: journal has no end record
        # exit 0 = all jobs completed, 1 = some permanently failed under
        # the injected kills; both mean the recovery itself succeeded
        assert (
            main(
                [
                    "recover", journal,
                    "--kill-rate", "0.05",
                    "--max-attempts", "4",
                    "--seed", "9",
                ]
            )
            in (0, 1)
        )
        captured = capsys.readouterr()
        assert f"recovered from {journal}" in captured.out
        # without the fault flags the digest replay must diverge loudly
        assert main(["recover", journal]) == 2
        assert "krad recover:" in capsys.readouterr().err
