"""The sharded service: conformance, fault isolation, failover.

Three acceptance layers:

* **Sliced differential conformance** — a zero-fault N-shard run must be
  digest-identical, per tenant, to N independent single-shard runs of
  the same tenants with the same capacity slices, on both engines.  This
  is the sharding analogue of the engine conformance suite: routing and
  supervision must be *invisible* to what each shard computes.
* **Chaos-driven supervision ladder** — every `ShardFault` kind (hang,
  slow-journal, exception escape, crash) drives the deterministic
  quarantine → recover → serve/fail-over ladder, with `shard-recovering`
  rejections in the interim and untouched survivors throughout.
* **SIGKILL acceptance** — process-per-shard topology under sustained
  load: SIGKILL one shard's daemon, the other shard's p99 submit-to-ack
  latency must be unaffected, and the killed shard must come back
  through digest-verified journal recovery with every acked job intact.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.jobs import workloads
from repro.obs import Observability, parse_prometheus_text
from repro.service import (
    RejectionReason,
    SchedulingService,
    ServiceClient,
    ServiceConfig,
    ShardChaosPlan,
    ShardFault,
    ShardHealthPolicy,
    ShardedClient,
    ShardedSchedulingService,
    ThreadedServer,
    fetch_healthz,
)

CAPS = (6, 4, 4)


def _jobs(seed, n, k=3):
    rng = np.random.default_rng(seed)
    return list(
        workloads.random_phase_jobset(
            rng, k, n, max_phases=3, max_work=16
        ).jobs
    )


def _config(engine="fast", journal=None, **kw):
    kw.setdefault("capacities", CAPS)
    kw.setdefault("seed", 5)
    kw.setdefault("tenant_quota", 64)
    kw.setdefault("max_in_flight", 256)
    return ServiceConfig(
        engine=engine, journal_path=journal, fsync=False, **kw
    )


def _tenant_on(svc: ShardedSchedulingService, shard: int) -> str:
    """A tenant name the router puts on ``shard`` (deterministic)."""
    for i in range(10_000):
        name = f"probe-{i}"
        if svc.routing.peek(name) == shard:
            return name
    raise AssertionError(f"no tenant hashes to shard {shard}")


def _run_ticks(svc, n):
    for _ in range(n):
        svc.tick()


# ----------------------------------------------------------------------
# sliced differential conformance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("num_shards", [2, 3])
def test_sharded_run_digest_identical_to_standalone_slices(
    engine, num_shards
):
    """Zero faults: the N-shard service computes, per shard, exactly
    what a standalone single service with that shard's capacity slice
    and tenants computes — digest, makespan bookkeeping, per-tenant
    counts, the lot."""
    svc = ShardedSchedulingService(
        _config(engine), num_shards, obs=Observability()
    )
    tenants = [f"tenant-{i}" for i in range(3 * num_shards)]

    def submission_order():
        # jobs are stateful engine objects: every run gets fresh,
        # seed-identical copies
        per_tenant = {
            t: _jobs(100 + i, 3) for i, t in enumerate(tenants)
        }
        return [
            (t, per_tenant[t][j]) for j in range(3) for t in tenants
        ]

    order = submission_order()
    acks = {}
    for t, job in order:
        ack = svc.submit(t, job, release_time=0)
        assert ack["ok"], ack
        acks[ack["job_id"]] = t
    # global ids are collision-free and reversible
    assert len(acks) == len(order)
    for gid in acks:
        shard, local = svc.split_id(gid)
        assert svc.global_id(shard, local) == gid

    _run_ticks(svc, 5)  # supervision passes are part of the run
    merged = svc.drain()
    assert merged["ok"] and not merged["failed_shards"]
    assert merged["completed"] == len(order)

    shard_of = dict(svc.routing.assignments)
    assert set(shard_of.values()) == set(range(num_shards)), (
        "a shard owns no tenants; the conformance slice is vacuous"
    )
    splits = svc.allotter.split()
    for shard in range(num_shards):
        solo = SchedulingService(
            _config(engine, capacities=splits[shard]),
            obs=Observability(),
        )
        mine = [t for t in tenants if shard_of[t] == shard]
        for t, job in submission_order():
            if shard_of[t] == shard:
                assert solo.submit(t, job, release_time=0)["ok"]
        summary = solo.drain()
        # THE sharding contract: routing + supervision are invisible
        assert summary["digest"] == merged["digests"][shard]
        for t in mine:
            assert (
                summary["per_tenant"][t] == merged["per_tenant"][t]
            )


def test_single_shard_is_the_unsharded_service():
    """--shards 1 must be a transparent wrapper: same digest as the
    plain service with the full pool."""
    svc = ShardedSchedulingService(
        _config("fast"), 1, obs=Observability()
    )
    solo = SchedulingService(_config("fast"), obs=Observability())
    for i, (a, b) in enumerate(zip(_jobs(7, 9), _jobs(7, 9))):
        assert svc.submit(f"t{i % 3}", a, release_time=0)["ok"]
        assert solo.submit(f"t{i % 3}", b, release_time=0)["ok"]
    merged, summary = svc.drain(), solo.drain()
    assert merged["digests"][0] == summary["digest"]
    assert merged["makespan"] == summary["makespan"]


# ----------------------------------------------------------------------
# the supervision ladder, chaos-driven
# ----------------------------------------------------------------------
class TestSupervisionLadder:
    def _fleet(self, tmp_path, *, chaos, policy, journal=True):
        journal_path = (
            str(tmp_path / "fleet.journal") if journal else None
        )
        return ShardedSchedulingService(
            _config("fast", journal=journal_path),
            2,
            obs=Observability(),
            policy=policy,
            chaos=chaos,
        )

    def test_hang_quarantines_then_probe_recovers(self, tmp_path):
        chaos = ShardChaosPlan(
            [ShardFault(shard=0, kind="hang", start=0, stop=3)]
        )
        svc = self._fleet(
            tmp_path,
            chaos=chaos,
            policy=ShardHealthPolicy(
                missed_pings=2, recovery_deadline_ticks=50
            ),
            journal=False,
        )
        _run_ticks(svc, 2)
        assert svc.slots[0].state == "quarantined"
        assert svc.slots[0].reason == "hang"
        assert svc.slots[1].state == "serving"
        _run_ticks(svc, 3)  # window closes at tick 3; probe answers
        assert svc.slots[0].state == "serving"
        assert svc.slots[0].reason == "probe recovered"

    def test_slow_journal_quarantines_then_replay_recovers(
        self, tmp_path
    ):
        chaos = ShardChaosPlan(
            [
                ShardFault(
                    shard=1,
                    kind="slow-journal",
                    start=0,
                    stop=2,
                    magnitude=2.0,
                )
            ]
        )
        svc = self._fleet(
            tmp_path,
            chaos=chaos,
            policy=ShardHealthPolicy(
                journal_quarantine_s=0.5, recovery_deadline_ticks=50
            ),
        )
        # give the shard journal content so recovery must replay it
        tenant = _tenant_on(svc, 1)
        assert svc.submit(tenant, _jobs(11, 1)[0], release_time=0)["ok"]
        svc.tick()
        assert svc.slots[1].state == "quarantined"
        assert svc.slots[1].reason == "slow-journal"
        assert "journal append latency" in svc.slots[1].last_error
        _run_ticks(svc, 3)
        assert svc.slots[1].state == "serving"
        assert svc.slots[1].reason == "journal replay verified"

    def test_exception_escape_quarantines_not_crashes(self, tmp_path):
        chaos = ShardChaosPlan(
            [ShardFault(shard=0, kind="exception", start=1, stop=2)]
        )
        svc = self._fleet(
            tmp_path,
            chaos=chaos,
            policy=ShardHealthPolicy(recovery_deadline_ticks=50),
        )
        svc.tick()
        assert [s.state for s in svc.slots] == ["serving", "serving"]
        svc.tick()  # the escape happens here, caught at the boundary
        assert svc.slots[0].state == "quarantined"
        assert svc.slots[0].reason == "exception"
        _run_ticks(svc, 2)
        assert svc.slots[0].state == "serving"

    def test_crash_replays_journal_and_completes_acked_jobs(
        self, tmp_path
    ):
        chaos = ShardChaosPlan(
            [ShardFault(shard=0, kind="crash", start=2, stop=3)]
        )
        svc = self._fleet(
            tmp_path,
            chaos=chaos,
            policy=ShardHealthPolicy(recovery_deadline_ticks=50),
        )
        victim = _tenant_on(svc, 0)
        other = _tenant_on(svc, 1)
        acked = 0
        for i, job in enumerate(_jobs(3, 8)):
            ack = svc.submit(
                victim if i % 2 else other, job, release_time=0
            )
            assert ack["ok"]
            acked += 1
        _run_ticks(svc, 3)  # the crash window is tick [2, 3)
        assert svc.slots[0].service is None  # the live object died
        assert svc.slots[0].state == "quarantined"
        _run_ticks(svc, 3)
        assert svc.slots[0].state == "serving"
        assert svc.slots[0].reason == "journal replay verified"
        merged = svc.drain()
        assert merged["ok"] and not merged["failed_shards"]
        assert merged["completed"] == acked

    def test_shard_recovering_rejection_is_typed_and_actionable(
        self, tmp_path
    ):
        chaos = ShardChaosPlan(
            [ShardFault(shard=0, kind="hang", start=0, stop=40)]
        )
        svc = self._fleet(
            tmp_path,
            chaos=chaos,
            policy=ShardHealthPolicy(
                missed_pings=1, recovery_deadline_ticks=100
            ),
        )
        victim = _tenant_on(svc, 0)
        other = _tenant_on(svc, 1)
        svc.tick()
        assert svc.slots[0].state == "quarantined"

        rej = svc.submit(victim, _jobs(1, 1)[0], release_time=0)
        assert rej["ok"] is False
        assert rej["reason"] == RejectionReason.SHARD_RECOVERING.value
        assert rej["retry_after"] >= 1
        assert rej["shard"] == 0
        # status/cancel against the sick shard answer, typed, too
        gid = svc.global_id(0, 0)
        assert svc.status(gid)["reason"] == "shard-recovering"
        assert svc.cancel(gid)["reason"] == "shard-recovering"
        # the survivor's tenants never notice
        assert svc.submit(other, _jobs(2, 1)[0], release_time=0)["ok"]
        stats = svc.stats()
        assert stats["rejected"] >= 1
        assert stats["shards"][0]["ok"] is True  # quarantined, not gone
        assert stats["shards"][0]["shard_state"] == "quarantined"

    def test_missed_deadline_fails_over_to_survivors(self, tmp_path):
        # no journal: a crashed object cannot replay, so the deadline
        # must trip and the tenants must move
        chaos = ShardChaosPlan(
            [ShardFault(shard=0, kind="crash", start=0, stop=1)]
        )
        svc = self._fleet(
            tmp_path,
            chaos=chaos,
            policy=ShardHealthPolicy(
                recovery_deadline_ticks=3, max_recover_attempts=2
            ),
            journal=False,
        )
        victim_tenant = _tenant_on(svc, 0)
        other = _tenant_on(svc, 1)
        assert svc.submit(other, _jobs(4, 1)[0], release_time=0)["ok"]
        _run_ticks(svc, 6)
        assert svc.slots[0].state == "failed"
        assert "recovery" in svc.slots[0].reason
        assert svc.routing.dead == {0}
        assert svc.supervisor.failovers == 1
        # capacity re-split is accounting-plane: survivor owns the pool
        assert svc.slots[0].effective_capacities == (0, 0, 0)
        assert svc.slots[1].effective_capacities == CAPS
        # ... but the survivor's live engine machine was never touched
        assert tuple(svc.slots[1].config.capacities) != CAPS

        # the failed-over tenant's next submission lands on the survivor
        ack = svc.submit(victim_tenant, _jobs(5, 1)[0], release_time=0)
        assert ack["ok"] and ack["shard"] == 1
        assert svc.routing.shard_for(victim_tenant) == 1

        # status/cancel against the dead shard are *terminal*: typed
        # shard-failed, and no retry_after — a dead shard must not look
        # indefinitely retryable
        gid = svc.global_id(0, 0)
        for doc in (svc.status(gid), svc.cancel(gid)):
            assert doc["ok"] is False
            assert doc["reason"] == RejectionReason.SHARD_FAILED.value
            assert "retry_after" not in doc

        health = svc.health()
        assert health["ok"] is False
        assert health["sickest_shard"] == 0
        assert health["sickest_shard_state"] == "failed"
        assert health["failovers"] == 1

        doc = svc.shards_status()
        assert doc["failovers"] == 1
        assert doc["routing"]["dead"] == [0]
        merged = svc.drain()
        assert merged["failed_shards"] == [0]
        assert merged["failovers"] == 1

    def test_survivor_digest_unchanged_by_neighbour_failover(
        self, tmp_path
    ):
        """Isolation, stated as conformance: shard 1 drains to the same
        digest whether shard 0 lived or died next door."""
        def run(chaos):
            svc = ShardedSchedulingService(
                _config("fast"),
                2,
                obs=Observability(),
                policy=ShardHealthPolicy(
                    recovery_deadline_ticks=2, max_recover_attempts=1
                ),
                chaos=chaos,
            )
            tenant = _tenant_on(svc, 1)
            for job in _jobs(6, 6):
                assert svc.submit(tenant, job, release_time=0)["ok"]
            _run_ticks(svc, 8)
            return svc.drain()

        clean = run(None)
        dirty = run(
            ShardChaosPlan(
                [ShardFault(shard=0, kind="crash", start=0, stop=1)]
            )
        )
        assert dirty["failovers"] == 1
        assert clean["digests"][1] == dirty["digests"][1]
        assert clean["makespan"] == dirty["makespan"]

    def _failed_over_fleet(self, tmp_path):
        """A journaled 2-shard fleet whose shard 0 failed over: a hang
        outlives the recovery deadline, so the shard dies with its
        journal intact (and one acked job in it) on disk."""
        chaos = ShardChaosPlan(
            [ShardFault(shard=0, kind="hang", start=0, stop=100)]
        )
        svc = self._fleet(
            tmp_path,
            chaos=chaos,
            policy=ShardHealthPolicy(
                missed_pings=1, recovery_deadline_ticks=2
            ),
        )
        victim = _tenant_on(svc, 0)
        assert svc.submit(victim, _jobs(6, 1)[0], release_time=0)["ok"]
        _run_ticks(svc, 5)
        assert svc.slots[0].state == "failed"
        assert svc.routing.dead == {0}
        assert svc.supervisor.failovers == 1
        svc.routing.close()
        return victim

    def test_restart_revives_failed_shard_with_clean_journal(
        self, tmp_path
    ):
        victim = self._failed_over_fleet(tmp_path)

        svc2 = self._fleet(tmp_path, chaos=None, policy=None)
        slot = svc2.slots[0]
        assert slot.state == "serving"
        assert slot.reason == "journal replay verified on restart"
        assert svc2.routing.dead == set()
        # the failover is history, not amnesia: the journaled count
        # survives the restart
        assert svc2.supervisor.failovers == 1
        assert svc2.shards_status()["failovers"] == 1
        # the revived shard rejoins the accounting plane at its even
        # split, and its acked job replayed
        assert slot.effective_capacities == tuple(
            c // 2 for c in CAPS
        )
        assert slot.service.total_in_flight() == 1
        # failed-over tenants keep their explicit route; new tenants
        # may hash to the revived shard again
        assert svc2.routing.shard_for(victim) == 1
        fresh = _tenant_on(svc2, 0)
        ack = svc2.submit(fresh, _jobs(9, 1)[0], release_time=0)
        assert ack["ok"] and ack["shard"] == 0

    def test_restart_keeps_unrecoverable_shard_failed(self, tmp_path):
        self._failed_over_fleet(tmp_path)
        os.remove(tmp_path / "fleet.journal.shard0")

        svc2 = self._fleet(tmp_path, chaos=None, policy=None)
        slot = svc2.slots[0]
        assert slot.state == "failed"
        assert slot.service is None
        assert "no journal" in slot.last_error
        assert svc2.routing.dead == {0}
        assert svc2.supervisor.failovers == 1
        # accounting plane agrees with the routing state: the survivor
        # owns the whole pool, the corpse owns nothing
        assert slot.effective_capacities == tuple(0 for _ in CAPS)
        assert svc2.slots[1].effective_capacities == CAPS
        assert svc2.health()["sickest_shard_state"] == "failed"
        doc = svc2.status(svc2.global_id(0, 0))
        assert doc["reason"] == RejectionReason.SHARD_FAILED.value
        assert "retry_after" not in doc
        # the survivor serves on
        other = _tenant_on(svc2, 1)
        assert svc2.submit(other, _jobs(10, 1)[0], release_time=0)["ok"]


# ----------------------------------------------------------------------
# telemetry aggregation
# ----------------------------------------------------------------------
class TestShardTelemetry:
    def test_metrics_aggregate_with_shard_labels(self):
        svc = ShardedSchedulingService(
            _config("fast"), 2, obs=Observability()
        )
        for i, job in enumerate(_jobs(8, 4)):
            assert svc.submit(f"t{i}", job, release_time=0)["ok"]
        samples = parse_prometheus_text(svc.metrics_text())
        assert samples["krad_service_shards"] == 2.0
        for shard in ("0", "1"):
            # supervisor gauges per shard
            assert (
                samples[f'krad_service_shard_state{{shard="{shard}"}}']
                == 0.0
            )
            assert (
                samples[
                    "krad_service_shard_state_info"
                    f'{{shard="{shard}",state="serving"}}'
                ]
                == 1.0
            )
            # the single-service families re-labelled per shard
            assert (
                f'krad_service_clock{{shard="{shard}"}}' in samples
            )
        # accounting-plane capacity sums back to the global pool
        for alpha, cap in enumerate(CAPS):
            total = sum(
                samples[
                    "krad_service_shard_capacity"
                    f'{{category="{alpha}",shard="{shard}"}}'
                ]
                for shard in ("0", "1")
            )
            assert total == cap

    def test_shard_state_change_events_and_metrics(self, tmp_path):
        obs = Observability(
            events_path=str(tmp_path / "events.jsonl")
        )
        chaos = ShardChaosPlan(
            [ShardFault(shard=0, kind="hang", start=0, stop=2)]
        )
        svc = ShardedSchedulingService(
            _config("fast"),
            2,
            obs=obs,
            policy=ShardHealthPolicy(
                missed_pings=1, recovery_deadline_ticks=50
            ),
            chaos=chaos,
        )
        _run_ticks(svc, 4)
        obs.close()
        assert svc.slots[0].state == "serving"  # full round trip
        import json

        kinds = [
            json.loads(line)
            for line in open(tmp_path / "events.jsonl", encoding="utf-8")
        ]
        transitions = [
            (e["shard"], e["prev"], e["state"])
            for e in kinds
            if e["kind"] == "shard_state_change"
        ]
        assert transitions == [
            (0, "serving", "quarantined"),
            (0, "quarantined", "recovering"),
            (0, "recovering", "serving"),
        ]
        changes = obs.metrics.shard_state_changes
        assert changes[("0", "quarantined")] == 1
        assert changes[("0", "serving")] == 1

    def test_healthz_names_sickest_shard_over_http(self):
        chaos = ShardChaosPlan(
            [ShardFault(shard=1, kind="hang", start=0, stop=10**9)]
        )
        svc = ShardedSchedulingService(
            _config("fast"),
            2,
            obs=Observability(),
            policy=ShardHealthPolicy(
                missed_pings=1, recovery_deadline_ticks=10**6
            ),
            chaos=chaos,
        )
        with ThreadedServer(svc, metrics_port=0) as ts:
            deadline = time.monotonic() + 20
            status = doc = None
            while time.monotonic() < deadline:
                status, doc = fetch_healthz(ts.metrics_address)
                if status == 503 and doc.get("sickest_shard") == 1:
                    break
                time.sleep(0.02)
            assert status == 503
            assert doc["sickest_shard"] == 1
            assert doc["sickest_shard_state"] in (
                "quarantined",
                "recovering",
            )
            assert doc["state"] == "degraded"
            with ServiceClient(ts.address, timeout=10.0) as cli:
                shards = cli.shards_status()
            assert shards["ok"]
            states = {
                r["shard"]: r["state"] for r in shards["shards"]
            }
            assert states[0] == "serving"
            assert states[1] in ("quarantined", "recovering")
            with ServiceClient(ts.address, timeout=30.0) as cli:
                summary = cli.drain()
        assert summary["failed_shards"] == [1]

    def test_shards_op_rejected_by_unsharded_server(self):
        svc = SchedulingService(_config("fast"), obs=Observability())
        with ThreadedServer(svc) as ts:
            with ServiceClient(ts.address, timeout=10.0) as cli:
                doc = cli.shards_status()
                assert doc["ok"] is False
                assert "--shards" in doc["error"]
                cli.drain()


# ----------------------------------------------------------------------
# SIGKILL acceptance: process-per-shard
# ----------------------------------------------------------------------
def _spawn_shard(journal, capacities, seed):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--capacities", ",".join(str(c) for c in capacities),
            "--seed", str(seed),
            "--engine", "fast",
            "--journal", journal,
            "--tenant-quota", "64",
            "--max-in-flight", "256",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    address = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        assert line, "krad serve exited before binding"
        if line.startswith("serving on "):
            host, _, port = line.split()[-1].rpartition(":")
            address = (host, int(port))
            break
    assert address is not None
    return proc, address


def test_sigkill_one_shard_leaves_survivor_latency_alone(tmp_path):
    """Kill one shard daemon under load: the survivor's p99 submit-to-
    ack latency must be unaffected (no coupling through the router),
    and the victim must recover every acked job from its journal."""
    journals = [str(tmp_path / f"shard{i}.journal") for i in range(2)]
    shard_caps = [(3, 2, 2), (3, 2, 2)]
    procs = []
    addrs = []
    try:
        for i in range(2):
            proc, addr = _spawn_shard(journals[i], shard_caps[i], seed=5)
            procs.append(proc)
            addrs.append(addr)

        sc = ShardedClient(
            addrs,
            client_factory=lambda a: ServiceClient(a, timeout=15.0),
        )
        t0, t1 = None, None
        i = 0
        while t0 is None or t1 is None:
            name = f"load-{i}"
            if sc.shard_of(name) == 0 and t0 is None:
                t0 = name
            if sc.shard_of(name) == 1 and t1 is None:
                t1 = name
            i += 1

        def timed_submit(tenant, job):
            start = time.perf_counter()
            ack = sc.submit(tenant, job, release_time=0)
            return time.perf_counter() - start, ack

        jobs = _jobs(9, 60)
        baseline = {0: [], 1: []}
        victim_acks = []
        for i, job in enumerate(jobs[:30]):
            tenant = (t0, t1)[i % 2]
            dt, ack = timed_submit(tenant, job)
            assert ack["ok"]
            baseline[i % 2].append(dt)
            if i % 2 == 0:
                victim_acks.append(ack)

        os.kill(procs[0].pid, signal.SIGKILL)
        procs[0].wait(timeout=10)

        survivor = []
        for job in jobs[30:]:
            dt, ack = timed_submit(t1, job)
            assert ack["ok"]
            survivor.append(dt)
        # dead shard surfaces as a transport error, never a hang that
        # could stall the caller into the survivor's budget
        with pytest.raises(Exception):
            sc.client(0).submit(t0, jobs[0], release_time=0)

        p99_before = float(np.percentile(baseline[1], 99))
        p99_after = float(np.percentile(survivor, 99))
        # generous bound: "unaffected" here means no cross-shard stall
        # (a coupled router would show the dead peer's connect timeout)
        assert p99_after <= max(10.0 * p99_before, 0.25), (
            f"survivor p99 went {p99_before:.4f}s -> {p99_after:.4f}s "
            "after the other shard was SIGKILLed"
        )

        # the survivor drains clean, oblivious
        s1 = sc.client(1).drain()
        assert s1["ok"]
        assert s1["completed"] == len(baseline[1]) + len(survivor)

        # the victim restarts through journal recovery: every acked
        # job is restored and completes
        proc0, addr0 = _spawn_shard(journals[0], shard_caps[0], seed=5)
        procs[0] = proc0
        with ServiceClient(addr0, timeout=30.0) as cli:
            stats = cli.stats()
            assert stats["accepted"] == len(victim_acks)
            s0 = cli.drain()
        assert s0["ok"]
        assert s0["completed"] == len(victim_acks)
        sc.close()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
