"""Unit tests for JobSet aggregates."""

import numpy as np
import pytest

from repro.dag import builders
from repro.errors import WorkloadError
from repro.jobs import DagJob, JobSet, Phase, PhaseJob


def two_jobs():
    a = DagJob(builders.chain([0, 1], 2), job_id=0)
    b = DagJob(builders.independent_tasks([3, 1]), job_id=1, release_time=4)
    return JobSet([a, b])


class TestConstruction:
    def test_needs_jobs(self):
        with pytest.raises(WorkloadError):
            JobSet([])

    def test_duplicate_ids_rejected(self):
        a = DagJob(builders.chain([0], 1), job_id=0)
        b = DagJob(builders.chain([0], 1), job_id=0)
        with pytest.raises(WorkloadError):
            JobSet([a, b])

    def test_mixed_k_rejected(self):
        a = DagJob(builders.chain([0], 1), job_id=0)
        b = DagJob(builders.chain([0], 2), job_id=1)
        with pytest.raises(WorkloadError):
            JobSet([a, b])

    def test_from_dags_assigns_ids_and_releases(self):
        dags = [builders.chain([0], 1), builders.chain([0, 0], 1)]
        js = JobSet.from_dags(dags, release_times=[0, 7])
        assert [j.job_id for j in js] == [0, 1]
        assert [j.release_time for j in js] == [0, 7]

    def test_from_dags_release_mismatch(self):
        with pytest.raises(WorkloadError):
            JobSet.from_dags([builders.chain([0], 1)], release_times=[0, 1])

    def test_mixed_backends_allowed(self):
        a = DagJob(builders.chain([0], 1), job_id=0)
        b = PhaseJob([Phase([2], [1])], job_id=1)
        js = JobSet([a, b])
        assert len(js) == 2


class TestAggregates:
    def test_total_work_vector(self):
        js = two_jobs()
        assert js.total_work_vector().tolist() == [4, 2]

    def test_work_matrix(self):
        js = two_jobs()
        assert js.work_matrix().tolist() == [[1, 1], [3, 1]]

    def test_aggregate_span(self):
        js = two_jobs()
        assert js.aggregate_span() == 2 + 1

    def test_max_release_plus_span(self):
        js = two_jobs()
        assert js.max_release_plus_span() == max(0 + 2, 4 + 1)

    def test_is_batched(self):
        js = two_jobs()
        assert not js.is_batched()
        batched = JobSet.from_dags([builders.chain([0], 1)])
        assert batched.is_batched()

    def test_release_times_and_spans(self):
        js = two_jobs()
        assert js.release_times().tolist() == [0, 4]
        assert js.spans().tolist() == [2, 1]

    def test_container_protocol(self):
        js = two_jobs()
        assert len(js) == 2
        assert js[0].job_id == 0
        assert [j.job_id for j in js] == [0, 1]
        assert js.num_categories == 2
        assert len(js.jobs) == 2


class TestFreshCopy:
    def test_fresh_copy_is_unexecuted(self):
        js = two_jobs()
        js[0].execute(np.asarray([1, 0]), __import__("repro").FIFO)
        copy = js.fresh_copy()
        assert copy[0].remaining_work_vector().tolist() == [1, 1]
        # original untouched by the copy
        assert js[0].remaining_work_vector().tolist() == [0, 1]
