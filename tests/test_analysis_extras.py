"""Tests for heatmaps, bootstrap CIs and trace serialization."""

import numpy as np
import pytest

from repro.analysis import bootstrap_ci, grid, run_sweep
from repro.errors import ReproError
from repro.io import dump_trace, load_trace, trace_from_dict, trace_to_dict
from repro.viz import render_heatmap, sweep_heatmap


class TestBootstrap:
    def test_interval_contains_truth_for_tight_data(self):
        ci = bootstrap_ci([5.0] * 10)
        assert ci.estimate == 5.0
        assert ci.low == ci.high == 5.0
        assert ci.contains(5.0)
        assert ci.width == 0.0

    def test_interval_widens_with_variance(self):
        rng = np.random.default_rng(0)
        tight = bootstrap_ci(rng.normal(0, 0.1, size=30), seed=1)
        wide = bootstrap_ci(rng.normal(0, 5.0, size=30), seed=1)
        assert wide.width > tight.width

    def test_deterministic(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)

    def test_custom_statistic(self):
        ci = bootstrap_ci([1, 2, 3, 100], statistic=np.median)
        assert ci.estimate == 2.5

    def test_validation(self):
        with pytest.raises(ReproError):
            bootstrap_ci([])
        with pytest.raises(ReproError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ReproError):
            bootstrap_ci([1.0], resamples=0)

    def test_str_format(self):
        s = str(bootstrap_ci([1.0, 2.0]))
        assert "[" in s and "]95%" in s


class TestHeatmap:
    def test_render_basic(self):
        grid_values = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        out = render_heatmap(
            grid_values, row_labels=["a", "b"], col_labels=["x", "y"],
            title="T",
        )
        assert out.startswith("T\n")
        assert "4.00" in out and "1.00" in out
        assert "shade scale" in out

    def test_nan_cells(self):
        grid_values = np.asarray([[1.0, np.nan]])
        out = render_heatmap(
            grid_values, row_labels=["r"], col_labels=["x", "y"]
        )
        assert "--" in out

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            render_heatmap(
                np.ones((2, 2)), row_labels=["a"], col_labels=["x", "y"]
            )

    def test_sweep_pivot(self):
        sweep = run_sweep(
            grid(a=[1, 2], b=["x", "y"]),
            lambda p, rng: {"v": p["a"] * (1 if p["b"] == "x" else 10)},
        )
        out = sweep_heatmap(sweep, row="a", col="b", metric="v")
        assert "20.00" in out  # a=2, b=y
        assert "v (mean) by a x b" in out

    def test_sweep_pivot_max_reduce(self):
        sweep = run_sweep(
            grid(a=[1]), lambda p, rng: {"v": 3.0}, repeats=2
        )
        out = sweep_heatmap(sweep, row="a", col="rep", metric="v", reduce="max")
        assert "3.00" in out

    def test_bad_reduce(self):
        sweep = run_sweep(grid(a=[1]), lambda p, rng: {"v": 1.0})
        with pytest.raises(ValueError):
            sweep_heatmap(sweep, row="a", col="a", metric="v", reduce="sum")


class TestTraceIO:
    def _trace(self, rng):
        from repro.jobs import workloads
        from repro.machine import KResourceMachine
        from repro.schedulers import KRad
        from repro.sim import simulate

        machine = KResourceMachine((4, 2))
        js = workloads.random_dag_jobset(rng, 2, 4, size_hint=8)
        r = simulate(machine, KRad(), js, record_trace=True)
        return js, r.trace

    def test_round_trip_preserves_everything(self, rng):
        js, trace = self._trace(rng)
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.num_categories == trace.num_categories
        assert clone.capacities == trace.capacities
        assert len(clone) == len(trace)
        assert clone.task_times() == trace.task_times()
        assert clone.busy_matrix().tolist() == trace.busy_matrix().tolist()

    def test_round_tripped_trace_still_validates(self, rng):
        from repro.sim import validate_schedule

        js, trace = self._trace(rng)
        clone = trace_from_dict(trace_to_dict(trace))
        validate_schedule(clone, js)

    def test_file_round_trip(self, tmp_path, rng):
        js, trace = self._trace(rng)
        path = tmp_path / "trace.json"
        dump_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.task_times() == trace.task_times()

    def test_bad_document_rejected(self):
        with pytest.raises(ReproError):
            trace_from_dict({"format": "jobset", "version": 1})
        with pytest.raises(ReproError):
            trace_from_dict(
                {"format": "trace", "version": 99, "steps": []}
            )
