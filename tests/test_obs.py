"""Observability layer: primitives, engine wiring, and the central
claim that telemetry is read-only — a run is byte-identical with
observability on or off, differentially on the golden THM3/THM5 cells.
"""

import json

import numpy as np
import pytest

from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.obs import (
    EVENT_KINDS,
    EventBus,
    EventLog,
    Histogram,
    JsonlEventWriter,
    MetricsRegistry,
    Observability,
    PhaseProfiler,
    get_default_obs,
    parse_prometheus_text,
    set_default_obs,
)
from repro.schedulers import KRad
from repro.sim import (
    JobKiller,
    RecordingScheduler,
    RetryPolicy,
    ScriptedViolation,
    Supervisor,
    default_monitors,
    reallocation_volume,
    run_conformance,
    simulate,
)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# golden cells (THM3 / THM5 — the conformance anchors of the repo)
# ----------------------------------------------------------------------
def _thm3_build(obs_factory=None):
    def build():
        rng = np.random.default_rng(0)
        machine = KResourceMachine((4, 2))
        js = workloads.random_phase_jobset(rng, 2, 16, max_work=30)
        kwargs = dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=0,
            record_trace=True,
        )
        if obs_factory is not None:
            kwargs["obs"] = obs_factory()
        return kwargs

    return build


def _thm5_build(obs_factory=None):
    def build():
        rng = np.random.default_rng(0)
        machine = KResourceMachine((6, 4))
        js = workloads.light_phase_jobset(rng, machine, 4)
        kwargs = dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=0,
            record_trace=True,
        )
        if obs_factory is not None:
            kwargs["obs"] = obs_factory()
        return kwargs

    return build


@pytest.fixture(autouse=True)
def _no_default_obs():
    """Keep the process-wide default clear across tests."""
    set_default_obs(None)
    yield
    set_default_obs(None)


# ----------------------------------------------------------------------
# event bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_idle_bus_is_inactive_and_emit_is_noop(self):
        bus = EventBus()
        assert not bus.active
        bus.emit(3, "step", progress=1)  # must not raise, nothing stored

    def test_subscribe_activates_and_unsubscribe_deactivates(self):
        bus, log = EventBus(), EventLog()
        bus.subscribe(log)
        assert bus.active
        bus.emit(1, "checkpoint")
        bus.unsubscribe(log)
        assert not bus.active
        bus.emit(2, "checkpoint")
        assert [e.t for e in log.events] == [1]

    def test_event_payload_and_to_dict(self):
        bus, log = EventBus(), EventLog()
        bus.subscribe(log)
        bus.emit(7, "retry", job=3, attempt=2, release=9)
        (e,) = log.events
        assert (e.t, e.kind) == (7, "retry")
        assert e.to_dict() == {
            "t": 7,
            "kind": "retry",
            "job": 3,
            "attempt": 2,
            "release": 9,
        }

    def test_fan_out_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e.kind)))
        bus.subscribe(lambda e: seen.append(("b", e.kind)))
        bus.emit(0, "run_start")
        assert seen == [("a", "run_start"), ("b", "run_start")]

    def test_eventlog_of_kind_and_counts(self):
        bus, log = EventBus(), EventLog()
        bus.subscribe(log)
        bus.emit(1, "step")
        bus.emit(1, "alloc")
        bus.emit(2, "step")
        assert len(log.of_kind("step")) == 2
        assert log.kinds() == {"step": 2, "alloc": 1}


class TestJsonlEventWriter:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlEventWriter(str(path)) as w:
            bus.subscribe(w)
            bus.emit(1, "step", progress=np.int64(5), desired=np.arange(2))
            bus.emit(2, "run_end", makespan=4)
        lines = path.read_text().splitlines()
        assert w.count == 2
        first = json.loads(lines[0])
        assert first == {
            "t": 1,
            "kind": "step",
            "progress": 5,
            "desired": [0, 1],
        }
        assert json.loads(lines[1])["kind"] == "run_end"

    def test_rejects_unserialisable_payload(self, tmp_path):
        with JsonlEventWriter(str(tmp_path / "e.jsonl")) as w:
            with pytest.raises(TypeError, match="not JSON-serialisable"):
                w(type("E", (), {"to_dict": lambda s: {"x": object()}})())


# ----------------------------------------------------------------------
# metric primitives + exporters
# ----------------------------------------------------------------------
class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram((1.0, 1.0))

    def test_observe_places_inclusive_upper_bounds(self):
        h = Histogram((1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(v)
        assert h.counts == [2, 2, 1]  # <=1, <=2, +Inf
        assert h.cumulative() == [2, 4, 5]
        assert h.count == 5 and h.sum == pytest.approx(104.0)

    def test_observe_n_matches_repeated_observe(self):
        a, b = Histogram((1.0, 4.0)), Histogram((1.0, 4.0))
        a.observe_n(0.5, 7)
        for _ in range(7):
            b.observe(0.5)
        assert (a.counts, a.sum, a.count) == (b.counts, b.sum, b.count)


class TestMetricsRegistry:
    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("x_total").inc(-1)

    def test_text_round_trips_through_strict_parser(self):
        reg = MetricsRegistry()
        reg.counter("retries_total", "retries", category=0).inc(3)
        reg.gauge("last_makespan", "makespan").set(17)
        h = reg.histogram("wall_seconds", "wall", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        samples = parse_prometheus_text(reg.to_prometheus_text())
        assert samples['krad_retries_total{category="0"}'] == 3
        assert samples["krad_last_makespan"] == 17
        assert samples['krad_wall_seconds_bucket{le="+Inf"}'] == 2
        assert samples["krad_wall_seconds_count"] == 2

    def test_parser_rejects_undeclared_and_duplicates(self):
        with pytest.raises(ValueError, match="undeclared"):
            parse_prometheus_text("krad_mystery_total 3\n")
        dup = (
            "# TYPE krad_x_total counter\n"
            "krad_x_total 1\nkrad_x_total 2\n"
        )
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus_text(dup)
        with pytest.raises(ValueError, match="unparsable"):
            parse_prometheus_text(
                "# TYPE krad_x_total counter\nkrad_x_total abc\n"
            )


class TestPhaseProfiler:
    def test_laps_accumulate_per_phase(self):
        prof = PhaseProfiler()
        prof.step_begin()
        prof.lap("arrivals")
        prof.lap("execution")
        prof.step_begin()
        prof.lap("arrivals")
        assert prof.counts == {"arrivals": 2, "execution": 1}
        assert prof.total == pytest.approx(sum(prof.totals.values()))
        assert "arrivals" in prof.report()


# ----------------------------------------------------------------------
# the central claim: obs on/off is byte-identical, on the golden cells
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cell", [_thm3_build, _thm5_build], ids=["thm3", "thm5"]
)
def test_obs_on_off_identical_on_golden_cells(cell, tmp_path):
    """Traces, result fingerprints, metrics and per-step journal digests
    are identical with observability off, metrics-only, and full event
    streaming — on both engines."""
    off = run_conformance(cell(None), check_journal=True)
    on = run_conformance(
        cell(lambda: Observability(profile=True)), check_journal=True
    )
    streamed = run_conformance(
        cell(
            lambda: Observability(events_path=str(tmp_path / "ev.jsonl"))
        ),
        check_journal=True,
    )
    assert off.ok and on.ok and streamed.ok
    for variant in (on, streamed):
        assert variant.fingerprints == off.fingerprints
        assert variant.traces == off.traces
        assert variant.metrics == off.metrics
        assert variant.journal_digests == off.journal_digests


def test_engine_metrics_match_reference_counters():
    """RunMetrics totals line up with the finished result's counters."""
    kwargs = _thm3_build(Observability)()
    obs = kwargs["obs"]
    machine, sched, js = (
        kwargs["machine"],
        kwargs["scheduler"],
        kwargs["jobset"],
    )
    result = simulate(machine, sched, js, seed=0, record_trace=True, obs=obs)
    m = obs.metrics
    assert m.runs == 1
    assert m.completions == len(result.completion_times) == 16
    assert m.steps == result.makespan
    assert m.last_makespan == result.makespan
    assert m.progress == int(np.asarray(result.busy).sum())
    assert m.last_utilization == tuple(
        float(u) for u in result.utilization_vector()
    )
    # transitions exported per category, kinds from the RAD ledger
    assert len(m.transitions) == 2
    assert all(
        k in {"deq_to_rr", "rr_to_deq", "rebatch", "absorb"}
        for cat in m.transitions
        for k in cat
    )


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_realloc_metric_equals_trace_volume(engine):
    """The streaming reallocation counter reproduces the trace-derived
    post-hoc metric exactly, on both engines' traced paths."""
    kwargs = _thm3_build(Observability)()
    obs = kwargs["obs"]
    result = simulate(
        kwargs["machine"],
        kwargs["scheduler"],
        kwargs["jobset"],
        seed=0,
        record_trace=True,
        engine=engine,
        obs=obs,
    )
    assert obs.metrics.realloc_units == pytest.approx(
        reallocation_volume(result.trace)["total"]
    )


def test_lean_path_metrics_match_reference_with_steady_spans():
    """The fast engine's untraced lean path (matrix allocations, steady
    spans skipped analytically) credits the same step/desire/allocation
    /reallocation totals as the reference engine observes step by step."""

    def run(engine):
        rng = np.random.default_rng(0)
        machine = KResourceMachine((6, 4))
        js = workloads.light_phase_jobset(rng, machine, 4)
        obs = Observability()
        simulate(
            machine, KRad(machine), js, seed=0, engine=engine, obs=obs
        )
        return obs.metrics

    ref, fast = run("reference"), run("fast")
    assert fast.steady_steps > 0  # the span path actually engaged
    assert fast.steps == ref.steps
    assert fast.progress == ref.progress
    assert (fast.desired == ref.desired).all()
    assert (fast.allocated == ref.allocated).all()
    assert fast.realloc_units == pytest.approx(ref.realloc_units)
    assert fast.realloc.count == ref.realloc.count
    assert fast.satisfaction.count == ref.satisfaction.count
    # wall time is per *executed* loop iteration, so the fast engine
    # executes fewer — exactly the skipped steady steps.
    assert ref.wall.count - fast.wall.count == fast.steady_steps


def test_fault_run_exports_nonzero_retry_counters(tmp_path):
    """Acceptance cell: a fault-injected run's Prometheus export parses
    strictly and shows nonzero kill/retry counters; the JSONL stream
    carries the matching typed events."""
    events = tmp_path / "events.jsonl"
    rng = np.random.default_rng(3)
    machine = KResourceMachine((4, 4))
    js = workloads.random_phase_jobset(rng, 2, 12, max_work=30)
    with Observability(events_path=str(events)) as obs:
        simulate(
            machine,
            KRad(machine),
            js,
            seed=3,
            fault_model=JobKiller(0.05, seed=11),
            retry_policy=RetryPolicy(max_attempts=4),
            obs=obs,
        )
        text = obs.export_prometheus()
    samples = parse_prometheus_text(text)
    assert samples["krad_job_kills_total"] > 0
    assert samples["krad_retries_total"] > 0
    kinds = {
        json.loads(line)["kind"]
        for line in events.read_text().splitlines()
    }
    assert {"job_kill", "retry", "run_start", "step", "run_end"} <= kinds
    assert kinds <= set(EVENT_KINDS)


def test_supervised_run_exports_quarantine_counters():
    """Acceptance cell: a quarantining supervisor run shows nonzero
    incident and quarantine counters in the export."""
    rng = np.random.default_rng(8)
    machine = KResourceMachine((4, 4))
    js = workloads.random_phase_jobset(rng, 2, 8, max_work=25)
    monitors = default_monitors()
    monitors.append(ScriptedViolation(step=6, job_id=js[0].job_id))
    obs = Observability()
    result = simulate(
        machine,
        KRad(machine),
        js,
        seed=8,
        supervisor=Supervisor(monitors, mode="resilient"),
        obs=obs,
    )
    assert result.quarantined_jobs  # the drill actually quarantined
    samples = parse_prometheus_text(obs.export_prometheus())
    assert samples["krad_quarantines_total"] > 0
    assert (
        samples['krad_incidents_total{monitor="scripted-violation"}'] > 0
    )


def test_journal_and_checkpoint_counters(tmp_path):
    from repro.sim.journal import Journal

    obs = Observability()
    kwargs = _thm3_build(None)()
    sim = Simulator(
        kwargs["machine"],
        kwargs["scheduler"],
        kwargs["jobset"],
        seed=0,
        journal=Journal(str(tmp_path / "run.journal"), checkpoint_every=10),
        obs=obs,
    )
    sim.run()
    m = obs.metrics
    assert m.checkpoints > 0
    assert m.journal_records.get("step", 0) > 0
    assert m.journal_records.get("meta", 0) == 1
    assert m.journal_records.get("end", 0) == 1
    assert m.journal_records.get("checkpoint", 0) == m.checkpoints


def test_event_stream_kinds_are_within_taxonomy(tmp_path):
    """Every emitted kind on a full-featured run is a declared kind."""
    log = EventLog()
    obs = Observability()
    obs.bus.subscribe(log)
    kwargs = _thm5_build(None)()
    simulate(
        kwargs["machine"],
        kwargs["scheduler"],
        kwargs["jobset"],
        seed=0,
        engine="fast",
        obs=obs,
    )
    kinds = set(log.kinds())
    assert kinds <= set(EVENT_KINDS)
    assert {"run_start", "step", "alloc", "run_end"} <= kinds
    assert log.of_kind("steady_span")  # light workload goes quiescent
    span = log.of_kind("steady_span")[0]
    assert span.data["steps"] >= 1


def test_transition_events_sum_to_scheduler_ledger():
    log = EventLog()
    obs = Observability()
    obs.bus.subscribe(log)
    kwargs = _thm3_build(None)()
    sched = kwargs["scheduler"]
    simulate(
        kwargs["machine"], sched, kwargs["jobset"], seed=0, obs=obs
    )
    emitted: dict[tuple, int] = {}
    for e in log.of_kind("transition"):
        key = (e.data["category"], e.data["transition"])
        emitted[key] = emitted.get(key, 0) + e.data["count"]
    ledger = {
        (alpha, kind): n
        for alpha, cat in enumerate(sched.obs_transitions())
        for kind, n in cat.items()
        if n
    }
    assert emitted == ledger


# ----------------------------------------------------------------------
# default-obs installation (the CLI's process-wide hook)
# ----------------------------------------------------------------------
def test_default_obs_reaches_implicit_simulators():
    obs = Observability()
    set_default_obs(obs)
    assert get_default_obs() is obs
    kwargs = _thm3_build(None)()
    simulate(kwargs["machine"], kwargs["scheduler"], kwargs["jobset"], seed=0)
    assert obs.metrics.runs == 1
    set_default_obs(None)
    kwargs = _thm3_build(None)()
    simulate(kwargs["machine"], kwargs["scheduler"], kwargs["jobset"], seed=0)
    assert obs.metrics.runs == 1  # uninstalled: no longer observed


def test_explicit_obs_wins_over_default():
    installed, explicit = Observability(), Observability()
    set_default_obs(installed)
    kwargs = _thm3_build(None)()
    simulate(
        kwargs["machine"],
        kwargs["scheduler"],
        kwargs["jobset"],
        seed=0,
        obs=explicit,
    )
    assert explicit.metrics.runs == 1
    assert installed.metrics.runs == 0


def test_observability_without_metrics_rejects_export():
    obs = Observability(metrics=False)
    with pytest.raises(ValueError, match="metrics=False"):
        obs.export_prometheus()
    with pytest.raises(ValueError, match="metrics=False"):
        obs.export_json()


def test_profiler_attributes_engine_phases():
    for engine, expect in (
        ("reference", {"arrivals", "desires", "allotment", "execution"}),
        ("fast", {"arrivals", "allotment", "execution"}),
    ):
        obs = Observability(profile=True)
        kwargs = _thm3_build(None)()
        simulate(
            kwargs["machine"],
            kwargs["scheduler"],
            kwargs["jobset"],
            seed=0,
            engine=engine,
            obs=obs,
        )
        assert expect <= set(obs.profiler.totals), engine
        assert obs.profiler.total > 0


# ----------------------------------------------------------------------
# RecordingScheduler: records, bus streaming, forwarding
# ----------------------------------------------------------------------
class TestRecordingScheduler:
    def _run(self, **wrap_kwargs):
        rng = np.random.default_rng(0)
        machine = KResourceMachine((1,))  # 1 processor, 3 jobs: RR forced
        js = workloads.random_phase_jobset(
            rng, 1, 3, max_work=12, max_parallelism=2
        )
        sched = RecordingScheduler(KRad(machine), **wrap_kwargs)
        result = simulate(machine, sched, js, seed=0)
        return sched, result

    def test_records_cover_starved_jobs(self):
        """With 3 jobs on 1 processor some step has a job alpha-active
        (positive desire) but unserved — active_jobs must include it,
        served_jobs must not."""
        sched, result = self._run()
        assert sched.keep_records and sched.records
        starved = [
            rec
            for rec in sched.records
            if set(rec.active_jobs(0)) - set(rec.served_jobs(0))
        ]
        assert starved, "expected at least one starved (RR-waiting) job"
        rec = starved[0]
        assert set(rec.served_jobs(0)) <= set(rec.active_jobs(0))
        for jid in rec.active_jobs(0):
            assert rec.desires[jid][0] > 0
        for jid in rec.served_jobs(0):
            assert rec.allotments[jid][0] > 0

    def test_bus_streaming_defaults_to_no_records(self):
        bus, log = EventBus(), EventLog()
        bus.subscribe(log)
        sched, result = self._run(bus=bus)
        assert not sched.keep_records and not sched.records
        allocs = log.of_kind("alloc")
        assert len(allocs) == result.makespan
        assert all(e.data["source"] == "scheduler" for e in allocs)
        # stream carries the same starvation signal the records would
        assert any(
            any(
                d[0] > 0 and e.data["allotments"].get(jid, [0])[0] == 0
                for jid, d in e.data["desires"].items()
            )
            for e in allocs
        )

    def test_keep_records_true_gives_both(self):
        bus, log = EventBus(), EventLog()
        bus.subscribe(log)
        sched, result = self._run(bus=bus, keep_records=True)
        assert len(sched.records) == len(log.of_kind("alloc"))
        assert len(sched.records) == result.makespan

    def test_idle_bus_emits_nothing(self):
        sched, _ = self._run(bus=EventBus(), keep_records=True)
        assert sched.records  # recording still on explicitly

    def test_forwards_capacity_change_and_obs_surface(self):
        calls = []

        class Probe(KRad):
            def notify_capacity_change(self, old, new):
                calls.append((tuple(old), tuple(new)))
                super().notify_capacity_change(old, new)

        machine = KResourceMachine((4, 2))
        sched = RecordingScheduler(Probe(machine))
        sched.reset(machine)
        sched.notify_capacity_change((4, 2), (2, 2))
        assert calls == [((4, 2), (2, 2))]
        assert sched.obs_rr_depths() == sched.inner.obs_rr_depths()
        assert sched.obs_transitions() == sched.inner.obs_transitions()

    def test_wrapped_conformance_under_churn(self):
        """The wrapper stays transparent across engines even when the
        capacity-change hook must migrate RAD state mid-run."""
        from repro.machine.churn import ChurnEvent, ChurnSchedule

        def build():
            rng = np.random.default_rng(6)
            machine = KResourceMachine((4, 4))
            js = workloads.random_phase_jobset(rng, 2, 10, max_work=30)
            churn = ChurnSchedule(
                (4, 4), [ChurnEvent(5, 0, -3, duration=10)]
            )
            return dict(
                machine=machine,
                scheduler=RecordingScheduler(KRad(machine)),
                jobset=js,
                seed=6,
                record_trace=True,
                churn=churn,
            )

        # identical to the unwrapped scenario, proving transparency
        wrapped = run_conformance(build, check_journal=False)
        assert wrapped.ok
        base = run_conformance(
            lambda: {**build(), "scheduler": KRad()}, check_journal=False
        )
        assert wrapped.traces == base.traces
