"""Unit tests for the Figure-3 lower-bound construction."""

import pytest

from repro.dag.lowerbound import (
    adversarial_makespan,
    figure3_instance,
    figure3_special_job,
    homogeneous_lower_bound_job,
    optimal_makespan,
)
from repro.errors import DagError


class TestSpecialJob:
    def test_span_formula(self):
        # T_inf = K + m*P_K - 1
        for caps in [(2, 2), (2, 3, 4), (1, 1, 2, 4)]:
            for m in (1, 2, 3):
                dag = figure3_special_job(m, caps)
                assert dag.span() == len(caps) + m * caps[-1] - 1

    def test_level_sizes_k3(self):
        caps = (2, 3, 4)
        m = 2
        dag = figure3_special_job(m, caps)
        work = dag.work_vector()
        pk = caps[-1]
        assert work[0] == 1  # level 1: one 1-task
        assert work[1] == m * caps[1] * pk  # level 2
        # level K: m*PK*(PK-1)+1 plus the chain of m*PK-1
        assert work[2] == m * pk * (pk - 1) + 1 + (m * pk - 1)

    def test_k2_has_no_middle_levels(self):
        caps = (3, 4)
        m = 1
        dag = figure3_special_job(m, caps)
        work = dag.work_vector()
        assert work[0] == 1
        assert work[1] == 4 * 3 + 1 + 3

    def test_is_valid_dag(self):
        dag = figure3_special_job(2, (2, 2, 4))
        dag.validate()

    def test_rejects_k1(self):
        with pytest.raises(DagError):
            figure3_special_job(1, (4,))

    def test_rejects_bad_m(self):
        with pytest.raises(DagError):
            figure3_special_job(0, (2, 2))

    def test_rejects_last_category_not_pmax(self):
        with pytest.raises(DagError):
            figure3_special_job(1, (4, 2))


class TestInstance:
    def test_job_count(self):
        inst = figure3_instance(2, (3, 4))
        assert inst.num_jobs == 2 * 3 * 4

    def test_special_job_is_last(self):
        inst = figure3_instance(1, (2, 2))
        assert inst.special_index == inst.num_jobs - 1
        special = inst.dags[inst.special_index]
        assert special.span() > 1
        for filler in inst.dags[:-1]:
            assert filler.num_vertices == 1
            assert filler.category(0) == 0

    def test_closed_forms(self):
        inst = figure3_instance(3, (2, 2, 4))
        assert inst.optimal_makespan == 3 + 3 * 4 - 1
        assert inst.adversarial_makespan == 3 * 3 * 4 + 3 * 4 - 3

    def test_closed_form_functions_match_properties(self):
        m, caps = 2, (2, 4)
        inst = figure3_instance(m, caps)
        assert inst.optimal_makespan == optimal_makespan(m, caps)
        assert inst.adversarial_makespan == adversarial_makespan(m, caps)

    def test_ratio_approaches_limit(self):
        caps = (2, 2, 4)
        K, pk = len(caps), caps[-1]
        limit = K + 1 - 1 / pk
        ratios = [
            adversarial_makespan(m, caps) / optimal_makespan(m, caps)
            for m in (1, 10, 100, 1000)
        ]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] == pytest.approx(limit, rel=1e-2)


class TestHomogeneous:
    def test_structure(self):
        m, p = 2, 4
        dag = homogeneous_lower_bound_job(m, p)
        assert dag.num_categories == 1
        assert dag.total_work() == m * p * (p - 1) + 1 + m * p - 1
        assert dag.span() == m * p  # head + chain

    def test_validation(self):
        with pytest.raises(DagError):
            homogeneous_lower_bound_job(0, 2)
        with pytest.raises(DagError):
            homogeneous_lower_bound_job(1, 0)
