"""Engine edge cases: empty job sets and all-quiescent steps.

The reference engine historically rescanned the full ready set every
step and treated *any* live job as "active" when checking work
conservation — a job whose desires are all zero (e.g. a warm-up step of
a feedback backend) would abort the run even though the scheduler was
right to allocate nothing.  Both engines must accept these shapes and
agree with each other.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.jobs import JobSet, workloads
from repro.jobs.base import Job
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import ENGINE_NAMES, simulate


# ----------------------------------------------------------------------
# empty job sets
# ----------------------------------------------------------------------
def test_empty_jobset_requires_explicit_k():
    with pytest.raises(WorkloadError, match="num_categories"):
        JobSet([])


def test_empty_jobset_aggregates():
    js = JobSet([], num_categories=3)
    assert js.num_categories == 3
    assert len(js) == 0
    assert js.total_work_vector().tolist() == [0, 0, 0]
    assert js.work_matrix().shape == (0, 3)
    assert js.max_release_plus_span() == 0
    fresh = js.fresh_copy()
    assert fresh.num_categories == 3 and len(fresh) == 0


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_empty_jobset_simulates_to_nothing(engine):
    machine = KResourceMachine((2, 3))
    js = JobSet([], num_categories=2)
    result = simulate(machine, KRad(machine), js, seed=0, engine=engine)
    assert result.makespan == 0
    assert result.completion_times == {}
    assert np.asarray(result.busy).tolist() == [0, 0]


def test_empty_jobset_engines_agree_on_trace():
    machine = KResourceMachine((2,))
    runs = [
        simulate(
            machine,
            KRad(machine),
            JobSet([], num_categories=1),
            seed=0,
            record_trace=True,
            engine=engine,
        )
        for engine in ENGINE_NAMES
    ]
    digests = {r.trace.content_digest() for r in runs}
    assert len(digests) == 1


# ----------------------------------------------------------------------
# all-quiescent steps: live jobs, all desires zero
# ----------------------------------------------------------------------
class WarmupJob(Job):
    """Desires nothing for ``warmup`` steps, then one unit per category.

    Models feedback backends (A-GREEDY style) that spend steps observing
    before requesting — a live job whose desire vector is legitimately
    all-zero.  Time passes for it via ``on_idle_step`` calls from
    ``desire_vector`` polling; the engine allocates nothing meanwhile.
    """

    __slots__ = ("_k", "_warmup", "_remaining", "_polls")

    def __init__(self, job_id, k, warmup, work=2):
        super().__init__(job_id)
        self._k = k
        self._warmup = warmup
        self._remaining = work
        self._polls = 0

    def desire_vector(self):
        if self._polls < self._warmup:
            self._polls += 1
            return np.zeros(self._k, dtype=np.int64)
        if self.is_complete:
            return np.zeros(self._k, dtype=np.int64)
        return np.ones(self._k, dtype=np.int64)

    @property
    def is_complete(self):
        return self._remaining <= 0

    def execute(self, allotment, policy=None, rng=None):
        allotment = np.asarray(allotment, dtype=np.int64)
        executed = [[] for _ in range(self._k)]
        if allotment.any():
            self._remaining -= 1
            executed[int(np.argmax(allotment))] = [self._remaining]
        return executed

    def work_vector(self):
        return np.full(self._k, self._remaining, dtype=np.int64)

    def span(self):
        return max(self._remaining, 1)

    def remaining_work_vector(self):
        return self.work_vector()

    def remaining_span(self):
        return self._remaining

    def fresh_copy(self):
        return WarmupJob(self.job_id, self._k, self._warmup)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_all_quiescent_step_is_not_a_stall(engine):
    """A step where every live job desires zero must not abort the run
    as a work-conservation violation (nothing *could* execute)."""
    machine = KResourceMachine((2, 2))
    js = JobSet([WarmupJob(0, 2, warmup=3)], num_categories=2)
    result = simulate(machine, KRad(machine), js, seed=0, engine=engine)
    assert result.completion_times.keys() == {0}
    assert result.makespan > 0


def test_all_quiescent_engines_agree():
    runs = {}
    for engine in ENGINE_NAMES:
        machine = KResourceMachine((2, 2))
        js = JobSet(
            [WarmupJob(0, 2, warmup=2), WarmupJob(1, 2, warmup=4)],
            num_categories=2,
        )
        runs[engine] = simulate(
            machine, KRad(machine), js, seed=0, engine=engine
        )
    ref, fast = runs["reference"], runs["fast"]
    assert ref.makespan == fast.makespan
    assert ref.completion_times == fast.completion_times


# ----------------------------------------------------------------------
# zero-alpha-desire jobs: categories a job never touches
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_single_category_jobs_on_wide_machine(engine):
    """Jobs working in one category only: the other categories' queues
    must not rescan (or charge) them, and the run completes."""
    rng = np.random.default_rng(0)
    machine = KResourceMachine((3, 3, 3))
    narrow = workloads.random_phase_jobset(rng, 1, 6, max_work=20)
    from repro.jobs.phase_job import Phase, PhaseJob

    jobs = []
    for i, job in enumerate(narrow):
        phases = [
            Phase(
                [int(ph.work[0]), 0, 0],
                [int(ph.parallelism[0]), 1, 1],
            )
            for ph in job.phases
        ]
        jobs.append(PhaseJob(phases, job_id=i))
    js = JobSet(jobs)
    result = simulate(machine, KRad(machine), js, seed=0, engine=engine)
    assert len(result.completion_times) == len(jobs)
    busy = np.asarray(result.busy)
    assert busy[0] > 0 and busy[1] == 0 and busy[2] == 0
