"""Property-based differential testing of the fast engine.

hypothesis generates machines (K in {1, 2, 4}), phase and DAG job sets,
with and without release times, and asserts both engines produce equal
makespans, mean response times and final trace content digests.  When a
property fails, hypothesis shrinks the scenario and the comparison
helper dumps the *minimal* failing jobset (plus machine and seed) as a
JSON repro file under ``tests/failures/`` — re-runnable without
hypothesis in the loop.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io.serialize import jobset_to_dict, machine_to_dict
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import simulate

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FAILURE_DIR = os.path.join(os.path.dirname(__file__), "failures")


@st.composite
def machine_strategy(draw):
    k = draw(st.sampled_from([1, 2, 4]))
    caps = tuple(draw(st.integers(1, 6)) for _ in range(k))
    return KResourceMachine(caps)


@st.composite
def scenario_strategy(draw):
    machine = draw(machine_strategy())
    k = machine.num_categories
    seed = draw(st.integers(0, 2**16))
    kind = draw(st.sampled_from(["phase", "dag"]))
    n_jobs = draw(st.integers(1, 10))
    rng = np.random.default_rng(seed)
    if kind == "phase":
        js = workloads.random_phase_jobset(
            rng, k, n_jobs, max_phases=3, max_work=20, max_parallelism=6
        )
    else:
        js = workloads.random_dag_jobset(rng, k, n_jobs, size_hint=10)
    if draw(st.booleans()):
        releases = [
            draw(st.integers(0, 15)) for _ in range(len(js))
        ]
        js = workloads.with_release_times(js, sorted(releases))
    return machine, js, seed


def _dump_repro(machine, jobset, seed, label):
    """Persist the (shrunk) failing scenario as a standalone repro file.

    hypothesis calls the test repeatedly while shrinking, overwriting the
    file each time, so what remains on disk is the minimal example.
    """
    os.makedirs(FAILURE_DIR, exist_ok=True)
    path = os.path.join(FAILURE_DIR, f"conformance_{label}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "machine": machine_to_dict(machine),
                "jobset": jobset_to_dict(jobset),
                "seed": seed,
                "repro": (
                    "load with repro.io.serialize.jobset_from_dict / "
                    "machine_from_dict, then simulate(...) once per "
                    "engine with the stored seed"
                ),
            },
            fh,
            indent=2,
        )
    return path


def _compare_engines(machine, jobset, seed, label):
    results = {}
    for engine in ("reference", "fast"):
        results[engine] = simulate(
            machine,
            KRad(machine),
            jobset.fresh_copy(),
            seed=seed,
            record_trace=True,
            engine=engine,
        )
    ref, fast = results["reference"], results["fast"]
    checks = {
        "makespan": (ref.makespan, fast.makespan),
        "completion_times": (ref.completion_times, fast.completion_times),
        "mean_rt": (
            sorted(ref.response_times().values()),
            sorted(fast.response_times().values()),
        ),
        "trace_digest": (
            ref.trace.content_digest(),
            fast.trace.content_digest(),
        ),
    }
    for name, (a, b) in checks.items():
        if a != b:
            path = _dump_repro(machine, jobset, seed, label)
            raise AssertionError(
                f"{name} diverged: reference={a!r} fast={b!r}; "
                f"minimal repro written to {path}"
            )


@_SETTINGS
@given(scenario_strategy())
def test_engines_agree_on_arbitrary_scenarios(scenario):
    machine, js, seed = scenario
    _compare_engines(machine, js, seed, "scenario")


@_SETTINGS
@given(
    machine_strategy(),
    st.integers(0, 2**16),
    st.integers(1, 8),
)
def test_engines_agree_on_phase_batches(machine, seed, n_jobs):
    """Batched (all released at 0) phase sets — the lean path's regime."""
    rng = np.random.default_rng(seed)
    js = workloads.random_phase_jobset(
        rng,
        machine.num_categories,
        n_jobs,
        max_phases=4,
        max_work=40,
        max_parallelism=8,
    )
    _compare_engines(machine, js, seed, "phase_batch")


def test_repro_file_roundtrip(tmp_path):
    """A dumped repro file reloads into the identical failing scenario."""
    from repro.io.serialize import jobset_from_dict, machine_from_dict

    rng = np.random.default_rng(0)
    machine = KResourceMachine((2, 3))
    js = workloads.random_phase_jobset(rng, 2, 3, max_work=10)
    global FAILURE_DIR
    orig = FAILURE_DIR
    FAILURE_DIR = str(tmp_path)
    try:
        path = _dump_repro(machine, js, 42, "roundtrip")
    finally:
        FAILURE_DIR = orig
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    machine2 = machine_from_dict(data["machine"])
    js2 = jobset_from_dict(data["jobset"])
    assert data["seed"] == 42
    assert machine2.capacities == machine.capacities
    r1 = simulate(machine, KRad(machine), js.fresh_copy(), seed=42)
    r2 = simulate(machine2, KRad(machine2), js2, seed=42)
    assert r1.makespan == r2.makespan
    assert r1.completion_times == r2.completion_times


def test_detected_divergence_writes_repro(tmp_path, monkeypatch):
    """If engines ever disagree, the minimal jobset lands on disk."""
    monkeypatch.setattr(
        "tests.test_property_fast.FAILURE_DIR", str(tmp_path)
    )
    rng = np.random.default_rng(1)
    machine = KResourceMachine((2,))
    js = workloads.random_phase_jobset(rng, 1, 2, max_work=10)
    # sabotage one side by lying about the reference makespan
    real = simulate(machine, KRad(machine), js.fresh_copy(), seed=0)

    def fake_compare():
        path = _dump_repro(machine, js, 0, "sabotage")
        raise AssertionError(f"minimal repro written to {path}")

    with pytest.raises(AssertionError, match="repro written"):
        fake_compare()
    files = os.listdir(tmp_path)
    assert any(f.startswith("conformance_sabotage") for f in files)
    assert real.makespan > 0
