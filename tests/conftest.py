"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import KResourceMachine, homogeneous_machine


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests that need different streams spawn children."""
    return np.random.default_rng(12345)


@pytest.fixture
def machine2() -> KResourceMachine:
    """A small 2-category machine (4 cpu, 2 io)."""
    return KResourceMachine((4, 2), names=("cpu", "io"))


@pytest.fixture
def machine3() -> KResourceMachine:
    """A 3-category machine (4 cpu, 2 vector, 8 io)."""
    return KResourceMachine((4, 2, 8), names=("cpu", "vector", "io"))


@pytest.fixture
def machine1() -> KResourceMachine:
    """A homogeneous 4-processor machine."""
    return homogeneous_machine(4)
