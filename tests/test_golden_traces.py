"""Golden-trace corpus: canonical scenarios pinned step by step.

Each scenario's recorded schedule is reduced to per-step SHA-256 digests
(:meth:`repro.sim.trace.Trace.step_digests`) committed under
``tests/golden/``.  The guard re-runs the scenario on **both** engines
and compares against the stored digests, so any behavioural drift —
reference regression or fast-engine divergence — is pinned to the first
differing step rather than a vague end-to-end mismatch.

Regenerate after an *intentional* behaviour change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py
"""

import json
import os

import numpy as np
import pytest

from repro.dag.builders import figure1_job
from repro.dag.lowerbound import figure3_instance
from repro.jobs import JobSet, workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import ENGINE_NAMES, simulate

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def _fig1():
    machine = KResourceMachine((2, 2, 1))
    jobset = JobSet.from_dags([figure1_job()])
    return machine, jobset


def _fig3():
    caps = (2, 3)
    machine = KResourceMachine(caps)
    inst = figure3_instance(2, caps)
    jobset = JobSet.from_dags(inst.dags)
    return machine, jobset


def _thm3_cell():
    """One cell of the THM3 makespan sweep: phase backend, batched."""
    machine = KResourceMachine((4, 2))
    rng = np.random.default_rng(0)
    jobset = workloads.random_phase_jobset(rng, 2, 16, max_work=30)
    return machine, jobset


def _thm5_cell():
    """One cell of the THM5 light-workload response-time sweep."""
    machine = KResourceMachine((6, 4))
    rng = np.random.default_rng(0)
    jobset = workloads.light_phase_jobset(rng, machine, 4)
    return machine, jobset


SCENARIOS = {
    "fig1": _fig1,
    "fig3": _fig3,
    "thm3_cell": _thm3_cell,
    "thm5_cell": _thm5_cell,
}


def _run(name, engine):
    machine, jobset = SCENARIOS[name]()
    result = simulate(
        machine,
        KRad(machine),
        jobset,
        seed=0,
        record_trace=True,
        engine=engine,
    )
    return {
        "scenario": name,
        "makespan": result.makespan,
        "num_steps": len(result.trace.steps),
        "step_digests": result.trace.step_digests(),
        "content_digest": result.trace.content_digest(),
    }


def _golden_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.json")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_golden_trace(name, engine):
    payload = _run(name, engine)
    path = _golden_path(name)
    if REGEN and engine == "reference":
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    with open(path, encoding="utf-8") as fh:
        golden = json.load(fh)
    assert payload["makespan"] == golden["makespan"], (
        f"{name}/{engine}: makespan {payload['makespan']} != golden "
        f"{golden['makespan']}"
    )
    for i, (got, want) in enumerate(
        zip(payload["step_digests"], golden["step_digests"])
    ):
        assert got == want, (
            f"{name}/{engine}: first divergence from the golden trace at "
            f"step index {i} ({got[:12]} != {want[:12]})"
        )
    assert payload["num_steps"] == golden["num_steps"]
    assert payload["content_digest"] == golden["content_digest"]


def test_golden_corpus_complete():
    """Every scenario has a committed golden file (catches regen skips)."""
    missing = [
        name
        for name in SCENARIOS
        if not os.path.exists(_golden_path(name))
    ]
    assert not missing, (
        f"golden files missing for {missing}; run with "
        "REPRO_REGEN_GOLDEN=1 to create them"
    )
