"""Unit tests for execution-order policies."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.jobs.policies import (
    CP_FIRST,
    CP_LAST,
    FIFO,
    LIFO,
    RandomOrder,
    policy_by_name,
)


@pytest.fixture
def depth():
    # task id -> remaining critical path
    return np.asarray([5, 1, 3, 2, 4])


class TestFifoLifo:
    def test_fifo_takes_front(self):
        chosen, remaining = FIFO.select([3, 1, 4, 1], 2, None, None)
        assert chosen == [3, 1]
        assert remaining == [4, 1]

    def test_lifo_takes_back_newest_first(self):
        chosen, remaining = LIFO.select([3, 1, 4, 2], 2, None, None)
        assert chosen == [2, 4]
        assert remaining == [3, 1]

    def test_zero_count(self):
        assert FIFO.select([1, 2], 0, None, None) == ([], [1, 2])
        assert LIFO.select([1, 2], 0, None, None) == ([], [1, 2])

    def test_overdraw_rejected(self):
        with pytest.raises(ScheduleError):
            FIFO.select([1], 2, None, None)


class TestCriticalPath:
    def test_cp_first_picks_deepest(self, depth):
        chosen, remaining = CP_FIRST.select([0, 1, 2, 3, 4], 2, depth, None)
        assert chosen == [0, 4]  # depths 5 and 4
        assert remaining == [1, 2, 3]

    def test_cp_last_picks_shallowest(self, depth):
        chosen, remaining = CP_LAST.select([0, 1, 2, 3, 4], 2, depth, None)
        assert chosen == [1, 3]  # depths 1 and 2
        assert remaining == [0, 2, 4]

    def test_tie_break_on_id(self):
        depth = np.asarray([2, 2, 2])
        chosen, _ = CP_FIRST.select([2, 0, 1], 2, depth, None)
        assert chosen == [0, 1]

    def test_remaining_preserves_order(self, depth):
        _, remaining = CP_LAST.select([4, 2, 0, 1, 3], 2, depth, None)
        assert remaining == [4, 2, 0]

    def test_full_take_shortcut(self, depth):
        chosen, remaining = CP_FIRST.select([1, 0], 2, depth, None)
        assert chosen == [1, 0]
        assert remaining == []

    def test_requires_priority(self):
        with pytest.raises(ScheduleError):
            CP_FIRST.select([0, 1], 1, None, None)

    def test_needs_priority_flag(self):
        assert CP_FIRST.needs_priority and CP_LAST.needs_priority
        assert not FIFO.needs_priority and not LIFO.needs_priority


class TestRandom:
    def test_requires_rng(self):
        with pytest.raises(ScheduleError):
            RandomOrder().select([1, 2], 1, None, None)

    def test_partition_is_exact(self):
        rng = np.random.default_rng(0)
        ready = list(range(10))
        chosen, remaining = RandomOrder().select(ready, 4, None, rng)
        assert len(chosen) == 4
        assert sorted(chosen + remaining) == ready

    def test_deterministic_given_seed(self):
        r1 = RandomOrder().select(list(range(8)), 3, None, np.random.default_rng(5))
        r2 = RandomOrder().select(list(range(8)), 3, None, np.random.default_rng(5))
        assert r1 == r2

    def test_zero_count(self):
        rng = np.random.default_rng(0)
        assert RandomOrder().select([1], 0, None, rng) == ([], [1])


class TestRegistry:
    def test_lookup(self):
        assert policy_by_name("fifo") is FIFO
        assert policy_by_name("cp-last") is CP_LAST

    def test_unknown_name(self):
        with pytest.raises(ScheduleError):
            policy_by_name("nope")
