"""Unit tests for the DagJob runtime."""

import numpy as np
import pytest

from repro.dag import KDag, builders
from repro.errors import ScheduleError
from repro.jobs import CP_FIRST, FIFO, DagJob


def make_chain(k=2, cats=(0, 1, 0)):
    return DagJob(builders.chain(list(cats), k), job_id=1)


class TestDesires:
    def test_initial_desire_is_sources(self):
        dag = builders.independent_tasks([3, 2])
        job = DagJob(dag)
        assert job.desire_vector().tolist() == [3, 2]
        assert job.desire(0) == 3
        assert job.is_active(0) and job.is_active(1)

    def test_chain_has_unit_desire(self):
        job = make_chain()
        assert job.desire_vector().tolist() == [1, 0]
        assert not job.is_active(1)

    def test_uncompleted_job_desires_something(self):
        job = make_chain()
        while not job.is_complete:
            d = job.desire_vector()
            assert d.sum() >= 1
            job.execute(d, FIFO)
        assert job.desire_vector().sum() == 0


class TestExecute:
    def test_chain_executes_in_order(self):
        job = make_chain(2, (0, 1, 0))
        out = job.execute(np.asarray([1, 0]), FIFO)
        assert out == [[0], []]
        out = job.execute(np.asarray([0, 1]), FIFO)
        assert out == [[], [1]]
        out = job.execute(np.asarray([1, 0]), FIFO)
        assert out == [[2], []]
        assert job.is_complete

    def test_successor_not_ready_same_step(self):
        job = make_chain(1, (0, 0))
        job.execute(np.asarray([1]), FIFO)
        # the successor becomes ready only for the next step, desire is 1 now
        assert job.desire(0) == 1

    def test_over_allotment_rejected(self):
        job = make_chain()
        with pytest.raises(ScheduleError):
            job.execute(np.asarray([2, 0]), FIFO)

    def test_negative_allotment_rejected(self):
        job = make_chain()
        with pytest.raises(ScheduleError):
            job.execute(np.asarray([-1, 0]), FIFO)

    def test_wrong_length_rejected(self):
        job = make_chain()
        with pytest.raises(ScheduleError):
            job.execute(np.asarray([1]), FIFO)

    def test_parallel_execution_counts(self):
        dag = builders.independent_tasks([4])
        job = DagJob(dag)
        out = job.execute(np.asarray([3]), FIFO)
        assert len(out[0]) == 3
        assert job.desire(0) == 1

    def test_fork_join_unfolds(self):
        dag = builders.fork_join(3, 0, 1)
        job = DagJob(dag)
        assert job.desire(0) == 1  # fork
        job.execute(np.asarray([1]), FIFO)
        assert job.desire(0) == 3  # bodies
        job.execute(np.asarray([3]), FIFO)
        assert job.desire(0) == 1  # join
        job.execute(np.asarray([1]), FIFO)
        assert job.is_complete

    def test_execute_with_cp_policy_uses_depth(self):
        # diamond: two branches, one deeper
        dag = KDag(1)
        a = dag.add_vertex(0)
        b = dag.add_vertex(0)   # shallow branch
        c = dag.add_vertex(0)   # deep branch start
        d = dag.add_vertex(0)
        dag.add_edges([(a, b), (a, c), (c, d)])
        job = DagJob(dag)
        job.execute(np.asarray([1]), CP_FIRST)
        out = job.execute(np.asarray([1]), CP_FIRST)
        assert out == [[c]]  # deeper branch first


class TestAnalysisSurface:
    def test_static_quantities(self):
        dag = builders.pipeline([0, 1], items=3, num_categories=2)
        job = DagJob(dag)
        assert job.work_vector().tolist() == [3, 3]
        assert job.work(1) == 3
        assert job.total_work() == 6
        assert job.span() == dag.span()
        assert job.num_categories == 2

    def test_remaining_work_decreases(self):
        job = make_chain(1, (0, 0, 0))
        assert job.remaining_work_vector().tolist() == [3]
        job.execute(np.asarray([1]), FIFO)
        assert job.remaining_work_vector().tolist() == [2]

    def test_remaining_span_decreases_on_satisfied_steps(self):
        job = make_chain(1, (0, 0, 0))
        spans = [job.remaining_span()]
        while not job.is_complete:
            job.execute(job.desire_vector(), FIFO)
            spans.append(job.remaining_span())
        assert spans == [3, 2, 1, 0]

    def test_ready_tasks_view(self):
        dag = builders.independent_tasks([2])
        job = DagJob(dag)
        assert job.ready_tasks(0) == (0, 1)

    def test_executed_mask(self):
        job = make_chain(1, (0, 0))
        job.execute(np.asarray([1]), FIFO)
        assert job.executed_mask().tolist() == [True, False]


class TestFreshCopy:
    def test_copy_resets_state(self):
        job = make_chain(1, (0, 0))
        job.execute(np.asarray([1]), FIFO)
        clone = job.fresh_copy()
        assert clone.job_id == job.job_id
        assert clone.desire(0) == 1
        assert clone.remaining_work_vector().tolist() == [2]
        assert not clone.is_complete

    def test_copy_shares_dag(self):
        job = make_chain()
        assert job.fresh_copy().dag is job.dag

    def test_response_time_requires_completion(self):
        job = make_chain()
        with pytest.raises(ScheduleError):
            job.response_time()

    def test_negative_release_rejected(self):
        with pytest.raises(ScheduleError):
            DagJob(builders.independent_tasks([1]), release_time=-1)
