"""Unit tests for the RAD per-category state machine (Figure 2 semantics)."""

import pytest

from repro.schedulers.rad import RadCategoryState


def make_state(n_jobs):
    st = RadCategoryState()
    st.register(range(n_jobs))
    return st


class TestDeqRegime:
    def test_few_jobs_get_deq(self):
        st = make_state(2)
        alloc = st.allocate({0: 3, 1: 1}, capacity=4)
        assert alloc == {0: 3, 1: 1}
        assert not st.in_rr_cycle()

    def test_inactive_jobs_ignored(self):
        st = make_state(3)
        alloc = st.allocate({0: 2, 1: 0, 2: 2}, capacity=4)
        assert alloc == {0: 2, 2: 2}

    def test_no_active_jobs(self):
        st = make_state(2)
        assert st.allocate({0: 0, 1: 0}, capacity=4) == {}


class TestRoundRobinCycle:
    def test_cycle_opens_when_active_exceeds_capacity(self):
        st = make_state(5)
        alloc = st.allocate({i: 1 for i in range(5)}, capacity=2)
        assert alloc == {0: 1, 1: 1}
        assert st.in_rr_cycle()
        assert st.marked_jobs == {0, 1}

    def test_unmarked_jobs_served_next(self):
        st = make_state(5)
        st.allocate({i: 1 for i in range(5)}, capacity=2)
        alloc = st.allocate({i: 1 for i in range(5)}, capacity=2)
        assert alloc == {2: 1, 3: 1}

    def test_cycle_closes_with_deq_and_unmark(self):
        st = make_state(5)
        desires = {i: 1 for i in range(5)}
        st.allocate(desires, 2)  # 0,1
        st.allocate(desires, 2)  # 2,3
        alloc = st.allocate(desires, 2)  # 4 unmarked; recycle one marked job
        assert alloc[4] == 1
        assert sum(alloc.values()) == 2  # one marked job recycled via DEQ
        assert not st.in_rr_cycle()  # cycle closed, all unmarked

    def test_service_is_fifo_across_cycles(self):
        st = make_state(4)
        desires = {i: 1 for i in range(4)}
        first = st.allocate(desires, 2)
        second = st.allocate(desires, 2)
        # cycle closed after second step (all 4 served)
        assert not st.in_rr_cycle()
        third = st.allocate(desires, 2)
        # next cycle serves jobs in the order they were served before
        assert set(first) == {0, 1}
        assert set(second) == {2, 3}
        assert set(third) == {0, 1}

    def test_newcomer_joins_current_cycle_unmarked(self):
        st = make_state(3)
        desires = {0: 1, 1: 1, 2: 1}
        st.allocate(desires, 2)  # serve 0,1; mark
        st.register([99])  # arrives mid-cycle
        desires = {0: 1, 1: 1, 2: 1, 99: 1}
        alloc = st.allocate(desires, 2)
        # 2 and 99 are the unmarked ones
        assert set(alloc) == {2, 99}

    def test_completed_job_pruned(self):
        st = make_state(3)
        st.allocate({0: 1, 1: 1, 2: 1}, 2)
        st.prune({0, 2})  # job 1 completed
        assert 1 not in st.queue_order
        assert 1 not in st.marked_jobs

    def test_marks_survive_temporary_inactivity(self):
        st = make_state(5)
        desires = {i: 1 for i in range(5)}
        st.allocate(desires, 2)  # 0,1 marked, cycle open
        # job 0 goes inactive for a step; the cycle stays open (|Q|=3 > 2)
        # so job 0 remains marked, exactly as in the paper where "unmark
        # all" only happens when a cycle completes
        st.allocate({0: 0, 1: 1, 2: 1, 3: 1, 4: 1}, 2)
        assert 0 in st.marked_jobs
        assert st.in_rr_cycle()

    def test_unmark_all_clears_inactive_jobs_too(self):
        st = make_state(4)
        desires = {i: 1 for i in range(4)}
        st.allocate(desires, 2)  # 0,1 marked
        # 0 inactive AND cycle closes (|Q| = 2 <= 2): paper unmarks ALL jobs
        st.allocate({0: 0, 1: 1, 2: 1, 3: 1}, 2)
        assert st.marked_jobs == frozenset()

    def test_capacity_one_degenerate_rr(self):
        st = make_state(3)
        desires = {i: 5 for i in range(3)}
        served = []
        for _ in range(3):
            alloc = st.allocate(desires, 1)
            assert sum(alloc.values()) == 1
            served.extend(alloc)
        assert sorted(served) == [0, 1, 2]

    def test_desire_aware_deq_on_cycle_close(self):
        st = make_state(2)
        # capacity 4, two active jobs -> straight DEQ with full desires
        alloc = st.allocate({0: 3, 1: 9}, 4)
        assert alloc[0] == 3 or alloc[0] == 2
        assert sum(alloc.values()) == 4


class TestRegisterPrune:
    def test_register_is_idempotent(self):
        st = RadCategoryState()
        st.register([1, 2])
        st.register([2, 1])
        assert st.queue_order == (1, 2)

    def test_prune_noop_when_all_alive(self):
        st = make_state(3)
        st.prune({0, 1, 2})
        assert st.queue_order == (0, 1, 2)
