"""Unit and property tests for DAG analysis (profiles, stats)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import KDag, builders, dag_stats, parallelism_profile
from repro.jobs import DagJob, FIFO


class TestParallelismProfile:
    def test_chain_profile_is_unit(self):
        dag = builders.chain([0, 1, 0], 2)
        profile = parallelism_profile(dag)
        assert profile.tolist() == [[1, 0], [0, 1], [1, 0]]

    def test_independent_tasks_profile(self):
        dag = builders.independent_tasks([3, 2])
        assert parallelism_profile(dag).tolist() == [[3, 2]]

    def test_empty_dag(self):
        assert parallelism_profile(KDag(2)).shape == (0, 2)

    def test_rows_equal_span_and_sum_to_work(self):
        rng = np.random.default_rng(0)
        dag = builders.layered_random(5, 6, 3, rng)
        profile = parallelism_profile(dag)
        assert profile.shape == (dag.span(), 3)
        assert profile.sum(axis=0).tolist() == dag.work_vector().tolist()

    def test_matches_greedy_execution(self):
        """The profile equals the desire trajectory under full allotment."""
        rng = np.random.default_rng(1)
        dag = builders.layered_random(4, 5, 2, rng)
        job = DagJob(dag)
        observed = []
        while not job.is_complete:
            d = job.desire_vector()
            observed.append(d.tolist())
            job.execute(d, FIFO)
        assert observed == parallelism_profile(dag).tolist()

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_profile_invariants_random(self, seed):
        rng = np.random.default_rng(seed)
        dag = builders.layered_random(4, 4, 2, rng)
        profile = parallelism_profile(dag)
        # every step of the infinite-processor schedule runs something
        assert (profile.sum(axis=1) >= 1).all()


class TestDagStats:
    def test_figure1_stats(self):
        stats = dag_stats(builders.figure1_job())
        assert stats.num_vertices == 8
        assert stats.num_edges == 8
        assert stats.work == (3, 3, 2)
        assert stats.span == 4
        assert stats.num_sources == 1
        assert stats.num_sinks == 2
        assert stats.average_parallelism == (3 / 4, 3 / 4, 2 / 4)
        assert max(stats.max_parallelism) >= 1

    def test_empty_dag_stats(self):
        stats = dag_stats(KDag(2))
        assert stats.span == 0
        assert stats.average_parallelism == (0.0, 0.0)
        assert stats.max_parallelism == (0, 0)

    def test_str_contains_key_fields(self):
        s = str(dag_stats(builders.figure1_job()))
        assert "|V|=8" in s and "span=4" in s


class TestRenderProfile:
    def test_render(self):
        from repro.viz import render_profile

        profile = parallelism_profile(builders.figure1_job())
        out = render_profile(profile, category_names=("cpu", "vec", "io"))
        assert "cpu" in out and "peak" in out

    def test_empty(self):
        from repro.viz import render_profile

        assert "empty" in render_profile(np.zeros((0, 2)))
