"""Tests for the markdown export helpers."""

import pytest

from repro.analysis import markdown_table, report_to_markdown
from repro.experiments.common import ExperimentReport


class TestMarkdownTable:
    def test_basic(self):
        out = markdown_table(["a", "b"], [[1, 2.5], [3, 0.125]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.500 |" in out

    def test_pipe_escaping(self):
        out = markdown_table(["x"], [["a|b"]])
        assert "a\\|b" in out

    def test_booleans(self):
        out = markdown_table(["ok"], [[True], [False]])
        assert "| yes |" in out and "| no |" in out

    def test_width_checked(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [[1, 2]])


class TestReportToMarkdown:
    def _report(self, passed=True):
        return ExperimentReport(
            experiment_id="X1",
            title="demo",
            headers=["k", "v"],
            rows=[["a", 1]],
            checks={"something": passed},
            notes=["a note"],
            text="ignored in markdown",
        )

    def test_contains_sections(self):
        md = report_to_markdown(self._report())
        assert md.startswith("## X1 — demo")
        assert "| k | v |" in md
        assert "*a note*" in md
        assert "✅ something" in md
        assert "**PASSED**" in md

    def test_failed_report(self):
        md = report_to_markdown(self._report(passed=False))
        assert "❌ something" in md
        assert "**FAILED**" in md
