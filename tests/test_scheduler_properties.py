"""Hypothesis properties for the non-clairvoyant baseline schedulers.

Two contracts, searched rather than hand-picked:

* **Feasibility** — for *any* desire matrix (including all-zero rows and
  desires far above capacity), ``allocate`` returns allotments that pass
  :func:`~repro.schedulers.base.check_allotments` — non-negative, at
  most the desire, per-category totals within ``P_alpha``.
* **Determinism** — two fresh instances fed the identical observation
  sequence produce identical allotments, and two full scenario replays
  under a fixed seed hash to the identical schedule digest.  This is
  the property the arena leaderboard's reproducibility claim rests on.

The arena tournament already proves feasibility along *realized*
trajectories (``replay(validate=True)``); here Hypothesis feeds
adversarial desire matrices no simulation would produce.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.machine import KResourceMachine
from repro.schedulers import Scheduler
from repro.schedulers.base import check_allotments
from repro.workloads.replay import replay
from repro.workloads.scenarios import SCENARIOS, build_trace

#: the non-clairvoyant baselines every arena run races
POLICIES = ("equi", "greedy-fcfs", "k-rr", "setf", "list-sched")

CERTIFIED = sorted(n for n, s in SCENARIOS.items() if s.certified)

SETTINGS = settings(max_examples=25, deadline=None)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
policy_names = st.sampled_from(POLICIES)


@st.composite
def machines(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    caps = draw(
        st.lists(
            st.integers(min_value=1, max_value=8), min_size=k, max_size=k
        )
    )
    return KResourceMachine(tuple(caps))


@st.composite
def desire_sequences(draw, machine):
    """A short run of per-step desire mappings over a stable job set."""
    k = machine.num_categories
    num_jobs = draw(st.integers(min_value=0, max_value=6))
    steps = draw(st.integers(min_value=1, max_value=4))
    seq = []
    for _ in range(steps):
        desires = {}
        for job_id in range(num_jobs):
            row = draw(
                st.lists(
                    st.integers(min_value=0, max_value=12),
                    min_size=k,
                    max_size=k,
                )
            )
            desires[job_id] = np.asarray(row, dtype=np.int64)
        seq.append(desires)
    return seq


class TestAllocateFeasible:
    @SETTINGS
    @given(data=st.data(), name=policy_names)
    def test_any_desires_yield_feasible_allotments(self, data, name):
        machine = data.draw(machines())
        seq = data.draw(desire_sequences(machine))
        sched = Scheduler.from_name(name)
        sched.reset(machine)
        for t, desires in enumerate(seq, start=1):
            allot = sched.allocate(t, desires)
            check_allotments(machine, desires, allot)

    @SETTINGS
    @given(data=st.data(), name=policy_names)
    def test_identical_observations_identical_allotments(self, data, name):
        machine = data.draw(machines())
        seq = data.draw(desire_sequences(machine))
        runs = []
        for _ in range(2):
            sched = Scheduler.from_name(name)
            sched.reset(machine)
            out = []
            for t, desires in enumerate(seq, start=1):
                allot = sched.allocate(t, desires)
                out.append(
                    {j: tuple(a.tolist()) for j, a in allot.items()}
                )
            runs.append(out)
        assert runs[0] == runs[1]


class TestScenarioReplayDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(
        name=policy_names,
        scenario=st.sampled_from(CERTIFIED),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_replay_digest_is_seed_deterministic(
        self, name, scenario, seed
    ):
        trace = build_trace(scenario, seed=seed, num_jobs=5)
        first = replay(
            trace, engine="fast", scheduler=name, validate=True
        )
        second = replay(
            trace, engine="fast", scheduler=name, validate=True
        )
        assert first.schedule_digest == second.schedule_digest
        assert first.state_digest == second.state_digest
        assert first.makespan == second.makespan
