"""Unit tests for the PhaseJob backend."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.jobs import Phase, PhaseJob


class TestPhase:
    def test_basic(self):
        ph = Phase([6, 0], [2, 1])
        assert ph.span() == 3
        assert ph.num_categories == 2

    def test_parallelism_normalised_where_no_work(self):
        ph = Phase([4, 0], [2, 0])
        assert ph.parallelism.tolist() == [2, 1]

    def test_span_ceil(self):
        assert Phase([5], [2]).span() == 3

    def test_validation(self):
        with pytest.raises(WorkloadError):
            Phase([1], [1, 1])  # shape mismatch
        with pytest.raises(WorkloadError):
            Phase([-1], [1])
        with pytest.raises(WorkloadError):
            Phase([3], [0])  # parallelism 0 with work
        with pytest.raises(WorkloadError):
            Phase([0, 0], [1, 1])  # empty phase


class TestPhaseJob:
    def test_requires_phases(self):
        with pytest.raises(WorkloadError):
            PhaseJob([])

    def test_consistent_k_required(self):
        with pytest.raises(WorkloadError):
            PhaseJob([Phase([1], [1]), Phase([1, 1], [1, 1])])

    def test_static_aggregates(self):
        job = PhaseJob([Phase([6, 0], [2, 1]), Phase([0, 4], [1, 4])])
        assert job.work_vector().tolist() == [6, 4]
        assert job.span() == 3 + 1

    def test_desire_follows_phase(self):
        job = PhaseJob([Phase([6, 0], [2, 1]), Phase([0, 4], [1, 4])])
        assert job.desire_vector().tolist() == [2, 0]

    def test_desire_caps_at_remaining(self):
        job = PhaseJob([Phase([3], [2])])
        job.execute(np.asarray([2]), None)
        assert job.desire_vector().tolist() == [1]

    def test_execution_advances_phases(self):
        job = PhaseJob([Phase([2], [2]), Phase([1], [1])])
        assert job.current_phase_index == 0
        job.execute(np.asarray([2]), None)
        assert job.current_phase_index == 1
        job.execute(np.asarray([1]), None)
        assert job.is_complete
        assert job.desire_vector().tolist() == [0]

    def test_full_allotment_reduces_span_by_one(self):
        job = PhaseJob(
            [Phase([4, 2], [2, 2]), Phase([3, 0], [3, 1])]
        )
        spans = [job.remaining_span()]
        while not job.is_complete:
            job.execute(job.desire_vector(), None)
            spans.append(job.remaining_span())
        assert spans == list(range(spans[0], -1, -1))

    def test_partial_allotment_slower(self):
        job = PhaseJob([Phase([4], [4])])
        job.execute(np.asarray([2]), None)
        assert not job.is_complete
        assert job.remaining_work_vector().tolist() == [2]

    def test_over_allotment_rejected(self):
        from repro.errors import ScheduleError

        job = PhaseJob([Phase([4], [2])])
        with pytest.raises(ScheduleError):
            job.execute(np.asarray([3]), None)

    def test_executed_ids_unique_for_trace(self):
        job = PhaseJob([Phase([4], [2])])
        a = job.execute(np.asarray([2]), None)
        b = job.execute(np.asarray([2]), None)
        ids = a[0] + b[0]
        assert len(set(ids)) == 4

    def test_remaining_work_includes_future_phases(self):
        job = PhaseJob([Phase([2], [1]), Phase([5], [1])])
        assert job.remaining_work_vector().tolist() == [7]
        job.execute(np.asarray([1]), None)
        assert job.remaining_work_vector().tolist() == [6]

    def test_fresh_copy_resets(self):
        job = PhaseJob([Phase([2], [2])], job_id=3, release_time=5)
        job.execute(np.asarray([2]), None)
        assert job.is_complete
        clone = job.fresh_copy()
        assert not clone.is_complete
        assert clone.job_id == 3 and clone.release_time == 5

    def test_phases_property(self):
        phases = [Phase([1], [1])]
        assert PhaseJob(phases).phases == tuple(phases)
