"""Property tests for every release-time generator.

The release-time contract (shared by :mod:`repro.jobs.workloads` and
:mod:`repro.workloads.arrivals`): given any seed and any valid
parameters, a generator returns a sorted, non-negative integer list of
exactly ``num_jobs`` arrivals whose first element is 0, and
``num_jobs=0`` returns ``[]``.  Hypothesis explores the parameter space
so the edge cases (single job, empty draw, tiny rates, zero gaps/widths)
are covered by search rather than by hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.arrivals import (
    bursty_release_times,
    diurnal_release_times,
    flash_crowd_release_times,
    poisson_release_times,
    uniform_release_times,
)

SETTINGS = settings(max_examples=25, deadline=None)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
counts = st.integers(min_value=0, max_value=60)


def check_contract(times, num_jobs):
    assert isinstance(times, list)
    assert len(times) == num_jobs
    assert all(isinstance(t, int) for t in times)
    if num_jobs == 0:
        assert times == []
        return
    assert times[0] == 0
    assert times == sorted(times)
    assert all(t >= 0 for t in times)


class TestPoisson:
    @SETTINGS
    @given(seed=seeds, n=counts, rate=st.floats(0.01, 10.0))
    def test_contract(self, seed, n, rate):
        rng = np.random.default_rng(seed)
        check_contract(poisson_release_times(rng, n, rate=rate), n)


class TestUniform:
    @SETTINGS
    @given(seed=seeds, n=counts, horizon=st.integers(0, 200))
    def test_contract(self, seed, n, horizon):
        rng = np.random.default_rng(seed)
        times = uniform_release_times(rng, n, horizon=horizon)
        check_contract(times, n)
        if times:
            assert max(times) <= horizon


class TestBursty:
    @SETTINGS
    @given(
        seed=seeds,
        n=counts,
        burst_size=st.integers(1, 20),
        gap=st.integers(0, 100),
    )
    def test_contract(self, seed, n, burst_size, gap):
        rng = np.random.default_rng(seed)
        times = bursty_release_times(
            rng, n, burst_size=burst_size, gap=gap
        )
        check_contract(times, n)
        if gap == 0 and n:
            assert set(times) == {0}


class TestDiurnal:
    @SETTINGS
    @given(
        seed=seeds,
        n=counts,
        period=st.integers(1, 500),
        rates=st.tuples(
            st.floats(0.01, 1.0), st.floats(0.0, 1.0)
        ),
    )
    def test_contract(self, seed, n, period, rates):
        peak, frac = rates
        trough = max(1e-3, peak * max(frac, 1e-3))
        rng = np.random.default_rng(seed)
        times = diurnal_release_times(
            rng, n, period=period, peak_rate=peak, trough_rate=trough
        )
        check_contract(times, n)


class TestFlashCrowd:
    @SETTINGS
    @given(
        seed=seeds,
        n=counts,
        base_rate=st.floats(0.01, 2.0),
        crowd_fraction=st.floats(0.0, 1.0),
        crowd_width=st.integers(0, 10),
    )
    def test_contract(self, seed, n, base_rate, crowd_fraction, crowd_width):
        rng = np.random.default_rng(seed)
        times = flash_crowd_release_times(
            rng,
            n,
            base_rate=base_rate,
            crowd_fraction=crowd_fraction,
            crowd_width=crowd_width,
        )
        check_contract(times, n)

    @SETTINGS
    @given(seed=seeds, n=st.integers(4, 40))
    def test_crowd_concentration(self, seed, n):
        rng = np.random.default_rng(seed)
        times = flash_crowd_release_times(
            rng, n, base_rate=0.05, crowd_fraction=1.0, crowd_width=0
        )
        # the whole workload co-arrives when it is all crowd, width 0
        assert len(set(times)) == 1


@pytest.mark.parametrize(
    "call",
    [
        lambda rng: poisson_release_times(rng, -1, rate=1.0),
        lambda rng: uniform_release_times(rng, -2, horizon=5),
        lambda rng: bursty_release_times(rng, -3),
        lambda rng: diurnal_release_times(rng, -1),
        lambda rng: flash_crowd_release_times(rng, -1),
    ],
)
def test_negative_counts_rejected(call):
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        call(np.random.default_rng(0))
