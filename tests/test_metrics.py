"""Tests for derived metrics (slowdowns, summaries) and the differential
property that K-RAD equals K-DEQ under light workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import builders
from repro.errors import ReproError
from repro.jobs import JobSet, workloads
from repro.machine import KResourceMachine
from repro.schedulers import KDeq, KRad
from repro.sim import simulate, slowdowns, summarize_result


class TestSlowdowns:
    def test_isolated_job_has_slowdown_one(self, machine2):
        js = JobSet.from_dags([builders.chain([0, 1, 0], 2)])
        r = simulate(machine2, KRad(), js)
        assert slowdowns(r, js) == {0: 1.0}

    def test_contended_jobs_stretch(self):
        machine = KResourceMachine((1,))
        js = JobSet.from_dags(
            [builders.chain([0] * 4, 1), builders.chain([0] * 4, 1)]
        )
        r = simulate(machine, KRad(), js)
        slow = slowdowns(r, js)
        assert max(slow.values()) > 1.0

    def test_job_set_mismatch_rejected(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 3)
        r = simulate(machine2, KRad(), js)
        other = JobSet.from_dags([builders.chain([0], 2)])
        with pytest.raises(ReproError):
            slowdowns(r, other)

    def test_zero_span_job_rejected(self, machine2, rng):
        """A degenerate job whose span is 0 would divide by zero; the
        guard must name the offending job instead.  PhaseJob refuses
        zero work at construction, so the case is driven through stubs
        mimicking a finished result."""

        class _ZeroSpanJob:
            job_id = 7

            def span(self):
                return 0

        class _Result:
            completion_times = {7: 3}

            def response_times(self):
                return {7: 3}

        class _JobSet:
            def __iter__(self):
                return iter([_ZeroSpanJob()])

        with pytest.raises(ReproError, match="non-positive span"):
            slowdowns(_Result(), _JobSet())


class TestSummarizeResult:
    def test_summary_fields(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 8)
        r = simulate(machine2, KRad(), js)
        s = summarize_result(r, js)
        assert s.scheduler == "k-rad"
        assert s.makespan == r.makespan
        assert s.mean_response_time == pytest.approx(r.mean_response_time)
        assert (
            s.median_response_time
            <= s.p95_response_time
            <= s.max_response_time
        )
        assert s.mean_slowdown >= 1.0
        assert 0 < s.response_fairness <= 1.0
        assert len(s.utilization) == 2

    def test_as_row_matches_headers(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 4)
        s = summarize_result(simulate(machine2, KRad(), js), js)
        assert len(s.as_row()) == len(s.ROW_HEADERS)

    def test_empty_jobset_yields_zeros_not_nan(self, machine2):
        """An empty run has no response-time distribution; the summary
        must come back as zeros with vacuous fairness 1.0, without
        numpy's mean-of-empty-slice RuntimeWarning."""
        import warnings

        js = JobSet([], num_categories=2)
        r = simulate(machine2, KRad(), js)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            s = summarize_result(r, js)
        assert s.makespan == 0
        assert s.mean_response_time == 0.0
        assert s.p95_response_time == 0.0
        assert s.max_response_time == 0
        assert s.mean_slowdown == 0.0
        assert s.response_fairness == 1.0
        assert s.utilization == (0.0, 0.0)

    def test_all_jobs_lost_yields_zeros(self):
        """Every job killed with no retry budget: completions are empty
        even though the run executed steps — same zero-valued digest."""
        from repro.sim import JobKiller, RetryPolicy

        rng = np.random.default_rng(0)
        machine = KResourceMachine((4, 2))
        js = workloads.random_phase_jobset(rng, 2, 4, max_work=20)
        r = simulate(
            machine,
            KRad(),
            js,
            seed=0,
            fault_model=JobKiller(0.99, seed=1),
            retry_policy=RetryPolicy(max_attempts=1),
        )
        assert not r.completion_times and r.failed_jobs
        s = summarize_result(r, js)
        assert s.mean_response_time == 0.0
        assert s.max_slowdown == 0.0
        assert s.response_fairness == 1.0


class TestLightWorkloadEquivalence:
    """Under light workload K-RAD never opens a round-robin cycle, so it
    must behave *identically* to DEQ-only scheduling — a strong
    differential test of both implementations."""

    @given(st.integers(0, 2**31), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_krad_equals_kdeq_when_light(self, seed, n):
        machine = KResourceMachine((8, 8))
        rng = np.random.default_rng(seed)
        js = workloads.light_phase_jobset(rng, machine, min(n, 8))
        a = simulate(machine, KRad(), js)
        b = simulate(machine, KDeq(), js)
        assert a.makespan == b.makespan
        assert a.completion_times == b.completion_times

    def test_divergence_under_heavy_load_is_possible(self):
        """The equivalence is a light-load property, not an identity."""
        machine = KResourceMachine((2,))
        from repro.jobs import Phase, PhaseJob

        jobs = [
            PhaseJob([Phase([6], [2])], job_id=i) for i in range(5)
        ]
        js = JobSet(jobs)
        a = simulate(machine, KRad(), js)
        b = simulate(machine, KDeq(), js)
        # both complete all work; traces may differ in RR vs rotation order
        assert a.makespan >= 15 and b.makespan >= 15


class TestRobustnessMetrics:
    def _chain_js(self, *lengths):
        return JobSet.from_dags(
            [builders.chain([0] * n, 1) for n in lengths]
        )

    def test_healthy_run_all_zeros(self, rng):
        from repro.sim import summarize_robustness

        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 3, size_hint=10)
        s = summarize_robustness(simulate(machine, KRad(), js))
        assert s.total_wasted == 0
        assert s.wasted_fraction == 0.0
        assert s.total_retries == 0
        assert s.failed_jobs == 0
        assert s.stall_steps == 0
        assert s.completed_jobs == len(js)

    def test_wasted_and_goodput_after_kill(self):
        from repro.sim import RetryPolicy, summarize_robustness
        from repro.sim.faults import ScriptedKills

        machine = KResourceMachine((2,))
        js = self._chain_js(6)
        r = simulate(
            machine,
            KRad(),
            js,
            fault_model=ScriptedKills({3: [0]}),
            retry_policy=RetryPolicy(max_attempts=2, base_delay=1),
        )
        s = summarize_robustness(r)
        assert s.total_wasted == 3  # three chain steps discarded
        assert s.total_retries == 1
        assert s.max_retries_per_job == 1
        assert 0.0 < s.wasted_fraction < 1.0
        assert all(0.0 <= g <= 1.0 for g in s.goodput)

    def test_stalls_surface(self, rng):
        from repro.sim import summarize_robustness
        from repro.sim.faults import periodic_outage

        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 3, size_hint=12)
        r = simulate(
            machine,
            KRad(),
            js,
            capacity_schedule=periodic_outage(
                (4,), category=0, period=5, duration=2, degraded=0
            ),
        )
        s = summarize_robustness(r)
        assert s.stall_steps > 0
        assert s.longest_stall >= 1
        assert s.longest_stall <= s.stall_steps

    def test_as_row_matches_headers(self):
        from repro.sim import summarize_robustness

        machine = KResourceMachine((2,))
        js = self._chain_js(3)
        s = summarize_robustness(simulate(machine, KRad(), js))
        assert len(s.as_row()) == len(s.ROW_HEADERS)
