"""Tests for failure injection: capacity schedules, task failures, kills."""

import numpy as np
import pytest

from repro.errors import ScheduleError, SimulationError
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad, KRoundRobin
from repro.sim import RecordingScheduler, Simulator, simulate, validate_schedule
from repro.sim.faults import (
    CompositeFaultModel,
    JobKiller,
    RandomDegradation,
    ScriptedKills,
    TaskFailures,
    periodic_outage,
)


class TestPeriodicOutage:
    def test_schedule_shape(self):
        sched = periodic_outage(
            (8, 4), category=0, period=10, duration=3, degraded=2
        )
        assert sched(1) == (2, 4)
        assert sched(3) == (2, 4)
        assert sched(4) == (8, 4)
        assert sched(11) == (2, 4)  # next period

    def test_full_outage_allowed(self):
        sched = periodic_outage(
            (8, 4), category=1, period=6, duration=2, degraded=0
        )
        assert sched(1) == (8, 0)
        assert sched(3) == (8, 4)

    def test_validation(self):
        with pytest.raises(SimulationError):
            periodic_outage((4,), category=1, period=5, duration=1)
        with pytest.raises(SimulationError):
            periodic_outage((4,), category=0, period=5, duration=6)
        with pytest.raises(SimulationError):
            periodic_outage(
                (4,), category=0, period=5, duration=1, degraded=-1
            )
        with pytest.raises(SimulationError):
            periodic_outage(
                (4,), category=0, period=5, duration=1, degraded=5
            )


class TestRandomDegradation:
    def test_deterministic_in_t(self):
        d = RandomDegradation((8, 4), availability=0.5, seed=3)
        assert d(7) == d(7)
        # call order must not matter
        a = [d(t) for t in (5, 1, 9)]
        b = [d(t) for t in (9, 5, 1)]
        assert a == [b[1], b[2], b[0]]

    def test_can_reach_zero(self):
        d = RandomDegradation((2,), availability=0.01, seed=0)
        caps = [d(t)[0] for t in range(1, 50)]
        assert all(c >= 0 for c in caps)
        assert min(caps) == 0  # full outages do occur at 1% availability

    def test_floor_respected(self):
        d = RandomDegradation((2,), availability=0.01, seed=0, floor=1)
        assert all(d(t)[0] >= 1 for t in range(1, 50))

    def test_availability_validated(self):
        RandomDegradation((4,), availability=0.0)  # full outage: legal now
        with pytest.raises(SimulationError):
            RandomDegradation((4,), availability=-0.1)
        with pytest.raises(SimulationError):
            RandomDegradation((4,), availability=1.1)


class TestTaskFailures:
    def test_deterministic(self):
        executed = {0: [[1, 2, 3], []], 1: [[], [7]]}
        fm1 = TaskFailures(0.5, seed=9)
        fm2 = TaskFailures(0.5, seed=9)
        assert fm1.task_failures(4, executed) == fm2.task_failures(
            4, executed
        )

    def test_subset_of_executed(self):
        executed = {0: [[1, 2, 3], [5, 6]]}
        fm = TaskFailures(0.7, seed=1)
        failed = fm.task_failures(3, executed)
        for jid, per_cat in failed.items():
            for alpha, tasks in enumerate(per_cat):
                assert set(tasks) <= set(executed[jid][alpha])

    def test_rate_zero_fails_nothing(self):
        fm = TaskFailures(0.0)
        assert fm.task_failures(1, {0: [[1, 2], [3]]}) == {}

    def test_rate_validated(self):
        with pytest.raises(SimulationError):
            TaskFailures(1.0)
        with pytest.raises(SimulationError):
            TaskFailures(-0.1)


class TestKillModels:
    def test_scripted_kills(self):
        fm = ScriptedKills({3: [1, 2], 5: [0]})
        assert list(fm.job_kills(3, (0, 1, 2))) == [1, 2]
        assert list(fm.job_kills(3, (0,))) == []  # not alive: no-op
        assert list(fm.job_kills(4, (0, 1, 2))) == []

    def test_job_killer_deterministic(self):
        k1 = JobKiller(0.3, seed=5)
        k2 = JobKiller(0.3, seed=5)
        alive = (0, 1, 2, 3)
        assert list(k1.job_kills(7, alive)) == list(k2.job_kills(7, alive))

    def test_composite_merges(self):
        fm = CompositeFaultModel(
            [ScriptedKills({2: [0]}), ScriptedKills({2: [0, 1]})]
        )
        assert sorted(fm.job_kills(2, (0, 1, 2))) == [0, 1]


class TestEngineIntegration:
    def test_outage_slows_but_completes(self, rng):
        machine = KResourceMachine((8, 4))
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=20)
        healthy = simulate(machine, KRad(), js)
        faulty = simulate(
            machine,
            KRad(),
            js,
            capacity_schedule=periodic_outage(
                (8, 4), category=0, period=8, duration=4
            ),
        )
        assert set(faulty.completion_times) == set(healthy.completion_times)
        assert faulty.makespan >= healthy.makespan

    def test_full_outage_stalls_then_recovers(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 4, size_hint=12)
        r = simulate(
            machine,
            KRad(),
            js,
            capacity_schedule=periodic_outage(
                (4,), category=0, period=6, duration=2, degraded=0
            ),
        )
        assert len(r.completion_times) == len(js)
        assert r.stall_steps > 0
        assert r.longest_stall >= 1

    def test_stall_bound_enforced(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 2)
        with pytest.raises(SimulationError, match="never recovered"):
            simulate(
                machine,
                KRad(),
                js,
                capacity_schedule=lambda t: (0,),  # permanently dark
                max_stall_steps=10,
            )

    def test_trace_stays_valid_under_faults(self, rng):
        machine = KResourceMachine((4, 4))
        js = workloads.random_dag_jobset(rng, 2, 5)
        r = simulate(
            machine,
            KRad(),
            js,
            capacity_schedule=RandomDegradation((4, 4), seed=1, floor=1),
            record_trace=True,
        )
        validate_schedule(r.trace, js)  # degraded <= nominal, still valid

    def test_task_failures_rework_then_complete(self, rng):
        machine = KResourceMachine((4, 2))
        js = workloads.random_dag_jobset(rng, 2, 5, size_hint=15)
        healthy = simulate(machine, KRad(), js)
        faulty = simulate(
            machine,
            KRad(),
            js,
            fault_model=TaskFailures(0.2, seed=11),
            record_trace=True,
        )
        assert set(faulty.completion_times) == set(healthy.completion_times)
        assert faulty.total_wasted > 0
        assert faulty.makespan >= healthy.makespan
        # wasted placements excluded from tau: schedule still valid
        validate_schedule(faulty.trace, js)
        # executed-minus-wasted equals each job's total work
        assert (faulty.busy - faulty.wasted_work_vector() >= 0).all()

    def test_task_failures_deterministic_end_to_end(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 4, size_hint=10)
        r1 = simulate(
            machine, KRad(), js, fault_model=TaskFailures(0.3, seed=2)
        )
        r2 = simulate(
            machine, KRad(), js, fault_model=TaskFailures(0.3, seed=2)
        )
        assert r1.completion_times == r2.completion_times
        assert r1.makespan == r2.makespan
        assert (r1.wasted == r2.wasted).all()

    def test_kill_without_retry_abandons(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 3, size_hint=8)
        victim = js.jobs[0].job_id
        r = simulate(
            machine,
            KRad(),
            js,
            fault_model=ScriptedKills({1: [victim]}),
            record_trace=True,
        )
        assert victim in r.failed_jobs
        assert victim not in r.completion_times
        assert len(r.completion_times) == len(js) - 1
        validate_schedule(r.trace, js, failed_jobs=r.failed_jobs)

    def test_rr_scheduler_state_survives_rebind(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.heavy_phase_jobset(rng, machine, load_factor=4.0)
        r = simulate(
            machine,
            KRoundRobin(),
            js,
            capacity_schedule=periodic_outage(
                (2,), category=0, period=6, duration=2
            ),
        )
        assert len(r.completion_times) == len(js)

    def test_bad_schedule_rejected(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 2)
        with pytest.raises(SimulationError):
            simulate(
                machine, KRad(), js, capacity_schedule=lambda t: (9,)
            )  # above nominal
        with pytest.raises(SimulationError):
            simulate(
                machine, KRad(), js, capacity_schedule=lambda t: (4, 4)
            )  # wrong K
        with pytest.raises(SimulationError):
            simulate(
                machine, KRad(), js, capacity_schedule=lambda t: (-1,)
            )  # negative

    def test_rebind_category_mismatch_rejected(self):
        sched = KRad()
        sched.reset(KResourceMachine((4, 4)))
        with pytest.raises(ScheduleError):
            sched.rebind(KResourceMachine((4,)))

    def test_max_steps_default_scales_for_faulty_runs(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 2)
        healthy = Simulator(machine, KRad(), js.fresh_copy())
        degraded = Simulator(
            machine,
            KRad(),
            js.fresh_copy(),
            capacity_schedule=RandomDegradation((4,), seed=0),
        )
        assert degraded._max_steps > healthy._max_steps


class TestRecordingUnderDegradation:
    """Satellite: RecordingScheduler must stay transparent under rebinds."""

    def _run(self, rng, sched):
        machine = KResourceMachine((4, 2))
        js = workloads.random_dag_jobset(rng, 2, 5, size_hint=15)
        cap = periodic_outage(
            (4, 2), category=0, period=5, duration=2, degraded=1
        )
        rec = RecordingScheduler(sched)
        r = simulate(
            machine, rec, js, capacity_schedule=cap, record_trace=True
        )
        return machine, js, cap, rec, r

    def test_records_intact_and_run_completes(self, rng):
        machine, js, cap, rec, r = self._run(rng, KRad())
        assert len(r.completion_times) == len(js)
        # one record per non-skipped step, consecutive t
        steps = [record.t for record in rec.records]
        assert steps == sorted(steps)
        assert len(set(steps)) == len(steps)
        validate_schedule(r.trace, js)

    def test_allotments_respect_degraded_caps(self, rng):
        """The inner scheduler must see the *degraded* capacities.

        Before rebind forwarding, the wrapped scheduler kept allocating
        against nominal capacities during outages — this pins the fix.
        """
        machine, js, cap, rec, r = self._run(rng, KRad())
        violations = []
        for record in rec.records:
            caps_t = cap(record.t)
            total = np.zeros(machine.num_categories, dtype=np.int64)
            for alloc in record.allotments.values():
                total += np.asarray(alloc, dtype=np.int64)
            if (total > np.asarray(caps_t)).any():
                violations.append((record.t, total.tolist(), caps_t))
        assert not violations

    def test_round_robin_inner_also_respects_caps(self, rng):
        machine, js, cap, rec, r = self._run(rng, KRoundRobin())
        for record in rec.records:
            caps_t = np.asarray(cap(record.t))
            total = sum(
                (np.asarray(a, dtype=np.int64) for a in record.allotments.values()),
                start=np.zeros(machine.num_categories, dtype=np.int64),
            )
            assert (total <= caps_t).all()


# ----------------------------------------------------------------------
# property suite: CompositeFaultModel == union of its parts, every step
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st

_SETTINGS = settings(max_examples=50, deadline=None)


def _task_failures(draw):
    return TaskFailures(
        draw(st.floats(0.0, 0.9)), seed=draw(st.integers(0, 1000))
    )


def _job_killer(draw):
    return JobKiller(
        draw(st.floats(0.0, 0.9)), seed=draw(st.integers(0, 1000))
    )


def _scripted_kills(draw):
    kills = draw(
        st.dictionaries(
            st.integers(1, 10),
            st.lists(st.integers(0, 7), max_size=4),
            max_size=3,
        )
    )
    return ScriptedKills(kills)


@st.composite
def fault_models(draw):
    kind = draw(st.sampled_from(["task", "kill", "scripted"]))
    if kind == "task":
        return _task_failures(draw)
    if kind == "kill":
        return _job_killer(draw)
    return _scripted_kills(draw)


@st.composite
def executed_maps(draw):
    """jid -> per-category lists of distinct task ids (K = 2)."""
    jids = draw(st.lists(st.integers(0, 7), unique=True, max_size=4))
    return {
        jid: [
            sorted(
                draw(
                    st.sets(st.integers(0, 30), max_size=5)
                )
            )
            for _ in range(2)
        ]
        for jid in jids
    }


class TestCompositeUnionProperty:
    @_SETTINGS
    @given(
        models=st.lists(fault_models(), min_size=1, max_size=4),
        executed=executed_maps(),
        t=st.integers(1, 10),
    )
    def test_task_failures_are_exact_union(self, models, executed, t):
        composite = CompositeFaultModel(models)
        merged = composite.task_failures(t, executed)
        # union of the independently-evaluated parts, per job and category
        expected: dict[int, list[set]] = {}
        for model in models:
            for jid, per_cat in model.task_failures(t, executed).items():
                slot = expected.setdefault(jid, [set(), set()])
                for alpha, tasks in enumerate(per_cat):
                    slot[alpha] |= set(tasks)
        assert set(merged) == set(expected)
        for jid, per_cat in merged.items():
            for alpha, tasks in enumerate(per_cat):
                assert len(tasks) == len(set(tasks))  # no duplicates
                assert set(tasks) == expected[jid][alpha]
                assert set(tasks) <= set(executed[jid][alpha])

    @_SETTINGS
    @given(
        models=st.lists(fault_models(), min_size=1, max_size=4),
        alive=st.lists(st.integers(0, 7), unique=True, max_size=6),
        t=st.integers(1, 10),
    )
    def test_job_kills_are_exact_union(self, models, alive, t):
        composite = CompositeFaultModel(models)
        merged = list(composite.job_kills(t, tuple(alive)))
        expected: set[int] = set()
        order: list[int] = []
        for model in models:
            for jid in model.job_kills(t, tuple(alive)):
                if jid not in expected:
                    expected.add(jid)
                    order.append(jid)
        assert merged == order  # first-occurrence order, deduplicated
        assert set(merged) <= set(alive)

    @_SETTINGS
    @given(
        models=st.lists(fault_models(), min_size=1, max_size=3),
        executed=executed_maps(),
        t=st.integers(1, 10),
    )
    def test_composite_is_deterministic(self, models, executed, t):
        a = CompositeFaultModel(models)
        b = CompositeFaultModel(models)
        assert a.task_failures(t, executed) == b.task_failures(t, executed)
        alive = tuple(sorted(executed))
        assert list(a.job_kills(t, alive)) == list(b.job_kills(t, alive))
