"""Tests for failure injection (time-varying capacities)."""

import numpy as np
import pytest

from repro.errors import ScheduleError, SimulationError
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad, KRoundRobin
from repro.sim import simulate, validate_schedule
from repro.sim.faults import RandomDegradation, periodic_outage


class TestPeriodicOutage:
    def test_schedule_shape(self):
        sched = periodic_outage(
            (8, 4), category=0, period=10, duration=3, degraded=2
        )
        assert sched(1) == (2, 4)
        assert sched(3) == (2, 4)
        assert sched(4) == (8, 4)
        assert sched(11) == (2, 4)  # next period

    def test_validation(self):
        with pytest.raises(SimulationError):
            periodic_outage((4,), category=1, period=5, duration=1)
        with pytest.raises(SimulationError):
            periodic_outage((4,), category=0, period=5, duration=6)
        with pytest.raises(SimulationError):
            periodic_outage((4,), category=0, period=5, duration=1, degraded=0)


class TestRandomDegradation:
    def test_deterministic_in_t(self):
        d = RandomDegradation((8, 4), availability=0.5, seed=3)
        assert d(7) == d(7)
        # call order must not matter
        a = [d(t) for t in (5, 1, 9)]
        b = [d(t) for t in (9, 5, 1)]
        assert a == [b[1], b[2], b[0]]

    def test_capacity_floor(self):
        d = RandomDegradation((2,), availability=0.01, seed=0)
        assert all(d(t)[0] >= 1 for t in range(1, 50))

    def test_availability_validated(self):
        with pytest.raises(SimulationError):
            RandomDegradation((4,), availability=0.0)


class TestEngineIntegration:
    def test_outage_slows_but_completes(self, rng):
        machine = KResourceMachine((8, 4))
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=20)
        healthy = simulate(machine, KRad(), js)
        faulty = simulate(
            machine,
            KRad(),
            js,
            capacity_schedule=periodic_outage(
                (8, 4), category=0, period=8, duration=4
            ),
        )
        assert set(faulty.completion_times) == set(healthy.completion_times)
        assert faulty.makespan >= healthy.makespan

    def test_trace_stays_valid_under_faults(self, rng):
        machine = KResourceMachine((4, 4))
        js = workloads.random_dag_jobset(rng, 2, 5)
        r = simulate(
            machine,
            KRad(),
            js,
            capacity_schedule=RandomDegradation((4, 4), seed=1),
            record_trace=True,
        )
        validate_schedule(r.trace, js)  # degraded <= nominal, still valid

    def test_rr_scheduler_state_survives_rebind(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.heavy_phase_jobset(rng, machine, load_factor=4.0)
        r = simulate(
            machine,
            KRoundRobin(),
            js,
            capacity_schedule=periodic_outage(
                (2,), category=0, period=6, duration=2
            ),
        )
        assert len(r.completion_times) == len(js)

    def test_bad_schedule_rejected(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 2)
        with pytest.raises(SimulationError):
            simulate(
                machine, KRad(), js, capacity_schedule=lambda t: (9,)
            )  # above nominal
        with pytest.raises(SimulationError):
            simulate(
                machine, KRad(), js, capacity_schedule=lambda t: (4, 4)
            )  # wrong K

    def test_rebind_category_mismatch_rejected(self):
        sched = KRad()
        sched.reset(KResourceMachine((4, 4)))
        with pytest.raises(ScheduleError):
            sched.rebind(KResourceMachine((4,)))
