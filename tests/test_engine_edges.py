"""Edge-case tests for the simulation engine and shop scheduler."""

import numpy as np
import pytest

from repro.dag import builders
from repro.errors import SimulationError
from repro.jobs import JobSet, workloads
from repro.machine import KResourceMachine
from repro.schedulers import DagShopScheduler, KRad, check_allotments
from repro.sim import Simulator, simulate, validate_schedule


class TestEngineEdges:
    def test_rerun_guard(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 3)
        sim = Simulator(machine2, KRad(), js)
        sim.run()
        with pytest.raises(SimulationError, match="fresh copy"):
            sim.run()

    def test_simulate_fresh_false_consumes(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 3)
        simulate(machine2, KRad(), js, fresh=False)
        with pytest.raises(SimulationError):
            simulate(machine2, KRad(), js, fresh=False)

    def test_completion_and_release_same_step(self, machine2):
        # job 1 releases at the exact step job 0 completes
        js = JobSet.from_dags(
            [builders.chain([0], 2), builders.chain([0], 2)],
            release_times=[0, 1],
        )
        r = simulate(machine2, KRad(), js)
        assert r.completion_times == {0: 1, 1: 2}
        assert r.idle_steps == 0

    def test_many_simultaneous_completions(self, machine2):
        js = JobSet.from_dags(
            [builders.chain([0], 2) for _ in range(4)]
        )
        r = simulate(machine2, KRad(), js)
        assert all(ct == 1 for ct in r.completion_times.values())
        assert r.makespan == 1

    def test_on_step_exceptions_propagate(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 2)

        def boom(t, alive):
            raise RuntimeError("instrumentation failure")

        with pytest.raises(RuntimeError, match="instrumentation"):
            Simulator(machine2, KRad(), js, on_step=boom).run()

    def test_max_steps_exact_boundary(self, machine2):
        js = JobSet.from_dags([builders.chain([0] * 5, 2)])
        # exactly enough steps succeeds
        r = simulate(machine2, KRad(), js, max_steps=5)
        assert r.makespan == 5
        with pytest.raises(SimulationError):
            simulate(machine2, KRad(), js, max_steps=4)

    def test_back_to_back_idle_intervals(self, machine2):
        js = JobSet.from_dags(
            [builders.chain([0], 2) for _ in range(3)],
            release_times=[0, 10, 20],
        )
        r = simulate(machine2, KRad(), js)
        assert r.completion_times == {0: 1, 1: 11, 2: 21}
        assert r.idle_steps == 18


class TestDagShopScheduler:
    def test_one_processor_per_job(self):
        machine = KResourceMachine((4, 4))
        sched = DagShopScheduler()
        sched.reset(machine)
        d = {
            0: np.asarray([3, 2]),
            1: np.asarray([0, 5]),
        }
        alloc = sched.allocate(1, d)
        check_allotments(machine, d, alloc)
        for a in alloc.values():
            assert a.sum() <= 1

    def test_uses_lowest_index_category(self):
        machine = KResourceMachine((2, 2))
        sched = DagShopScheduler()
        sched.reset(machine)
        alloc = sched.allocate(1, {0: np.asarray([1, 1])})
        assert alloc[0].tolist() == [1, 0]

    def test_falls_through_when_category_full(self):
        machine = KResourceMachine((1, 2))
        sched = DagShopScheduler()
        sched.reset(machine)
        d = {i: np.asarray([1, 1]) for i in range(3)}
        alloc = sched.allocate(1, d)
        totals = sum(a for v in alloc.values() for a in v.tolist())
        assert totals == 3  # 1 on cat0, 2 on cat1

    def test_rotation_is_fair(self):
        machine = KResourceMachine((1,))
        sched = DagShopScheduler()
        sched.reset(machine)
        served = []
        d = {i: np.asarray([1]) for i in range(3)}
        for t in range(1, 7):
            alloc = sched.allocate(t, d)
            served.extend(j for j, a in alloc.items() if a[0] > 0)
        assert served == [0, 1, 2, 0, 1, 2]

    def test_produces_valid_schedules(self, rng):
        machine = KResourceMachine((2, 2))
        js = workloads.random_dag_jobset(rng, 2, 4, size_hint=8)
        r = simulate(machine, DagShopScheduler(), js, record_trace=True)
        validate_schedule(r.trace, js)
        # shop floor: per-job response >= per-job total work
        for j in js:
            assert r.response_time(j.job_id) >= j.total_work()
