"""Unit tests for the KDag container."""

import numpy as np
import pytest

from repro.dag import KDag
from repro.errors import CategoryError, DagError


class TestConstruction:
    def test_empty_dag(self):
        dag = KDag(2)
        assert dag.num_vertices == 0
        assert dag.num_edges == 0
        assert dag.span() == 0
        assert dag.total_work() == 0
        assert len(dag) == 0

    def test_add_vertex_returns_sequential_ids(self):
        dag = KDag(3)
        assert dag.add_vertex(0) == 0
        assert dag.add_vertex(2) == 1
        assert dag.add_vertex(1) == 2

    def test_add_vertices_bulk(self):
        dag = KDag(2)
        ids = dag.add_vertices(1, 5)
        assert ids == [0, 1, 2, 3, 4]
        assert all(dag.category(v) == 1 for v in ids)

    def test_add_vertices_zero_count(self):
        dag = KDag(1)
        assert dag.add_vertices(0, 0) == []

    def test_add_vertices_negative_count_rejected(self):
        dag = KDag(1)
        with pytest.raises(DagError):
            dag.add_vertices(0, -1)

    def test_invalid_num_categories(self):
        with pytest.raises(CategoryError):
            KDag(0)

    def test_invalid_category_rejected(self):
        dag = KDag(2)
        with pytest.raises(CategoryError):
            dag.add_vertex(2)
        with pytest.raises(CategoryError):
            dag.add_vertex(-1)

    def test_edge_requires_existing_vertices(self):
        dag = KDag(1)
        dag.add_vertex(0)
        with pytest.raises(DagError):
            dag.add_edge(0, 5)
        with pytest.raises(DagError):
            dag.add_edge(-1, 0)

    def test_backward_edge_rejected(self):
        dag = KDag(1)
        u, v = dag.add_vertex(0), dag.add_vertex(0)
        with pytest.raises(DagError):
            dag.add_edge(v, u)

    def test_self_loop_rejected(self):
        dag = KDag(1)
        v = dag.add_vertex(0)
        with pytest.raises(DagError):
            dag.add_edge(v, v)

    def test_add_edges_bulk(self):
        dag = KDag(1)
        dag.add_vertices(0, 3)
        dag.add_edges([(0, 1), (1, 2)])
        assert dag.num_edges == 2


class TestAccessors:
    def _diamond(self):
        dag = KDag(2)
        a = dag.add_vertex(0)
        b = dag.add_vertex(1)
        c = dag.add_vertex(1)
        d = dag.add_vertex(0)
        dag.add_edges([(a, b), (a, c), (b, d), (c, d)])
        return dag, (a, b, c, d)

    def test_successors_predecessors(self):
        dag, (a, b, c, d) = self._diamond()
        assert set(dag.successors(a)) == {b, c}
        assert set(dag.predecessors(d)) == {b, c}
        assert dag.out_degree(a) == 2
        assert dag.in_degree(d) == 2

    def test_sources_sinks(self):
        dag, (a, b, c, d) = self._diamond()
        assert dag.sources() == [a]
        assert dag.sinks() == [d]

    def test_edges_iterator(self):
        dag, (a, b, c, d) = self._diamond()
        assert sorted(dag.edges()) == [(a, b), (a, c), (b, d), (c, d)]

    def test_categories_array(self):
        dag, _ = self._diamond()
        assert dag.categories().tolist() == [0, 1, 1, 0]

    def test_in_degrees(self):
        dag, _ = self._diamond()
        assert dag.in_degrees().tolist() == [0, 1, 1, 2]

    def test_repr_mentions_counts(self):
        dag, _ = self._diamond()
        assert "vertices=4" in repr(dag)


class TestWorkSpan:
    def test_work_per_category(self):
        dag = KDag(3)
        dag.add_vertices(0, 4)
        dag.add_vertices(2, 2)
        assert dag.work(0) == 4
        assert dag.work(1) == 0
        assert dag.work(2) == 2
        assert dag.work_vector().tolist() == [4, 0, 2]
        assert dag.total_work() == 6

    def test_work_invalid_category(self):
        dag = KDag(1)
        with pytest.raises(CategoryError):
            dag.work(1)

    def test_span_of_chain(self):
        dag = KDag(1)
        ids = dag.add_vertices(0, 5)
        dag.add_edges(zip(ids, ids[1:]))
        assert dag.span() == 5

    def test_span_of_independent_tasks(self):
        dag = KDag(1)
        dag.add_vertices(0, 7)
        assert dag.span() == 1

    def test_depth_from_source(self):
        dag = KDag(1)
        ids = dag.add_vertices(0, 3)
        dag.add_edge(ids[0], ids[2])
        # ids[1] is independent
        assert dag.depth_from_source().tolist() == [1, 1, 2]

    def test_depth_to_sink(self):
        dag = KDag(1)
        ids = dag.add_vertices(0, 3)
        dag.add_edge(ids[0], ids[2])
        assert dag.depth_to_sink().tolist() == [2, 1, 1]

    def test_critical_path_is_a_longest_chain(self):
        dag = KDag(2)
        ids = dag.add_vertices(0, 4)
        dag.add_edges([(ids[0], ids[1]), (ids[1], ids[3]), (ids[0], ids[2])])
        path = dag.critical_path()
        assert path == [ids[0], ids[1], ids[3]]
        assert len(path) == dag.span()

    def test_critical_path_empty_dag(self):
        assert KDag(1).critical_path() == []

    def test_critical_path_follows_edges(self):
        dag = KDag(1)
        ids = dag.add_vertices(0, 6)
        dag.add_edges([(0, 2), (2, 4), (1, 3), (3, 5)])
        path = dag.critical_path()
        for u, v in zip(path, path[1:]):
            assert v in dag.successors(u)


class TestValidate:
    def test_valid_dag_passes(self):
        dag = KDag(2)
        a, b = dag.add_vertex(0), dag.add_vertex(1)
        dag.add_edge(a, b)
        dag.validate()  # should not raise

    def test_corrupted_category_detected(self):
        dag = KDag(2)
        dag.add_vertex(0)
        dag._category[0] = 5  # simulate corruption
        with pytest.raises(DagError):
            dag.validate()

    def test_corrupted_reverse_link_detected(self):
        dag = KDag(1)
        a, b = dag.add_vertex(0), dag.add_vertex(0)
        dag.add_edge(a, b)
        dag._pred[b].clear()
        with pytest.raises(DagError):
            dag.validate()
