"""Unit and property tests for the DEQ allocation procedure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.schedulers.deq import deq_allocate


class TestDeqBasics:
    def test_everyone_satisfied_when_capacity_ample(self):
        alloc = deq_allocate([1, 2, 3], {1: 2, 2: 3, 3: 1}, 10)
        assert alloc == {1: 2, 2: 3, 3: 1}

    def test_equal_split_when_all_deprived(self):
        alloc = deq_allocate([1, 2], {1: 10, 2: 10}, 8)
        assert alloc == {1: 4, 2: 4}

    def test_remainder_goes_to_queue_front(self):
        alloc = deq_allocate([5, 7, 9], {5: 10, 7: 10, 9: 10}, 8)
        assert alloc == {5: 3, 7: 3, 9: 2}

    def test_small_desire_peeled_then_rest_split(self):
        # fair share 2; job 1 wants 1 -> satisfied; remaining 5 split 2 ways
        alloc = deq_allocate([1, 2, 3], {1: 1, 2: 9, 3: 9}, 6)
        assert alloc[1] == 1
        assert alloc[2] + alloc[3] == 5
        assert abs(alloc[2] - alloc[3]) <= 1

    def test_recursive_peeling(self):
        # after peeling small jobs the fair share grows and more are peeled
        alloc = deq_allocate([1, 2, 3, 4], {1: 1, 2: 2, 3: 3, 4: 100}, 12)
        assert alloc[1] == 1 and alloc[2] == 2 and alloc[3] == 3
        assert alloc[4] == 6

    def test_more_jobs_than_processors(self):
        alloc = deq_allocate([1, 2, 3], {1: 1, 2: 1, 3: 1}, 2)
        assert alloc == {1: 1, 2: 1, 3: 0}

    def test_empty_queue(self):
        assert deq_allocate([], {}, 4) == {}

    def test_zero_capacity(self):
        assert deq_allocate([1], {1: 3}, 0) == {1: 0}

    def test_negative_capacity_rejected(self):
        with pytest.raises(ScheduleError):
            deq_allocate([1], {1: 1}, -1)

    def test_nonpositive_desire_rejected(self):
        with pytest.raises(ScheduleError):
            deq_allocate([1], {1: 0}, 4)


@st.composite
def deq_instance(draw):
    n = draw(st.integers(1, 12))
    desires = {
        i: draw(st.integers(1, 30)) for i in range(n)
    }
    capacity = draw(st.integers(0, 40))
    return list(range(n)), desires, capacity


class TestDeqProperties:
    @given(deq_instance())
    @settings(max_examples=300, deadline=None)
    def test_invariants(self, instance):
        queue, desires, capacity = instance
        alloc = deq_allocate(queue, desires, capacity)
        # every queued job is allotted (possibly zero)
        assert set(alloc) == set(queue)
        # never exceeds desire, never negative
        for jid, a in alloc.items():
            assert 0 <= a <= desires[jid]
        total = sum(alloc.values())
        # capacity respected
        assert total <= capacity
        # work-conserving: either all capacity used or every job satisfied
        if total < capacity:
            assert all(alloc[j] == desires[j] for j in queue)

    @given(deq_instance())
    @settings(max_examples=300, deadline=None)
    def test_deprived_jobs_get_equal_share(self, instance):
        """Deprived jobs receive the mean deprived allotment (within 1)."""
        queue, desires, capacity = instance
        alloc = deq_allocate(queue, desires, capacity)
        deprived = [alloc[j] for j in queue if alloc[j] < desires[j]]
        if deprived:
            assert max(deprived) - min(deprived) <= 1
            # no satisfied job received more than a deprived one got + 1:
            # DEQ protects small requests, it never starves the deprived
            satisfied = [alloc[j] for j in queue if alloc[j] == desires[j]]
            if satisfied:
                assert max(satisfied) <= max(deprived) + 1

    @given(deq_instance())
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, instance):
        queue, desires, capacity = instance
        assert deq_allocate(queue, desires, capacity) == deq_allocate(
            queue, desires, capacity
        )
