"""Unit tests for traces and the schedule validity checker."""

import numpy as np
import pytest

from repro.dag import builders
from repro.errors import ValidationError
from repro.jobs import JobSet
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import simulate, validate_schedule
from repro.sim.trace import StepRecord, Trace


def run_with_trace(machine, dags, releases=None):
    js = JobSet.from_dags(dags, releases)
    result = simulate(machine, KRad(), js, record_trace=True)
    return js, result


class TestTrace:
    def test_placements_processor_packing(self, machine2):
        js, r = run_with_trace(machine2, [builders.independent_tasks([4, 2])])
        placements = list(r.trace.placements())
        cpu_procs = [p.processor for p in placements if p.category == 0]
        assert sorted(cpu_procs) == [0, 1, 2, 3]

    def test_task_times_total(self, machine2):
        js, r = run_with_trace(machine2, [builders.chain([0, 1, 0], 2)])
        tau = r.trace.task_times()
        assert len(tau) == 3
        assert tau[(0, 0)] < tau[(0, 1)] < tau[(0, 2)]

    def test_monotone_steps_enforced(self):
        trace = Trace(num_categories=1, capacities=(1,))
        rec = StepRecord(t=1, desires={}, allotments={}, executed={})
        trace.append(rec)
        with pytest.raises(ValueError):
            trace.append(rec)

    def test_busy_matrix_shape(self, machine2):
        js, r = run_with_trace(machine2, [builders.independent_tasks([4, 2])])
        bm = r.trace.busy_matrix()
        assert bm.shape == (len(r.trace), 2)


class TestValidator:
    def test_valid_schedule_passes(self, machine3, rng):
        from repro.jobs import workloads

        js = workloads.random_dag_jobset(rng, 3, 6)
        r = simulate(machine3, KRad(), js, record_trace=True)
        validate_schedule(r.trace, js)

    def test_detects_double_execution(self, machine2):
        trace = Trace(num_categories=2, capacities=(4, 2))
        js = JobSet.from_dags([builders.independent_tasks([2, 0])])
        trace.append(
            StepRecord(t=1, desires={}, allotments={}, executed={0: [[0, 0], []]})
        )
        with pytest.raises(ValidationError, match="twice"):
            validate_schedule(trace, js)

    def test_detects_missing_task(self, machine2):
        trace = Trace(num_categories=2, capacities=(4, 2))
        js = JobSet.from_dags([builders.independent_tasks([2, 0])])
        trace.append(
            StepRecord(t=1, desires={}, allotments={}, executed={0: [[0], []]})
        )
        with pytest.raises(ValidationError, match="never executed"):
            validate_schedule(trace, js)

    def test_detects_precedence_violation(self, machine2):
        trace = Trace(num_categories=2, capacities=(4, 2))
        js = JobSet.from_dags([builders.chain([0, 0], 2)])
        trace.append(
            StepRecord(t=1, desires={}, allotments={}, executed={0: [[1], []]})
        )
        trace.append(
            StepRecord(t=2, desires={}, allotments={}, executed={0: [[0], []]})
        )
        with pytest.raises(ValidationError, match="precedence"):
            validate_schedule(trace, js)

    def test_detects_capacity_violation(self):
        machine_caps = (1,)
        trace = Trace(num_categories=1, capacities=machine_caps)
        js = JobSet.from_dags([builders.independent_tasks([2])])
        trace.append(
            StepRecord(t=1, desires={}, allotments={}, executed={0: [[0, 1]]})
        )
        with pytest.raises(ValidationError):
            validate_schedule(trace, js)

    def test_detects_wrong_category(self):
        trace = Trace(num_categories=2, capacities=(2, 2))
        dag = builders.chain([0], 2)  # task 0 is category 0
        js = JobSet.from_dags([dag])
        trace.append(
            StepRecord(
                t=1, desires={}, allotments={}, executed={0: [[], [0]]}
            )
        )
        with pytest.raises(ValidationError):
            validate_schedule(trace, js)

    def test_detects_execution_before_release(self):
        trace = Trace(num_categories=1, capacities=(1,))
        js = JobSet.from_dags([builders.chain([0], 1)], release_times=[5])
        trace.append(
            StepRecord(t=3, desires={}, allotments={}, executed={0: [[0]]})
        )
        with pytest.raises(ValidationError, match="released"):
            validate_schedule(trace, js)

    def test_detects_unknown_job(self):
        trace = Trace(num_categories=1, capacities=(1,))
        js = JobSet.from_dags([builders.chain([0], 1)])
        trace.append(
            StepRecord(t=1, desires={}, allotments={}, executed={9: [[0]]})
        )
        with pytest.raises(ValidationError, match="unknown job"):
            validate_schedule(trace, js)
