"""Tests for the reallocation-churn metric."""

import numpy as np
import pytest

from repro.dag import builders
from repro.jobs import JobSet, workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad, StaticPartition
from repro.sim import reallocation_volume, simulate
from repro.sim.trace import StepRecord, Trace


class TestReallocationVolume:
    def test_empty_and_single_step(self):
        t = Trace(num_categories=1, capacities=(1,))
        assert reallocation_volume(t) == {"total": 0.0, "per_step": 0.0}
        t.append(
            StepRecord(
                t=1, desires={}, allotments={0: np.asarray([1])}, executed={}
            )
        )
        assert reallocation_volume(t)["total"] == 0.0

    def test_hand_computed(self):
        t = Trace(num_categories=1, capacities=(2,))
        t.append(
            StepRecord(
                t=1,
                desires={},
                allotments={0: np.asarray([2])},
                executed={},
            )
        )
        t.append(
            StepRecord(
                t=2,
                desires={},
                allotments={0: np.asarray([1]), 1: np.asarray([1])},
                executed={},
            )
        )
        v = reallocation_volume(t)
        # job 0: |2-1| = 1; job 1: |0-1| = 1
        assert v["total"] == 2.0
        assert v["per_step"] == 2.0

    def test_constant_allotment_zero_churn(self):
        machine = KResourceMachine((2,))
        js = JobSet.from_dags([builders.chain([0] * 8, 1)])
        r = simulate(machine, KRad(), js, record_trace=True)
        # one serial job: allotment is (1,) every step -> churn 0
        assert reallocation_volume(r.trace)["total"] == 0.0

    def test_static_less_churn_than_krad_under_load(self, rng):
        machine = KResourceMachine((8, 4))
        js = workloads.heavy_phase_jobset(rng, machine, load_factor=3.0)
        krad = simulate(machine, KRad(), js, record_trace=True)
        static = simulate(machine, StaticPartition(), js, record_trace=True)
        assert (
            reallocation_volume(static.trace)["per_step"]
            < reallocation_volume(krad.trace)["per_step"]
        )
