"""Unit tests for the K-resource machine model."""

import pytest

from repro.errors import CategoryError
from repro.machine import KResourceMachine, homogeneous_machine


class TestConstruction:
    def test_basic(self):
        m = KResourceMachine((4, 2), names=("cpu", "io"))
        assert m.num_categories == 2
        assert m.capacities == (4, 2)
        assert m.names == ("cpu", "io")
        assert m.pmax == 4
        assert m.total_processors == 6

    def test_default_names(self):
        m = KResourceMachine((1, 1, 1))
        assert m.names == ("cpu", "vector", "io")

    def test_many_categories_get_generated_names(self):
        m = KResourceMachine(tuple([1] * 10))
        assert m.names[-1] == "cat9"
        assert len(set(m.names)) == 10

    def test_empty_rejected(self):
        with pytest.raises(CategoryError):
            KResourceMachine(())

    def test_zero_capacity_rejected(self):
        with pytest.raises(CategoryError):
            KResourceMachine((4, 0))

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(CategoryError):
            KResourceMachine((1, 2), names=("only-one",))

    def test_duplicate_names_rejected(self):
        with pytest.raises(CategoryError):
            KResourceMachine((1, 2), names=("x", "x"))


class TestAccessors:
    def test_capacity_lookup(self):
        m = KResourceMachine((4, 2))
        assert m.capacity(0) == 4
        assert m.capacity(1) == 2
        with pytest.raises(CategoryError):
            m.capacity(2)

    def test_capacity_vector_is_copy(self):
        m = KResourceMachine((4, 2))
        v = m.capacity_vector()
        v[0] = 99
        assert m.capacity(0) == 4

    def test_category_index(self):
        m = KResourceMachine((4, 2), names=("cpu", "io"))
        assert m.category_index("io") == 1
        with pytest.raises(CategoryError):
            m.category_index("gpu")

    def test_iteration(self):
        m = KResourceMachine((4, 2), names=("cpu", "io"))
        assert list(m) == [(0, "cpu", 4), (1, "io", 2)]

    def test_equality_and_hash(self):
        a = KResourceMachine((4, 2), names=("cpu", "io"))
        b = KResourceMachine((4, 2), names=("cpu", "io"))
        c = KResourceMachine((4, 2), names=("cpu", "nic"))
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a machine"

    def test_repr(self):
        m = KResourceMachine((4, 2), names=("cpu", "io"))
        assert "cpu=4" in repr(m)


class TestHomogeneous:
    def test_single_category(self):
        m = homogeneous_machine(8)
        assert m.num_categories == 1
        assert m.pmax == 8
        assert m.names == ("cpu",)
