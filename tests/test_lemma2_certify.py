"""Tests for the Lemma-2 proof-decomposition certifier."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dag import builders
from repro.errors import ReproError
from repro.jobs import JobSet, workloads
from repro.machine import KResourceMachine
from repro.theory.lemma2_certify import certify_lemma2


class TestCertifyLemma2:
    def test_random_dag_runs_certify(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=15)
        cert = certify_lemma2(machine2, js)
        assert cert.all_hold
        assert cert.partition_ok
        assert (
            cert.release_steps + cert.satisfied_steps + cert.deprived_steps
            == cert.makespan
        ) or cert.makespan >= cert.release_steps  # last job may finish early

    def test_phase_jobs_certify(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 8, max_work=20)
        assert certify_lemma2(machine2, js).all_hold

    def test_single_chain_all_satisfied(self):
        machine = KResourceMachine((4,))
        js = JobSet.from_dags([builders.chain([0] * 6, 1)])
        cert = certify_lemma2(machine, js)
        assert cert.all_hold
        assert cert.satisfied_steps == 6
        assert cert.deprived_steps == 0
        assert cert.span_of_last_job == 6

    def test_contended_run_has_deprived_steps(self):
        machine = KResourceMachine((2,))
        js = JobSet.from_dags(
            [builders.independent_tasks([10]) for _ in range(3)]
        )
        cert = certify_lemma2(machine, js)
        assert cert.all_hold
        assert cert.deprived_steps > 0

    def test_releases_counted(self, machine2):
        js = JobSet.from_dags(
            [builders.chain([0] * 30, 2), builders.chain([0, 1], 2)],
            release_times=[0, 5],
        )
        cert = certify_lemma2(machine2, js)
        # the tiny late job finishes long before the big chain, so the big
        # chain is the last job; its release is 0
        assert cert.all_hold

    def test_rejects_idle_runs(self, machine2):
        js = JobSet.from_dags(
            [builders.chain([0], 2), builders.chain([0], 2)],
            release_times=[0, 100],
        )
        with pytest.raises(ReproError, match="idle"):
            certify_lemma2(machine2, js)

    @given(st.integers(0, 2**31))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_random_workloads(self, seed):
        machine = KResourceMachine((3, 2))
        rng = np.random.default_rng(seed)
        js = workloads.random_dag_jobset(rng, 2, 5, size_hint=10)
        assert certify_lemma2(machine, js).all_hold
