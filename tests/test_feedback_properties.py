"""Property tests for the A-GREEDY estimator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feedback import AGreedyEstimator


@st.composite
def observation_stream(draw):
    quantum = draw(st.integers(1, 5))
    cap = draw(st.integers(1, 32))
    n = draw(st.integers(1, 60))
    events = []
    for _ in range(n):
        allotted = draw(st.integers(0, cap))
        used = draw(st.integers(0, allotted))
        deprived = draw(st.booleans())
        events.append((allotted, used, deprived))
    return quantum, cap, events


class TestEstimatorInvariants:
    @given(observation_stream())
    @settings(max_examples=150, deadline=None)
    def test_estimate_stays_in_range(self, stream):
        quantum, cap, events = stream
        est = AGreedyEstimator(quantum=quantum, max_estimate=cap)
        for allotted, used, deprived in events:
            est.observe(0, 0, allotted=allotted, used=used, deprived=deprived)
            assert 1 <= est.estimate(0, 0) <= cap

    @given(observation_stream())
    @settings(max_examples=100, deadline=None)
    def test_estimate_moves_by_rho_steps_only(self, stream):
        """Between observations the estimate changes by at most the
        responsiveness factor (no jumps)."""
        quantum, cap, events = stream
        est = AGreedyEstimator(
            quantum=quantum, responsiveness=2.0, max_estimate=cap
        )
        prev = est.estimate(0, 0)
        for allotted, used, deprived in events:
            est.observe(0, 0, allotted=allotted, used=used, deprived=deprived)
            cur = est.estimate(0, 0)
            assert prev / 2 - 1 <= cur <= prev * 2 + 1
            prev = cur

    @given(st.integers(1, 5), st.integers(2, 64))
    @settings(max_examples=60, deadline=None)
    def test_perfect_usage_reaches_cap(self, quantum, cap):
        """A job that always uses everything it asks for climbs to the
        category capacity in logarithmically many quanta."""
        est = AGreedyEstimator(quantum=quantum, max_estimate=cap)
        for _ in range(quantum * (cap.bit_length() + 2)):
            a = est.estimate(0, 0)
            est.observe(0, 0, allotted=a, used=a, deprived=False)
        assert est.estimate(0, 0) == cap

    @given(st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_zero_usage_collapses_to_one(self, quantum):
        est = AGreedyEstimator(quantum=quantum, max_estimate=64)
        # climb first
        for _ in range(quantum * 8):
            a = est.estimate(0, 0)
            est.observe(0, 0, allotted=a, used=a, deprived=False)
        # then waste everything
        for _ in range(quantum * 10):
            a = est.estimate(0, 0)
            est.observe(0, 0, allotted=a, used=0, deprived=False)
        assert est.estimate(0, 0) == 1

    @given(observation_stream())
    @settings(max_examples=60, deadline=None)
    def test_independent_cells(self, stream):
        """Observations on one (job, category) never touch another."""
        quantum, cap, events = stream
        est = AGreedyEstimator(quantum=quantum, max_estimate=cap)
        baseline = est.estimate(7, 1)
        for allotted, used, deprived in events:
            est.observe(0, 0, allotted=allotted, used=used, deprived=deprived)
        assert est.estimate(7, 1) == baseline
