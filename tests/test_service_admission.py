"""Property tests for admission control and service durability.

The two service invariants worth machine-checking under arbitrary
workloads:

* **no accepted job is ever dropped** — whatever interleaving of
  submissions, partial advances and quota pressure the service sees,
  every acknowledged job is either completed (or cancelled on request)
  by the time the service drains;
* **every rejection is actionable** — it carries a reason from
  :data:`~repro.service.admission.REASON_CODES` and an integer
  ``retry_after >= 1``, under every gate.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jobs import Phase, PhaseJob
from repro.obs import Observability
from repro.service import (
    REASON_CODES,
    AdmissionController,
    FairSubmissionQueue,
    SchedulingService,
    ServiceConfig,
    theorem3_certificate,
)

K = 2
CAPS = (3, 2)


def _phase_jobs(sizes):
    jobs = []
    for i, (w0, w1, p) in enumerate(sizes):
        jobs.append(
            PhaseJob(
                [Phase([w0, 0], [p, 1]), Phase([0, w1], [1, p])],
                job_id=i,
            )
        )
    return jobs


# one service "op" per tuple: (tenant index, work0, work1, parallelism,
# steps to advance after the submission)
_ops = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(1, 3),
        st.integers(0, 4),
    ),
    min_size=1,
    max_size=24,
)


@settings(max_examples=40, deadline=None)
@given(ops=_ops, quota=st.integers(1, 4), cap=st.integers(2, 8))
def test_no_accepted_job_is_ever_dropped(ops, quota, cap):
    cfg = ServiceConfig(
        capacities=CAPS,
        seed=0,
        tenant_quota=quota,
        max_in_flight=cap,
        step_slice=2,
    )
    svc = SchedulingService(cfg, obs=Observability())
    jobs = _phase_jobs([(w0, w1, p) for _, w0, w1, p, _ in ops])
    accepted, rejected = [], []
    for job, (tenant_i, _w0, _w1, _p, advance) in zip(jobs, ops):
        ack = svc.submit(f"tenant{tenant_i}", job)
        if ack["ok"]:
            accepted.append(ack["job_id"])
        else:
            rejected.append(ack)
        for _ in range(advance):
            svc.tick()
    summary = svc.drain()
    # every acknowledged job completed; none dropped, none failed
    assert sorted(summary["completions"]) == sorted(accepted)
    assert summary["failed"] == []
    assert summary["completed"] == len(accepted)
    # rejections never consumed a job id (ids are dense in admission order)
    assert sorted(accepted) == list(range(len(accepted)))
    # and each one was actionable
    for rej in rejected:
        assert rej["reason"] in REASON_CODES
        assert isinstance(rej["retry_after"], int)
        assert rej["retry_after"] >= 1


@settings(max_examples=60, deadline=None)
@given(
    tenant_in_flight=st.integers(0, 20),
    total_in_flight=st.integers(0, 50),
    quota=st.integers(1, 8),
    cap=st.integers(1, 32),
    retry=st.integers(1, 16),
    shed=st.one_of(st.none(), st.integers(1, 100)),
    cert=st.one_of(
        st.none(), st.floats(0, 500, allow_nan=False, allow_infinity=False)
    ),
    draining=st.booleans(),
)
def test_every_rejection_carries_reason_and_retry_after(
    tenant_in_flight, total_in_flight, quota, cap, retry, shed, cert, draining
):
    ctrl = AdmissionController(
        tenant_quota=quota,
        max_in_flight=cap,
        retry_after=retry,
        shed_horizon=shed,
    )
    decision = ctrl.decide(
        "t",
        tenant_in_flight=tenant_in_flight,
        total_in_flight=total_in_flight,
        draining=draining,
        certificate=cert,
    )
    if decision.accepted:
        # acceptance implies every armed gate genuinely passed
        assert not draining
        assert total_in_flight < cap
        assert tenant_in_flight < quota
        if shed is not None and cert is not None:
            assert cert <= shed
        assert decision.to_dict() == {"accepted": True}
    else:
        assert decision.reason in REASON_CODES
        assert isinstance(decision.retry_after, int)
        assert decision.retry_after >= 1
        assert decision.detail
        wire = decision.to_dict()
        assert wire["reason"] == decision.reason
        assert wire["retry_after"] >= 1


@settings(max_examples=40, deadline=None)
@given(
    pushes=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 1000)),
        min_size=1,
        max_size=60,
    )
)
def test_fair_queue_conserves_and_orders(pushes):
    q = FairSubmissionQueue()
    for tenant_i, item in pushes:
        q.push(f"t{tenant_i}", item)
    assert len(q) == len(pushes)
    popped = list(q.drain())
    assert len(popped) == len(pushes)
    # conservation: exactly the pushed multiset comes back out
    assert sorted(popped) == sorted(
        (f"t{i}", item) for i, item in pushes
    )
    # per-tenant FIFO: each tenant's items appear in push order
    for tenant in {f"t{i}" for i, _ in pushes}:
        pushed_order = [it for i, it in pushes if f"t{i}" == tenant]
        popped_order = [it for t, it in popped if t == tenant]
        assert popped_order == pushed_order
    # round-robin fairness: between two pops of one tenant, every other
    # tenant that had backlog at the first pop is served at least once
    last_seen: dict[str, int] = {}
    for idx, (tenant, _item) in enumerate(popped):
        if tenant in last_seen:
            gap = popped[last_seen[tenant] + 1 : idx]
            gap_tenants = {t for t, _ in gap}
            remaining_after = {t for t, _ in popped[last_seen[tenant] + 1 :]}
            assert remaining_after - {tenant} <= gap_tenants
        last_seen[tenant] = idx


@settings(max_examples=60, deadline=None)
@given(
    work=st.lists(st.integers(0, 50), min_size=K, max_size=K),
    extra=st.lists(st.integers(0, 20), min_size=K, max_size=K),
    span=st.integers(0, 40),
    more_span=st.integers(0, 20),
)
def test_certificate_monotone_and_zero_on_empty(work, extra, span, more_span):
    pmax = max(CAPS)
    base = theorem3_certificate(np.array(work), span, CAPS, pmax)
    grown = theorem3_certificate(
        np.array(work) + np.array(extra), span + more_span, CAPS, pmax
    )
    assert base >= 0
    assert grown >= base  # admitting more work never shrinks the horizon
    assert theorem3_certificate(np.zeros(K), 0, CAPS, pmax) == 0.0
