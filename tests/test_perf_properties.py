"""Property-based tests for the performance-heterogeneity engine."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.perf import SpeedMachine, simulate_speeds, speed_makespan_lower_bound
from repro.schedulers import KRad
from repro.sim import simulate

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def speed_case(draw):
    k = draw(st.integers(1, 3))
    caps = tuple(draw(st.integers(1, 4)) for _ in range(k))
    speeds = tuple(draw(st.integers(1, 4)) for _ in range(k))
    seed = draw(st.integers(0, 2**31))
    n = draw(st.integers(1, 5))
    rng = np.random.default_rng(seed)
    js = workloads.random_dag_jobset(rng, k, n, size_hint=6)
    return caps, speeds, js


class TestSpeedProperties:
    @given(speed_case())
    @_SETTINGS
    def test_unit_speed_equivalence(self, case):
        caps, _, js = case
        a = simulate(KResourceMachine(caps), KRad(), js)
        b = simulate_speeds(
            SpeedMachine(caps, tuple(1 for _ in caps)), KRad(), js
        )
        assert a.makespan == b.makespan
        assert a.completion_times == b.completion_times

    @given(speed_case())
    @_SETTINGS
    def test_lower_bound_respected(self, case):
        caps, speeds, js = case
        machine = SpeedMachine(caps, speeds)
        r = simulate_speeds(machine, KRad(), js)
        assert r.makespan >= speed_makespan_lower_bound(js, machine) - 1e-9

    @given(speed_case())
    @_SETTINGS
    def test_uniform_speedup_bounded(self, case):
        """Doubling every speed cannot slow the schedule down much.

        Strict monotonicity is FALSE: K-RAD is non-clairvoyant, and faster
        processors change which tasks finish together, which reorders the
        queues — a Graham-style scheduling anomaly (found by hypothesis:
        caps (2,1,2), speeds (3,1,1), 4 jobs, makespan 5 -> 6).  What does
        hold is the competitive bound: both schedules stay within the
        Theorem-3 factor of the same lower bound, so doubling speeds can
        cost at most that constant factor (plus unit-step rounding).
        """
        caps, speeds, js = case
        slow = simulate_speeds(SpeedMachine(caps, speeds), KRad(), js)
        fast = simulate_speeds(
            SpeedMachine(caps, tuple(2 * s for s in speeds)), KRad(), js
        )
        k = len(caps)
        pmax = max(caps)
        ratio = k + 1 - 1 / pmax
        assert fast.makespan <= ratio * slow.makespan + 1

    @given(speed_case())
    @_SETTINGS
    def test_all_work_completes(self, case):
        caps, speeds, js = case
        machine = SpeedMachine(caps, speeds)
        r = simulate_speeds(machine, KRad(), js)
        assert set(r.completion_times) == {j.job_id for j in js}
        assert r.busy.tolist() == js.total_work_vector().tolist()
