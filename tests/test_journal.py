"""Crash-safe journaling: CRC framing, torn-tail truncation, and
digest-verified recovery."""

import json
import os

import pytest

from repro.errors import JournalError
from repro.io.trace_io import trace_to_dict
from repro.jobs import workloads
from repro.machine.churn import ChurnEvent, ChurnSchedule
from repro.schedulers import KRad
from repro.sim import (
    Journal,
    ScriptedViolation,
    Simulator,
    Supervisor,
    default_monitors,
    read_journal,
    state_digest,
)
from repro.sim.faults import TaskFailures


def _make_js(rng, n=6):
    return workloads.random_dag_jobset(
        rng, 2, n, size_hint=12, release_times=[0, 0, 2, 5, 5, 11][:n]
    )


def _assert_identical(a, b):
    assert a.makespan == b.makespan
    assert a.completion_times == b.completion_times
    assert a.busy.tolist() == b.busy.tolist()
    assert a.stall_steps == b.stall_steps
    if a.trace is not None:
        assert trace_to_dict(a.trace) == trace_to_dict(b.trace)


class TestFraming:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "run.journal")
        j = Journal(path, fsync=False)
        j.append("meta", {"version": 1})
        j.append("step", {"t": 1, "digest": 42})
        j.close()
        records, valid_bytes, clean = read_journal(path)
        assert clean
        assert [r.type for r in records] == ["meta", "step"]
        assert [r.seq for r in records] == [1, 2]
        assert records[1].data == {"t": 1, "digest": 42}
        assert valid_bytes == os.path.getsize(path)

    def test_corrupt_record_stops_reading(self, tmp_path):
        path = str(tmp_path / "run.journal")
        j = Journal(path, fsync=False)
        j.append("meta", {"version": 1})
        j.append("step", {"t": 1})
        j.close()
        raw = open(path, "rb").read().splitlines(keepends=True)
        # flip a payload byte in record 2; the CRC no longer matches
        doc = json.loads(raw[1])
        doc["data"]["t"] = 999
        raw[1] = (json.dumps(doc, separators=(",", ":")) + "\n").encode()
        open(path, "wb").write(b"".join(raw))
        records, _, clean = read_journal(path)
        assert not clean
        assert [r.type for r in records] == ["meta"]

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        path = str(tmp_path / "run.journal")
        j = Journal(path, fsync=False)
        j.append("meta", {"version": 1})
        j.append("step", {"t": 1, "digest": 7})
        j.close()
        full = os.path.getsize(path)
        with open(path, "ab") as fh:  # half a record, no newline
            fh.write(b'{"seq":3,"type":"st')
        records, valid_bytes, clean = read_journal(path, truncate=True)
        assert not clean
        assert len(records) == 2
        assert valid_bytes == full
        assert os.path.getsize(path) == full  # tail physically cut
        # a second read of the truncated file is clean
        _, _, clean2 = read_journal(path)
        assert clean2

    def test_sequence_gap_rejected(self, tmp_path):
        path = str(tmp_path / "run.journal")
        j = Journal(path, fsync=False)
        j.append("meta", {"version": 1})
        j.close()
        j2 = Journal(path, fsync=False, start_seq=5)  # wrong resume seq
        j2.append("step", {"t": 1})
        j2.close()
        records, _, clean = read_journal(path)
        assert not clean
        assert len(records) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            read_journal(str(tmp_path / "nope.journal"))

    def test_checkpoint_every_validated(self, tmp_path):
        with pytest.raises(JournalError):
            Journal(str(tmp_path / "j"), checkpoint_every=0)

    def test_state_digest_order_independent(self):
        assert state_digest({"a": 1, "b": 2}) == state_digest(
            {"b": 2, "a": 1}
        )
        assert state_digest({"a": 1}) != state_digest({"a": 2})


class TestTornTailVsMidCorruption:
    """A torn *trailing* record is tolerated; corruption anywhere else
    (intact records follow the bad frame) fails loudly."""

    def _write(self, path, n=4):
        j = Journal(path, fsync=False)
        j.append("meta", {"version": 1})
        for t in range(1, n):
            j.append("step", {"t": t, "digest": t * 7})
        j.close()

    def test_truncation_sweep_over_final_record(self, tmp_path):
        # Cut the file after every possible byte length of the final
        # record: every prefix must read as a tolerated torn tail with
        # exactly the first n-1 records intact, never an exception.
        base = str(tmp_path / "base.journal")
        self._write(base, n=4)
        raw = open(base, "rb").read()
        lines = raw.splitlines(keepends=True)
        head = b"".join(lines[:-1])
        last = lines[-1]
        for cut in range(len(last)):  # 0..len-1 bytes of the last record
            path = str(tmp_path / f"cut{cut}.journal")
            open(path, "wb").write(head + last[:cut])
            records, valid_bytes, clean = read_journal(path)
            assert len(records) == 3, f"cut at {cut} bytes"
            assert valid_bytes == len(head)
            # only the full record reads clean; every partial is torn
            assert not clean or cut == 0

    def test_truncated_tail_recovery_proceeds(self, rng, machine2, tmp_path):
        # End-to-end: a journaled run whose last record is half-written
        # still recovers from the last good record and finishes.
        path = str(tmp_path / "run.journal")
        js = _make_js(rng)
        ref = Simulator(machine2, KRad(), js.fresh_copy()).run()
        sim = Simulator(
            machine2,
            KRad(),
            js.fresh_copy(),
            journal=Journal(path, checkpoint_every=3, fsync=False),
        )
        assert sim.run_until(6) is None
        sim._journal.close()
        with open(path, "ab") as fh:
            fh.write(b'{"seq":999,"type":"ste')  # torn mid-write
        recovered = Simulator.recover(path, fsync=False)
        _assert_identical(recovered.run(), ref)

    def test_mid_journal_corruption_fails_loudly(self, tmp_path):
        # Flip a byte in record 2 of 4: records 3 and 4 are intact after
        # the bad frame, so this is NOT a torn tail and must raise.
        path = str(tmp_path / "mid.journal")
        self._write(path, n=4)
        lines = open(path, "rb").read().splitlines(keepends=True)
        body = bytearray(lines[1])
        body[len(body) // 2] ^= 0xFF
        lines[1] = bytes(body)
        open(path, "wb").write(b"".join(lines))
        with pytest.raises(JournalError, match="mid-journal corruption"):
            read_journal(path)

    def test_mid_journal_missing_record_fails_loudly(self, tmp_path):
        # Delete a whole record from the middle: the sequence gap is
        # followed by intact records, so it must raise, not truncate.
        path = str(tmp_path / "gap.journal")
        self._write(path, n=4)
        lines = open(path, "rb").read().splitlines(keepends=True)
        del lines[1]
        open(path, "wb").write(b"".join(lines))
        with pytest.raises(JournalError, match="mid-journal corruption"):
            read_journal(path)

    def test_trailing_corruption_still_tolerated(self, tmp_path):
        # Corrupting the *last* record (nothing intact after) stays the
        # tolerated torn-tail path — same behaviour as before this layer.
        path = str(tmp_path / "tail.journal")
        self._write(path, n=4)
        lines = open(path, "rb").read().splitlines(keepends=True)
        body = bytearray(lines[-1])
        body[len(body) // 2] ^= 0xFF
        lines[-1] = bytes(body)
        open(path, "wb").write(b"".join(lines))
        records, _, clean = read_journal(path)
        assert not clean
        assert len(records) == 3


class TestJournaledRuns:
    def test_journaled_run_matches_plain_run(self, rng, machine2, tmp_path):
        js = _make_js(rng)
        ref = Simulator(
            machine2, KRad(), js.fresh_copy(), record_trace=True
        ).run()
        path = str(tmp_path / "run.journal")
        r = Simulator(
            machine2,
            KRad(),
            js.fresh_copy(),
            record_trace=True,
            journal=Journal(path, checkpoint_every=5, fsync=False),
        ).run()
        _assert_identical(ref, r)
        records, _, clean = read_journal(path)
        assert clean
        types = [rec.type for rec in records]
        assert types[0] == "meta"
        assert types[1] == "checkpoint"
        assert types[-1] == "end"
        assert types.count("step") == ref.makespan
        assert records[-1].data["makespan"] == ref.makespan

    def test_recover_resumes_to_identical_result(
        self, rng, machine2, tmp_path
    ):
        js = _make_js(rng)
        ref = Simulator(
            machine2, KRad(), js.fresh_copy(), record_trace=True
        ).run()
        path = str(tmp_path / "run.journal")
        sim = Simulator(
            machine2,
            KRad(),
            js.fresh_copy(),
            record_trace=True,
            journal=Journal(path, checkpoint_every=4, fsync=False),
        )
        assert sim.run_until(7) is None
        sim._journal.close()  # abandon mid-run: simulated crash

        recovered = Simulator.recover(path, fsync=False)
        r = recovered.run()
        _assert_identical(ref, r)
        # the resumed run keeps appending to the same journal
        records, _, clean = read_journal(path)
        assert clean
        assert records[-1].type == "end"

    def test_recover_chain_survives_second_crash(
        self, rng, machine2, tmp_path
    ):
        js = _make_js(rng)
        ref = Simulator(machine2, KRad(), js.fresh_copy()).run()
        path = str(tmp_path / "run.journal")
        sim = Simulator(
            machine2,
            KRad(),
            js.fresh_copy(),
            journal=Journal(path, checkpoint_every=3, fsync=False),
        )
        assert sim.run_until(4) is None
        sim._journal.close()
        sim2 = Simulator.recover(path, fsync=False)
        assert sim2.run_until(9) is None
        sim2._journal.close()
        r = Simulator.recover(path, fsync=False).run()
        assert r.makespan == ref.makespan
        assert r.completion_times == ref.completion_times

    def test_recover_with_torn_tail(self, rng, machine2, tmp_path):
        js = _make_js(rng)
        ref = Simulator(machine2, KRad(), js.fresh_copy()).run()
        path = str(tmp_path / "run.journal")
        sim = Simulator(
            machine2,
            KRad(),
            js.fresh_copy(),
            journal=Journal(path, checkpoint_every=3, fsync=False),
        )
        assert sim.run_until(6) is None
        sim._journal.close()
        with open(path, "ab") as fh:
            fh.write(b'{"seq":99,"type":"step","crc":0,"data"')
        r = Simulator.recover(path, fsync=False).run()
        assert r.makespan == ref.makespan

    def test_recover_faulty_supervised_churned_run(
        self, rng, machine2, tmp_path
    ):
        """The full stack at once: churn + supervisor rebuilt from journal
        metadata, fault model passed back in by the caller."""
        js = _make_js(rng)
        churn = ChurnSchedule(
            (4, 2), [ChurnEvent(step=3, category=0, delta=-2, duration=4)]
        )
        sup = Supervisor(
            default_monitors() + [ScriptedViolation(step=4, job_id=3)],
            mode="resilient",
        )
        fm = TaskFailures(0.1, seed=7)

        def make_sim(journal=None):
            return Simulator(
                machine2,
                KRad(),
                js.fresh_copy(),
                churn=churn,
                supervisor=sup,
                fault_model=fm,
                journal=journal,
            )

        ref = make_sim().run()
        path = str(tmp_path / "run.journal")
        sim = make_sim(Journal(path, checkpoint_every=5, fsync=False))
        assert sim.run_until(8) is None
        sim._journal.close()
        r = Simulator.recover(path, fault_model=fm, fsync=False).run()
        assert r.makespan == ref.makespan
        assert r.quarantined_jobs == ref.quarantined_jobs
        assert [i.to_dict() for i in r.incidents] == [
            i.to_dict() for i in ref.incidents
        ]


class TestRecoveryGuards:
    def _crashed_journal(self, rng, machine2, tmp_path, stop=5):
        js = _make_js(rng)
        path = str(tmp_path / "run.journal")
        sim = Simulator(
            machine2,
            KRad(),
            js.fresh_copy(),
            journal=Journal(path, checkpoint_every=3, fsync=False),
        )
        assert sim.run_until(stop) is None
        sim._journal.close()
        return path

    def test_completed_journal_rejected(self, rng, machine2, tmp_path):
        js = _make_js(rng)
        path = str(tmp_path / "run.journal")
        Simulator(
            machine2,
            KRad(),
            js.fresh_copy(),
            journal=Journal(path, fsync=False),
        ).run()
        with pytest.raises(JournalError, match="nothing to recover"):
            Simulator.recover(path)

    def test_headerless_file_rejected(self, tmp_path):
        path = str(tmp_path / "not-a.journal")
        open(path, "w").write("garbage\n")
        with pytest.raises(JournalError, match="meta"):
            Simulator.recover(path)

    def test_missing_fault_model_rejected(self, rng, machine2, tmp_path):
        js = _make_js(rng)
        path = str(tmp_path / "run.journal")
        sim = Simulator(
            machine2,
            KRad(),
            js.fresh_copy(),
            fault_model=TaskFailures(0.1, seed=7),
            journal=Journal(path, checkpoint_every=3, fsync=False),
        )
        assert sim.run_until(5) is None
        sim._journal.close()
        with pytest.raises(JournalError, match="fault model"):
            Simulator.recover(path)

    def test_replay_divergence_detected(self, rng, machine2, tmp_path):
        """Tampering with a step digest (without breaking the CRC frame)
        must be caught by replay verification."""
        path = self._crashed_journal(rng, machine2, tmp_path)
        from repro.sim.journal import _frame_crc

        raw = open(path, "rb").read().splitlines(keepends=True)
        fixed = []
        for line in raw:
            doc = json.loads(line)
            if doc["type"] == "step" and doc["data"]["t"] == 5:
                doc["data"]["digest"] = (doc["data"]["digest"] + 1) % 2**32
                doc["crc"] = _frame_crc(
                    doc["seq"], doc["type"], doc["data"]
                )
                line = (
                    json.dumps(doc, separators=(",", ":")) + "\n"
                ).encode()
            fixed.append(line)
        open(path, "wb").write(b"".join(fixed))
        with pytest.raises(JournalError, match="diverged"):
            Simulator.recover(path, fsync=False)
