"""Unit tests for the structured DAG builders."""

import numpy as np
import pytest

from repro.dag import builders
from repro.errors import DagError


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestChain:
    def test_chain_structure(self):
        dag = builders.chain([0, 1, 0], 2)
        assert dag.num_vertices == 3
        assert dag.num_edges == 2
        assert dag.span() == 3
        assert dag.work_vector().tolist() == [2, 1]

    def test_empty_chain(self):
        dag = builders.chain([], 1)
        assert dag.num_vertices == 0

    def test_single_vertex_chain(self):
        dag = builders.chain([0], 1)
        assert dag.span() == 1


class TestIndependentTasks:
    def test_counts_become_work(self):
        dag = builders.independent_tasks([3, 0, 2])
        assert dag.work_vector().tolist() == [3, 0, 2]
        assert dag.num_edges == 0
        assert dag.span() == 1

    def test_all_zero_counts(self):
        dag = builders.independent_tasks([0, 0])
        assert dag.num_vertices == 0


class TestForkJoin:
    def test_basic_shape(self):
        dag = builders.fork_join(4, body_category=0, num_categories=1)
        assert dag.num_vertices == 6  # fork + 4 bodies + join
        assert dag.num_edges == 8
        assert dag.span() == 3

    def test_heterogeneous_fork_join(self):
        dag = builders.fork_join(
            3, body_category=1, num_categories=2,
            fork_category=0, join_category=0,
        )
        assert dag.work_vector().tolist() == [2, 3]

    def test_width_validation(self):
        with pytest.raises(DagError):
            builders.fork_join(0, 0, 1)


class TestMultiPhaseForkJoin:
    def test_phases_chain(self):
        dag = builders.multi_phase_fork_join([(0, 2), (1, 3)], 2)
        # per phase: fork + width + join
        assert dag.num_vertices == (2 + 2) + (2 + 3)
        assert dag.span() == 6  # 3 per phase
        assert dag.work_vector().tolist() == [4, 5]

    def test_requires_a_phase(self):
        with pytest.raises(DagError):
            builders.multi_phase_fork_join([], 1)

    def test_zero_width_phase_rejected(self):
        with pytest.raises(DagError):
            builders.multi_phase_fork_join([(0, 0)], 1)


class TestPipeline:
    def test_vertex_count_and_span(self):
        dag = builders.pipeline([0, 1], items=3, num_categories=2)
        assert dag.num_vertices == 6
        # span = items + stages - 1 (the wavefront diagonal)
        assert dag.span() == 4

    def test_single_stage_is_a_chain(self):
        dag = builders.pipeline([0], items=4, num_categories=1)
        assert dag.span() == 4
        assert dag.num_edges == 3

    def test_category_assignment(self):
        dag = builders.pipeline([0, 1, 0], items=2, num_categories=2)
        assert dag.work_vector().tolist() == [4, 2]

    def test_validation(self):
        with pytest.raises(DagError):
            builders.pipeline([0], items=0, num_categories=1)
        with pytest.raises(DagError):
            builders.pipeline([], items=1, num_categories=1)


class TestSeriesParallel:
    def test_depth_zero_is_single_vertex(self, rng):
        dag = builders.series_parallel(0, 2, 3, rng)
        assert dag.num_vertices == 1

    def test_acyclic_and_valid(self, rng):
        for _ in range(10):
            dag = builders.series_parallel(4, 3, 2, rng)
            dag.validate()
            assert dag.span() >= 1

    def test_parameter_validation(self, rng):
        with pytest.raises(DagError):
            builders.series_parallel(-1, 2, 1, rng)
        with pytest.raises(DagError):
            builders.series_parallel(1, 0, 1, rng)


class TestDiamondMesh:
    def test_shape(self):
        dag = builders.diamond_mesh(3, 4, 2)
        assert dag.num_vertices == 12
        # span = rows + cols - 1
        assert dag.span() == 6

    def test_categories_alternate_by_antidiagonal(self):
        dag = builders.diamond_mesh(2, 2, 2)
        assert dag.categories().tolist() == [0, 1, 1, 0]

    def test_validation(self):
        with pytest.raises(DagError):
            builders.diamond_mesh(0, 1, 1)


class TestLayeredRandom:
    def test_layer_count_bounds_span(self, rng):
        dag = builders.layered_random(5, 4, 2, rng, width_jitter=False)
        assert dag.span() == 5  # every vertex has a predecessor in prev layer

    def test_every_nonfirst_vertex_has_predecessor(self, rng):
        dag = builders.layered_random(4, 6, 3, rng, edge_probability=0.0)
        depth = dag.depth_from_source()
        # with p=0 each vertex still gets exactly one forced predecessor
        assert depth.max() == 4

    def test_validation(self, rng):
        with pytest.raises(DagError):
            builders.layered_random(0, 1, 1, rng)
        with pytest.raises(DagError):
            builders.layered_random(1, 1, 1, rng, edge_probability=1.5)

    def test_deterministic_given_seed(self):
        a = builders.layered_random(4, 4, 2, np.random.default_rng(3))
        b = builders.layered_random(4, 4, 2, np.random.default_rng(3))
        assert list(a.edges()) == list(b.edges())
        assert a.categories().tolist() == b.categories().tolist()


class TestFigure1:
    def test_documented_properties(self):
        dag = builders.figure1_job()
        dag.validate()
        assert dag.num_categories == 3
        assert dag.work_vector().tolist() == [3, 3, 2]
        assert dag.span() == 4
        assert dag.num_vertices == 8
