"""Public API surface tests: everything exported actually resolves."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_is_semver_ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.dag",
            "repro.jobs",
            "repro.machine",
            "repro.schedulers",
            "repro.sim",
            "repro.theory",
            "repro.analysis",
            "repro.viz",
            "repro.io",
            "repro.perf",
            "repro.feedback",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} needs a module docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"


class TestRegistriesConsistent:
    def test_cli_descriptions_cover_registry(self):
        from repro.cli import _DESCRIPTIONS
        from repro.experiments import REGISTRY

        assert set(_DESCRIPTIONS) == set(REGISTRY)

    def test_scheduler_names_unique(self):
        from repro.schedulers import _REGISTRY

        assert len(_REGISTRY) == len({cls.name for cls in _REGISTRY.values()})

    def test_every_scheduler_instantiable_and_resettable(self):
        from repro.machine import KResourceMachine
        from repro.schedulers import _REGISTRY

        machine = KResourceMachine((2, 2))
        for name, cls in _REGISTRY.items():
            if name == "rad":
                continue  # K = 1 only
            sched = cls()
            sched.reset(machine)
            assert sched.machine is machine


class TestDocstrings:
    def test_public_classes_documented(self):
        from repro import (
            DagJob,
            JobSet,
            KRad,
            KResourceMachine,
            PhaseJob,
            SimulationResult,
            Simulator,
        )

        for obj in (
            DagJob,
            JobSet,
            KRad,
            KResourceMachine,
            PhaseJob,
            SimulationResult,
            Simulator,
        ):
            assert obj.__doc__ and len(obj.__doc__) > 20
