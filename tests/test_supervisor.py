"""Supervised execution: invariant monitors, strict/resilient modes,
quarantine, and incident persistence through checkpoint/restore."""

import pytest

from repro.errors import InvariantViolation, SerializationError, SimulationError
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.machine.churn import ChurnEvent, ChurnSchedule
from repro.schedulers import KRad, KRoundRobin
from repro.sim import (
    CheckpointDeterminismMonitor,
    FeasibilityMonitor,
    Incident,
    RadBatchingMonitor,
    ScriptedViolation,
    Simulator,
    StepView,
    Supervisor,
    Violation,
    WorkConservationMonitor,
    default_monitors,
    simulate,
)
from repro.sim.supervisor import monitor_from_spec


def _view(
    *,
    t=1,
    capacities=(4, 2),
    desires=None,
    allotments=None,
    scheduler=None,
    checkpoint=None,
):
    return StepView(
        t=t,
        capacities=tuple(capacities),
        nominal_capacities=tuple(capacities),
        desires=desires or {},
        allotments=allotments or {},
        executed={},
        scheduler=scheduler,
        checkpoint=checkpoint,
    )


class TestFeasibilityMonitor:
    def test_clean_step_passes(self):
        m = FeasibilityMonitor()
        view = _view(
            desires={0: [3, 1], 1: [2, 1]},
            allotments={0: [2, 1], 1: [2, 1]},
        )
        assert m.check(view) == []

    def test_allotment_above_desire_flagged(self):
        m = FeasibilityMonitor()
        view = _view(desires={0: [1, 0]}, allotments={0: [2, 0]})
        out = m.check(view)
        assert out and out[0].job_id == 0 and out[0].category == 0

    def test_overfull_category_blames_largest_allotment(self):
        m = FeasibilityMonitor()
        view = _view(
            capacities=(3, 2),
            desires={0: [3, 0], 1: [2, 0]},
            allotments={0: [3, 0], 1: [2, 0]},
        )
        out = [v for v in m.check(view) if "exceeds" in v.message]
        assert out and out[0].job_id == 0 and out[0].category == 0


class TestWorkConservationMonitor:
    def test_starved_job_with_idle_processors_flagged(self):
        m = WorkConservationMonitor()
        view = _view(
            capacities=(4, 2),
            desires={0: [3, 0], 1: [2, 0]},
            allotments={0: [1, 0], 1: [1, 0]},  # 2 idle, both starved
        )
        out = m.check(view)
        assert len(out) == 1  # one witness per category suffices
        assert out[0].category == 0

    def test_saturated_category_passes(self):
        m = WorkConservationMonitor()
        view = _view(
            capacities=(2, 2),
            desires={0: [3, 0]},
            allotments={0: [2, 0]},
        )
        assert m.check(view) == []


class TestRadBatchingMonitor:
    def test_inert_without_category_state(self):
        m = RadBatchingMonitor()
        view = _view(scheduler=object())
        assert m.check(view) == []

    def test_saturation_breach_flagged(self):
        m = RadBatchingMonitor()

        class FakeState:
            def in_rr_cycle(self):
                return False

        class FakeRad:
            def category_state(self, alpha):
                return FakeState()

        view = _view(
            capacities=(2,),
            desires={0: [1], 1: [1], 2: [1]},
            allotments={0: [1]},  # 3 active >= P=2 but only 1 allotted
            scheduler=FakeRad(),
        )
        out = m.check(view)
        assert out and "saturation" in out[0].message

    def test_multi_processor_allotment_in_open_cycle_flagged(self):
        m = RadBatchingMonitor()

        class FakeState:
            def in_rr_cycle(self):
                return True

        class FakeRad:
            def category_state(self, alpha):
                return FakeState()

        view = _view(
            capacities=(2,),
            desires={0: [2]},
            allotments={0: [2]},
            scheduler=FakeRad(),
        )
        out = m.check(view)
        assert out and out[0].job_id == 0


class TestCheckpointDeterminismMonitor:
    def test_identical_snapshots_pass(self):
        m = CheckpointDeterminismMonitor(period=1)
        view = _view(checkpoint=lambda: {"a": 1})
        assert m.check(view) == []

    def test_nondeterministic_snapshot_flagged(self):
        m = CheckpointDeterminismMonitor(period=1)
        counter = iter(range(100))
        view = _view(checkpoint=lambda: {"a": next(counter)})
        out = m.check(view)
        assert out and "not deterministic" in out[0].message

    def test_off_period_steps_skipped(self):
        m = CheckpointDeterminismMonitor(period=10)
        counter = iter(range(100))
        view = _view(t=3, checkpoint=lambda: {"a": next(counter)})
        assert m.check(view) == []

    def test_period_validated(self):
        with pytest.raises(SimulationError):
            CheckpointDeterminismMonitor(period=0)


class TestSupervisorModes:
    def test_strict_raises_with_context(self):
        sup = Supervisor(
            [ScriptedViolation(step=2, job_id=7, category=1)],
            mode="strict",
        )
        view = _view(t=2, desires={7: [1, 0]})
        with pytest.raises(InvariantViolation) as exc:
            sup.observe(view)
        assert exc.value.step == 2
        assert exc.value.monitor == "scripted-violation"
        assert exc.value.job_id == 7
        assert exc.value.category == 1

    def test_resilient_returns_violations(self):
        sup = Supervisor(
            [ScriptedViolation(step=2, job_id=7)], mode="resilient"
        )
        out = sup.observe(_view(t=2, desires={7: [1, 0]}))
        assert len(out) == 1
        assert isinstance(out[0], Violation)

    def test_bad_mode_rejected(self):
        with pytest.raises(SimulationError):
            Supervisor(mode="lenient")

    def test_default_monitor_set(self):
        names = [m.name for m in default_monitors()]
        assert names == [
            "feasibility",
            "work-conservation",
            "rad-batching",
        ]

    def test_dict_round_trip(self):
        sup = Supervisor(
            [
                FeasibilityMonitor(),
                CheckpointDeterminismMonitor(period=7),
                ScriptedViolation(step=3, job_id=1, category=1),
            ],
            mode="strict",
        )
        clone = Supervisor.from_dict(sup.to_dict())
        assert clone.mode == "strict"
        assert [m.spec() for m in clone.monitors] == [
            m.spec() for m in sup.monitors
        ]

    def test_from_dict_rejects_bad_documents(self):
        with pytest.raises(SerializationError):
            Supervisor.from_dict({"format": "jobset"})
        doc = Supervisor().to_dict()
        doc["version"] = 9
        with pytest.raises(SerializationError):
            Supervisor.from_dict(doc)
        with pytest.raises(SimulationError):
            monitor_from_spec({"kind": "no-such-monitor"})


class TestSupervisedRuns:
    def test_clean_krad_run_has_no_incidents(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=20)
        r = simulate(
            machine2,
            KRad(),
            js,
            supervisor=Supervisor(mode="strict"),
        )
        assert r.incidents == ()
        assert r.quarantined_jobs == ()
        assert len(r.completion_times) == len(js)

    def test_clean_run_under_churn_has_no_incidents(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 10, size_hint=20)
        churn = ChurnSchedule(
            (4, 2),
            [
                ChurnEvent(step=3, category=0, delta=-3, duration=4),
                ChurnEvent(step=5, category=1, delta=2),
            ],
        )
        r = simulate(
            machine2,
            KRad(),
            js,
            churn=churn,
            supervisor=Supervisor(mode="strict"),
        )
        assert r.incidents == ()

    def test_round_robin_caught_non_work_conserving(self, rng, machine2):
        """The monitor catches a *real* scheduler, not just fakes: plain
        round-robin hands each job one processor and leaves the rest idle
        even when desires are unmet."""
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=15)
        with pytest.raises(InvariantViolation) as exc:
            simulate(
                machine2,
                KRoundRobin(),
                js,
                supervisor=Supervisor(
                    [WorkConservationMonitor()], mode="strict"
                ),
            )
        assert exc.value.monitor == "work-conservation"

    def test_round_robin_feasible_under_supervision(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=15)
        r = simulate(
            machine2,
            KRoundRobin(),
            js,
            supervisor=Supervisor([FeasibilityMonitor()], mode="strict"),
        )
        assert r.incidents == ()

    def test_strict_mode_stops_the_run(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=15)
        sup = Supervisor(
            default_monitors() + [ScriptedViolation(step=2, job_id=0)],
            mode="strict",
        )
        with pytest.raises(InvariantViolation) as exc:
            simulate(machine2, KRad(), js, supervisor=sup)
        assert exc.value.step == 2
        assert exc.value.job_id == 0

    def test_resilient_mode_quarantines_only_offender(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=15)
        sup = Supervisor(
            default_monitors() + [ScriptedViolation(step=2, job_id=4)],
            mode="resilient",
        )
        r = simulate(machine2, KRad(), js, supervisor=sup)
        assert r.quarantined_jobs == (4,)
        assert 4 not in r.completion_times
        # every other job still completes
        assert len(r.completion_times) == len(js) - 1
        assert [i.action for i in r.incidents] == ["quarantined"]
        assert r.incidents[0].monitor == "scripted-violation"
        assert r.incidents[0].step == 2
        assert "quarantined=1" in r.summary()

    def test_quarantine_all_jobs_terminates(self, rng):
        """A run whose every job is quarantined must end, not stall."""
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 2, size_hint=30)
        sup = Supervisor(
            [
                ScriptedViolation(step=1, job_id=0),
                ScriptedViolation(step=1, job_id=1),
            ],
            mode="resilient",
        )
        r = simulate(machine, KRad(), js, supervisor=sup)
        assert sorted(r.quarantined_jobs) == [0, 1]
        assert r.completion_times == {}

    def test_incident_round_trips_through_checkpoint(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=15)
        sup = Supervisor(
            default_monitors() + [ScriptedViolation(step=2, job_id=0)],
            mode="resilient",
        )

        def make_sim():
            return Simulator(
                machine2, KRad(), js.fresh_copy(), supervisor=sup
            )

        ref = make_sim().run()
        sim = make_sim()
        assert sim.run_until(4) is None
        snap = sim.checkpoint()
        resumed = Simulator.restore(snap, KRad(), supervisor=sup).run()
        assert resumed.quarantined_jobs == ref.quarantined_jobs
        assert [i.to_dict() for i in resumed.incidents] == [
            i.to_dict() for i in ref.incidents
        ]
        assert resumed.makespan == ref.makespan

    def test_supervisor_presence_must_match_on_restore(
        self, rng, machine2
    ):
        js = workloads.random_dag_jobset(rng, 2, 4, size_hint=12)
        sim = Simulator(
            machine2, KRad(), js.fresh_copy(), supervisor=Supervisor()
        )
        assert sim.run_until(2) is None
        snap = sim.checkpoint()
        with pytest.raises(SimulationError, match="supervisor"):
            Simulator.restore(snap, KRad())


class TestIncidentSerialization:
    def test_round_trip(self):
        inc = Incident(
            step=4,
            monitor="feasibility",
            message="boom",
            job_id=2,
            category=1,
            action="quarantined",
        )
        assert Incident.from_dict(inc.to_dict()) == inc

    def test_none_fields_preserved(self):
        inc = Incident(step=1, monitor="m", message="x")
        clone = Incident.from_dict(inc.to_dict())
        assert clone.job_id is None
        assert clone.category is None
        assert clone.action == "logged"
