"""Chaos suite: the service under seeded wire faults, SIGKILL, and
watchdog self-healing.

Two layers of acceptance:

* **In-process conformance** — a ThreadedServer behind a chaos transport
  (drops, delays, corruptions, disconnects on both sides of the wire),
  clients retrying under a budget with idempotency tokens, duplicate
  submissions on purpose — and the drained result must still be
  *bit-identical* (digest and response times) to a clean batch
  ``simulate()`` of the effective jobset, on both engines.
* **Supervised E2E** — ``krad serve --supervised`` with chaos flags,
  sustained multi-tenant load, SIGKILL of the serving child mid-run,
  watchdog auto-restart through journal recovery; every acknowledged
  submission appears exactly once, the circuit breaker is observed
  opening and re-closing, and the final digest matches batch.

Every chaos test prints its fault schedule (pytest shows it on failure),
so any failing run is reproducible from the log alone.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro import JobSet, KResourceMachine, scheduler_by_name
from repro.errors import DeadlineExceeded, ServiceError
from repro.io.serialize import job_snapshot_from_dict
from repro.jobs import workloads
from repro.obs import Observability, parse_prometheus_text
from repro.service import (
    ChaosConfig,
    ChaosSchedule,
    CircuitBreaker,
    ResilienceConfig,
    RetryBudget,
    SchedulingService,
    ServiceClient,
    ServiceConfig,
    ThreadedServer,
    fetch_healthz,
    fetch_metrics_text,
)
from repro.sim.engine import engine_class
from repro.sim.journal import read_journal

CAPS = (6, 3, 2)


def _jobs(seed, n, k=3):
    rng = np.random.default_rng(seed)
    return list(
        workloads.random_phase_jobset(
            rng, k, n, max_phases=3, max_work=16
        ).jobs
    )


def _batch_digest(engine, journal, seed):
    """Clean batch run of the journal's effective jobset; returns
    (digest, result)."""
    records, _, _ = read_journal(journal)
    batch_jobs = [
        job_snapshot_from_dict(rec.data["job"])
        for rec in records
        if rec.type == "submit"
    ]
    sim = engine_class(engine)(
        KResourceMachine(CAPS),
        scheduler_by_name("k-rad"),
        JobSet(batch_jobs, num_categories=len(CAPS)),
        seed=seed,
    )
    result = sim.run()
    return int(sim.digest()), result, len(batch_jobs)


def _drain_with_retries(address, tries=20):
    """Drain through a lossy wire: drain is idempotent, so just retry
    until a summary makes it back."""
    last = None
    for _ in range(tries):
        try:
            with ServiceClient(address, timeout=10.0) as cli:
                return cli.drain()
        except ServiceError as exc:
            last = exc
            time.sleep(0.05)
    raise AssertionError(f"drain never answered: {last}")


# ----------------------------------------------------------------------
# in-process conformance under chaos
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_chaos_conformance_matches_batch(engine, tmp_path):
    """Drops, delays, corruptions and disconnects on both sides of the
    wire, plus deliberate duplicate submissions — and the drained
    service is still digest-identical to a clean batch run."""
    journal = str(tmp_path / "svc.journal")
    cfg = ServiceConfig(
        capacities=CAPS,
        seed=11,
        engine=engine,
        journal_path=journal,
        fsync=False,
        tenant_quota=64,
        max_in_flight=256,
    )
    svc = SchedulingService(cfg, obs=Observability())
    server_chaos = ChaosSchedule(
        ChaosConfig(
            seed=101,
            drop_rate=0.15,
            delay_rate=0.15,
            max_delay_s=0.01,
            corrupt_rate=0.08,
            disconnect_rate=0.08,
        )
    )
    client_chaos = ChaosSchedule(
        ChaosConfig(
            seed=202,
            drop_rate=0.1,
            disconnect_rate=0.1,
        )
    )
    # pytest captures this; it is shown only when the test fails
    print("server chaos plan:\n" + server_chaos.describe(200))
    print("client chaos plan:\n" + client_chaos.describe(200))

    jobs = _jobs(20, 24)
    acks = []
    dupes = []
    with ThreadedServer(svc, metrics_port=0, chaos=server_chaos) as ts:
        cli = ServiceClient(
            ts.address,
            timeout=1.0,
            retry=RetryBudget(
                max_attempts=60,
                max_elapsed_s=60.0,
                base_backoff_s=0.005,
                max_backoff_s=0.1,
                seed=1,
            ),
            chaos=client_chaos,
        )
        tokens = [f"job-{i}" for i in range(len(jobs))]
        for i, job in enumerate(jobs):
            acks.append(
                cli.submit(f"tenant-{i % 3}", job, token=tokens[i])
            )
            if i % 5 == 0:
                # resubmit an already-acknowledged token: must come back
                # as the original ack, never a second admission
                dupes.append(
                    cli.submit(f"tenant-{i % 3}", job, token=tokens[i])
                )
        cli.close()

        # a mid-run disconnect from the client side: new connection, the
        # service state carries over
        with ServiceClient(ts.address, timeout=10.0) as cli2:
            stats = cli2.stats()
        assert stats["accepted"] == len(jobs)
        assert stats["duplicates"] >= len(dupes)

        summary = _drain_with_retries(ts.address)

    assert all(a["ok"] for a in acks)
    ids = [a["job_id"] for a in acks]
    assert len(set(ids)) == len(jobs), "a retry was double-admitted"
    for d in dupes:
        assert d["duplicate"] is True
        assert d["job_id"] in ids

    assert summary["completed"] == len(jobs)
    digest, batch, n_journaled = _batch_digest(engine, journal, seed=11)
    assert n_journaled == len(jobs), "journal admitted a duplicate"
    assert digest == summary["digest"]
    assert batch.makespan == summary["makespan"]
    # dict keys come back as strings from the JSON wire
    assert {int(j): int(t) for j, t in batch.completion_times.items()} == {
        int(k): int(v) for k, v in summary["completions"].items()
    }


def test_chaos_both_engines_same_jobset_same_digest(tmp_path):
    """The two engines drained under (different) chaos agree with each
    other batch-for-batch on the same submitted jobset."""
    digests = {}
    for engine in ("reference", "fast"):
        journal = str(tmp_path / f"{engine}.journal")
        cfg = ServiceConfig(
            capacities=CAPS,
            seed=7,
            engine=engine,
            journal_path=journal,
            fsync=False,
        )
        svc = SchedulingService(cfg, obs=Observability())
        chaos = ChaosSchedule(
            ChaosConfig(seed=9, drop_rate=0.2, disconnect_rate=0.1)
        )
        print(f"{engine} chaos plan:\n" + chaos.describe(100))
        with ThreadedServer(svc, chaos=chaos) as ts:
            with ServiceClient(
                ts.address,
                timeout=1.0,
                retry=RetryBudget(
                    max_attempts=60,
                    max_elapsed_s=60.0,
                    base_backoff_s=0.005,
                    seed=2,
                ),
            ) as cli:
                for i, job in enumerate(_jobs(30, 8)):
                    assert cli.submit("t", job)["ok"]
            summary = _drain_with_retries(ts.address)
        digests[engine] = (
            summary["makespan"],
            tuple(sorted(summary["completions"].items())),
        )
    assert digests["reference"] == digests["fast"]


# ----------------------------------------------------------------------
# network partitions, both directions of the wire
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize(
    "direction", ["client-to-server", "server-to-client"]
)
def test_partition_heals_mid_retry_budget(engine, direction):
    """A partition window on either side of the wire: requests (client
    side) or responses (server side) vanish for the first W messages,
    the window closes while the retry budget still has attempts left,
    and every submission lands exactly once."""
    window = (0, 6)
    chaos = ChaosSchedule(ChaosConfig(seed=3, partitions=(window,)))
    print(f"{direction} partition plan:\n" + chaos.describe(20))
    cfg = ServiceConfig(capacities=CAPS, seed=13, engine=engine)
    svc = SchedulingService(cfg, obs=Observability())
    server_chaos = chaos if direction == "server-to-client" else None
    client_chaos = chaos if direction == "client-to-server" else None
    jobs = _jobs(40, 4)
    with ThreadedServer(svc, chaos=server_chaos) as ts:
        with ServiceClient(
            ts.address,
            timeout=1.0,
            retry=RetryBudget(
                max_attempts=30,
                max_elapsed_s=30.0,
                base_backoff_s=0.005,
                max_backoff_s=0.05,
                seed=4,
            ),
            chaos=client_chaos,
        ) as cli:
            acks = [cli.submit("t", job) for job in jobs]
        summary = _drain_with_retries(ts.address)

    # healed mid-budget: every submit eventually acked, exactly once
    assert all(a["ok"] for a in acks)
    assert len({a["job_id"] for a in acks}) == len(jobs)
    assert summary["completed"] == len(jobs)
    # the partition genuinely ate the whole window — message indices
    # inside it were assigned and dropped, then traffic flowed
    assert chaos.injected["drop"] == window[1] - window[0]
    assert chaos.messages > window[1]
    if direction == "server-to-client":
        # server-side drops answer after processing: the retries were
        # deduplicated by their idempotency tokens, never re-admitted
        assert svc.stats()["duplicates"] >= 1
    assert svc.stats()["accepted"] == len(jobs)


# ----------------------------------------------------------------------
# degradation ladder surfaced end to end
# ----------------------------------------------------------------------
class TestDegradation:
    def _serve(self, svc):
        return ThreadedServer(svc, metrics_port=0)

    def test_healthz_503_names_shedding_state(self):
        cfg = ServiceConfig(
            capacities=(4, 2),
            max_in_flight=4,
            resilience=ResilienceConfig(shed_depth_frac=0.5),
        )
        svc = SchedulingService(cfg, obs=Observability())
        with self._serve(svc) as ts:
            status, doc = fetch_healthz(ts.metrics_address)
            assert (status, doc["state"]) == (200, "healthy")
            with ServiceClient(ts.address) as cli:
                for job in _jobs(1, 2, k=2):
                    assert cli.submit("t", job)["ok"]
                status, doc = fetch_healthz(ts.metrics_address)
                assert status == 503
                assert doc["state"] == "shedding"
                assert doc["ok"] is False
                # admission refuses with the state as the reason
                rej = cli.submit("t", _jobs(2, 1, k=2)[0])
                assert not rej["ok"]
                assert rej["reason"] == "shedding"
                assert rej["retry_after"] >= 1
                # the gauge agrees with the ladder
                live = parse_prometheus_text(
                    fetch_metrics_text(ts.metrics_address)
                )
                assert live["krad_service_state"] == 2.0
                assert (
                    live['krad_service_state_info{state="shedding"}']
                    == 1.0
                )

    def test_read_only_refuses_submit_and_cancel(self):
        cfg = ServiceConfig(capacities=(4, 2))
        svc = SchedulingService(cfg, obs=Observability())
        ack = svc.submit("t", _jobs(3, 1, k=2)[0])
        assert ack["ok"]
        svc.set_read_only(True)
        assert svc.service_state() == "read-only"
        rej = svc.submit("t", _jobs(4, 1, k=2)[0])
        assert (rej["ok"], rej["reason"]) == (False, "read-only")
        can = svc.cancel(ack["job_id"])
        assert (can["ok"], can["reason"]) == (False, "read-only")
        svc.set_read_only(False)
        assert svc.service_state() == "healthy"
        assert svc.cancel(ack["job_id"])["ok"]

    def test_draining_healthz_and_state_change_metrics(self):
        cfg = ServiceConfig(capacities=(4, 2))
        svc = SchedulingService(cfg, obs=Observability())
        with self._serve(svc) as ts:
            with ServiceClient(ts.address) as cli:
                assert cli.submit("t", _jobs(5, 1, k=2)[0])["ok"]
                cli.drain()
                status, doc = fetch_healthz(ts.metrics_address)
                assert status == 503
                assert doc["state"] == "draining"
                live = parse_prometheus_text(
                    fetch_metrics_text(ts.metrics_address)
                )
                assert live["krad_service_state"] == 4.0
                assert live["krad_service_state_changes_total"] >= 1.0
                assert (
                    live['krad_state_transitions_total{state="draining"}']
                    >= 1.0
                )

    def test_fetch_metrics_text_names_http_status(self):
        # A non-200 from the metrics endpoint must surface the status
        # and body, not masquerade as a socket failure.
        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                body = json.dumps({"state": "shedding"}).encode()
                self.send_response(503)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *a):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        try:
            with pytest.raises(ServiceError, match="HTTP 503") as exc:
                fetch_metrics_text(
                    ("127.0.0.1", httpd.server_address[1])
                )
            assert "shedding" in str(exc.value)
        finally:
            httpd.shutdown()

    def test_fetch_hung_endpoint_raises_typed_deadline(self):
        # An endpoint that accepts the connection but never answers is
        # worse than a dead one: both fetchers must give up after their
        # timeout with a typed DeadlineExceeded naming the op, never
        # block a monitoring loop indefinitely.
        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                time.sleep(30)  # far past any test timeout

            def log_message(self, *a):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        address = ("127.0.0.1", httpd.server_address[1])
        try:
            for fetch, op in (
                (fetch_metrics_text, "fetch_metrics_text"),
                (fetch_healthz, "fetch_healthz"),
            ):
                start = time.monotonic()
                with pytest.raises(DeadlineExceeded) as exc:
                    fetch(address, timeout=0.2)
                elapsed = time.monotonic() - start
                assert elapsed < 5.0, "timeout did not bound the read"
                assert exc.value.op == op
                assert exc.value.elapsed == pytest.approx(0.2)
        finally:
            httpd.shutdown()

    def test_submit_blocking_bounded_by_typed_deadline(self):
        # An always-full service: submit_blocking must give up with a
        # typed DeadlineExceeded carrying attempts, never spin forever.
        cfg = ServiceConfig(
            capacities=(4, 2), max_in_flight=1, tenant_quota=1
        )
        svc = SchedulingService(cfg, obs=Observability())
        # a glacial ticker: the admitted job never completes, so the
        # tenant quota stays exhausted for the whole test
        with ThreadedServer(svc, tick_interval=3600.0) as ts:
            with ServiceClient(ts.address) as cli:
                assert cli.submit("t", _jobs(6, 1, k=2)[0])["ok"]
                with pytest.raises(DeadlineExceeded) as exc:
                    cli.submit_blocking(
                        "t",
                        _jobs(7, 1, k=2)[0],
                        max_tries=3,
                        backoff=0.001,
                    )
                assert exc.value.attempts == 3
                assert exc.value.elapsed >= 0.0
                assert "backpressure" in (exc.value.last_error or "")


# ----------------------------------------------------------------------
# the supervised chaos acceptance scenario
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_supervised_chaos_sigkill_acceptance(engine, tmp_path):
    """Sustained multi-tenant load through a chaos transport while the
    serving process is SIGKILLed mid-run and the watchdog restarts it
    through journal recovery: every acknowledged submission appears
    exactly once, the breaker opens and re-closes, and the final digest
    matches a clean batch run."""
    journal = str(tmp_path / "svc.journal")
    port = 7000 + (os.getpid() + (0 if engine == "reference" else 1)) % 2000
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH", ""),
        ]
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--capacities", ",".join(str(c) for c in CAPS),
            "--seed", "11",
            "--engine", engine,
            "--journal", journal,
            "--port", str(port),
            "--tenant-quota", "64",
            "--max-in-flight", "256",
            "--supervised",
            "--hang-timeout", "2",
            "--max-restarts", "3",
            "--recovery-deadline", "20",
            "--chaos-seed", "31",
            "--chaos-drop", "0.1",
            "--chaos-delay", "0.1",
            "--chaos-delay-ms", "5",
            "--chaos-disconnect", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    lines: list[str] = []

    def _reader():
        for line in proc.stdout:
            lines.append(line.rstrip())

    reader = threading.Thread(target=_reader, daemon=True)
    reader.start()

    def wait_for(substr, timeout=30, n=1):
        t0 = time.monotonic()
        while time.monotonic() - t0 < timeout:
            hits = [ln for ln in lines if substr in ln]
            if len(hits) >= n:
                return hits[n - 1]
            if proc.poll() is not None:
                raise AssertionError(
                    "supervisor exited early waiting for "
                    f"{substr!r}:\n" + "\n".join(lines)
                )
            time.sleep(0.05)
        raise AssertionError(
            f"timed out waiting for {substr!r}:\n" + "\n".join(lines)
        )

    address = ("127.0.0.1", port)
    try:
        pid_line = wait_for("watchdog: child pid")
        child_pid = int(pid_line.rsplit(maxsplit=1)[-1])
        wait_for("serving on")

        retry = RetryBudget(
            max_attempts=200,
            max_elapsed_s=90.0,
            base_backoff_s=0.01,
            max_backoff_s=0.25,
            seed=3,
        )

        def breaker_factory(on_transition):
            return CircuitBreaker(
                failure_threshold=3,
                reset_timeout_s=0.25,
                on_transition=on_transition,
            )

        cli = ServiceClient(
            address, timeout=3.0, retry=retry, breaker=breaker_factory
        )
        jobs = _jobs(20, 30)
        acks = []
        for i, job in enumerate(jobs[:12]):
            acks.append(cli.submit(f"tenant-{i % 3}", job))
        # SIGKILL the serving child mid-run, keep streaming: the client
        # rides the outage on its retry budget while the watchdog
        # restarts the service through journal recovery
        os.kill(child_pid, signal.SIGKILL)
        for i, job in enumerate(jobs[12:]):
            acks.append(cli.submit(f"tenant-{(i + 12) % 3}", job))
        wait_for("watchdog: restart")
        wait_for("resumed from journal", timeout=45)

        assert all(a["ok"] for a in acks)
        ids = [a["job_id"] for a in acks]
        assert len(set(ids)) == len(jobs), "a retry was double-admitted"

        # the breaker was observed opening and re-closing on the scrape
        local = parse_prometheus_text(cli.local_metrics_text())
        assert (
            local.get(
                'krad_circuit_transitions_total{op="submit",to="open"}',
                0,
            )
            >= 1.0
        )
        assert (
            local.get(
                'krad_circuit_transitions_total{op="submit",to="closed"}',
                0,
            )
            >= 1.0
        )
        assert local['krad_circuit_state{op="submit"}'] == 0.0
        cli.close()

        summary = _drain_with_retries(address)
        rc = proc.wait(timeout=60)
        assert rc == 0, "\n".join(lines)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()

    # exactly-once: the journal admitted each acknowledged submission
    # once, and the drained digest matches a clean batch run
    digest, batch, n_journaled = _batch_digest(engine, journal, seed=11)
    assert n_journaled == len(jobs)
    assert summary["completed"] == len(jobs)
    assert digest == summary["digest"]
    assert batch.makespan == summary["makespan"]
    assert {int(j): int(t) for j, t in batch.completion_times.items()} == {
        int(k): int(v) for k, v in summary["completions"].items()
    }
