"""Unit tests for RandomizedKRad."""

import numpy as np
import pytest

from repro.dag.lowerbound import figure3_instance
from repro.jobs import CP_LAST, JobSet, workloads
from repro.machine import KResourceMachine
from repro.schedulers import KRad, RandomizedKRad, check_allotments
from repro.sim import simulate, validate_schedule
from repro.theory import check_makespan_bound, check_theorem6


class TestRandomizedKRad:
    def test_allotments_valid_over_time(self):
        machine = KResourceMachine((3, 2))
        sched = RandomizedKRad(seed=1)
        sched.reset(machine)
        rng = np.random.default_rng(0)
        for t in range(1, 40):
            d = {
                i: rng.integers(0, 4, size=2).astype(np.int64)
                for i in range(6)
            }
            check_allotments(machine, d, sched.allocate(t, d))

    def test_deterministic_given_seed(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 8)
        a = simulate(machine2, RandomizedKRad(seed=5), js)
        b = simulate(machine2, RandomizedKRad(seed=5), js)
        assert a.completion_times == b.completion_times

    def test_different_seeds_differ_on_adversarial_instance(self):
        caps = (2, 2)
        inst = figure3_instance(4, caps)
        machine = KResourceMachine(caps)
        js = JobSet.from_dags(inst.dags)
        makespans = {
            simulate(
                machine, RandomizedKRad(seed=s), js, policy=CP_LAST
            ).makespan
            for s in range(8)
        }
        assert len(makespans) > 1  # randomization actually randomizes

    def test_expected_beats_deterministic_on_fig3(self):
        caps = (2, 2)
        inst = figure3_instance(4, caps)
        machine = KResourceMachine(caps)
        js = JobSet.from_dags(inst.dags)
        det = simulate(machine, KRad(), js, policy=CP_LAST).makespan
        assert det == inst.adversarial_makespan
        rand = [
            simulate(
                machine, RandomizedKRad(seed=s), js, policy=CP_LAST
            ).makespan
            for s in range(10)
        ]
        assert float(np.mean(rand)) < det

    def test_schedule_validity(self, machine2, rng):
        js = workloads.random_dag_jobset(rng, 2, 6)
        r = simulate(machine2, RandomizedKRad(seed=2), js, record_trace=True)
        validate_schedule(r.trace, js)

    def test_theorem_bounds_hold_per_realisation(self, machine2, rng):
        js = workloads.random_phase_jobset(rng, 2, 10)
        for s in range(5):
            r = simulate(machine2, RandomizedKRad(seed=s), js)
            assert check_makespan_bound(r, js, machine2).holds
            assert check_theorem6(r, js, machine2).holds

    def test_registry_name(self):
        from repro.schedulers import scheduler_by_name

        assert scheduler_by_name("k-rad-random").name == "k-rad-random"
