"""Documentation-drift guards.

A reproduction's documentation IS part of the artefact; these tests fail
when code and docs fall out of sync (new experiment not indexed, example
script not listed, promised doc file missing).
"""

import os
import re

import pytest

from repro.experiments import REGISTRY

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(path: str) -> str:
    with open(os.path.join(ROOT, path), encoding="utf-8") as fh:
        return fh.read()


class TestExperimentIndexing:
    def test_every_experiment_in_design_md(self):
        design = read("DESIGN.md")
        missing = [k for k in REGISTRY if k not in design]
        assert not missing, f"DESIGN.md misses experiment ids: {missing}"

    def test_every_experiment_in_experiments_md(self):
        text = read("EXPERIMENTS.md")
        # PERF is bench-only QA; everything else needs a section
        missing = [
            k for k in REGISTRY if k not in text and k != "PERF"
        ]
        assert not missing, f"EXPERIMENTS.md misses: {missing}"

    def test_cli_descriptions_nonempty(self):
        from repro.cli import _DESCRIPTIONS

        for key, desc in _DESCRIPTIONS.items():
            assert desc.strip(), f"empty CLI description for {key}"


class TestExamplesListed:
    def test_readme_lists_every_example(self):
        readme = read("README.md")
        examples_dir = os.path.join(ROOT, "examples")
        for name in sorted(os.listdir(examples_dir)):
            if name.endswith(".py"):
                assert name in readme, f"README.md misses examples/{name}"

    def test_every_example_has_docstring_and_main(self):
        examples_dir = os.path.join(ROOT, "examples")
        for name in sorted(os.listdir(examples_dir)):
            if not name.endswith(".py"):
                continue
            text = read(os.path.join("examples", name))
            assert text.lstrip().startswith(
                ("#!/usr/bin/env python3", '"""')
            ), name
            assert '"""' in text, f"{name} lacks a docstring"
            assert "def main()" in text, f"{name} lacks main()"
            assert '__name__ == "__main__"' in text, name


class TestPromisedDocsExist:
    @pytest.mark.parametrize(
        "path",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "CHANGELOG.md",
            "LICENSE",
            "CITATION.cff",
            "Makefile",
            "docs/MODEL.md",
            "docs/ALGORITHMS.md",
            "docs/REPRODUCING.md",
            "docs/THEORY.md",
            "docs/WORKLOADS.md",
            "docs/API.md",
        ],
    )
    def test_exists_and_nonempty(self, path):
        assert os.path.exists(os.path.join(ROOT, path)), path
        assert len(read(path)) > 100, f"{path} suspiciously short"

    def test_readme_links_resolve(self):
        readme = read("README.md")
        for target in re.findall(r"\]\(((?:docs/)?[A-Z_]+\.md)\)", readme):
            assert os.path.exists(
                os.path.join(ROOT, target)
            ), f"README links to missing {target}"


class TestBenchCoverage:
    def test_every_experiment_has_a_bench(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        bench_text = "".join(
            read(os.path.join("benchmarks", f))
            for f in os.listdir(bench_dir)
            if f.endswith(".py")
        )
        # each registered driver module must be exercised by some bench
        import repro.experiments as exps

        for key, fn in REGISTRY.items():
            module = fn.__module__.rsplit(".", 1)[-1]
            assert module in bench_text, (
                f"experiment {key} ({module}) has no bench"
            )


class TestRejectionReasonDocs:
    """The admission rejection vocabulary and its documentation must
    agree in both directions: an undocumented wire reason is unusable,
    a documented-but-dead one is a lie."""

    def _documented_reasons(self):
        text = read("docs/SERVICE.md")
        section = text.split("## Admission control", 1)[1]
        section = section.split("\n## ", 1)[0]
        return set(re.findall(r"\*\*`([a-z][a-z-]*)`\*\*", section))

    def test_every_reason_code_documented(self):
        from repro.service import REASON_CODES

        documented = self._documented_reasons()
        for code in REASON_CODES:
            assert code in documented, (
                f"reason {code!r} is in REASON_CODES but not in the "
                "docs/SERVICE.md admission-control list"
            )

    def test_every_documented_reason_exists(self):
        from repro.service import REASON_CODES, RejectionReason

        for name in self._documented_reasons():
            assert name in REASON_CODES, (
                f"docs/SERVICE.md documents reason {name!r} which is "
                "not in repro.service.REASON_CODES"
            )
        # the enum and the tuple are the same vocabulary
        assert set(REASON_CODES) == {r.value for r in RejectionReason}

    def test_fault_matrix_names_every_shard_fault_kind(self):
        from repro.service import SHARD_FAULT_KINDS

        text = read("docs/SERVICE.md")
        matrix = text.split("The fault matrix", 1)[1].split("\n\n", 2)[1]
        for kind in SHARD_FAULT_KINDS:
            assert kind in matrix, (
                f"shard fault kind {kind!r} missing from the "
                "docs/SERVICE.md fault matrix"
            )
