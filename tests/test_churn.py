"""Elastic processor churn: events, schedules, and scheduler migration.

Churn differs from the fault-injection capacity schedules in one crucial
way: it may *grow* a category past the nominal machine.  These tests pin
the event/schedule semantics, the engine integration (rebinds, boundary
notifications, envelope-sized traces), the forced RAD DEQ<->RR state
migrations, and the time-expanded-LB certificate.
"""

import numpy as np
import pytest

from repro.errors import SerializationError, SimulationError
from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.machine.churn import ChurnEvent, ChurnSchedule
from repro.schedulers import KRad
from repro.sim import Simulator, simulate, validate_schedule
from repro.sim.faults import periodic_outage
from repro.theory import bounds


class TestChurnEvent:
    def test_permanent_event_active_forever(self):
        ev = ChurnEvent(step=3, category=0, delta=-2)
        assert not ev.active_at(1)
        assert not ev.active_at(2)
        assert ev.active_at(3)
        assert ev.active_at(10_000)

    def test_transient_event_window(self):
        ev = ChurnEvent(step=3, category=1, delta=2, duration=4)
        assert not ev.active_at(2)
        assert ev.active_at(3)
        assert ev.active_at(6)  # live for exactly `duration` steps
        assert not ev.active_at(7)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ChurnEvent(step=0, category=0, delta=1)
        with pytest.raises(SimulationError):
            ChurnEvent(step=1, category=0, delta=0)
        with pytest.raises(SimulationError):
            ChurnEvent(step=1, category=0, delta=1, duration=0)

    def test_dict_round_trip(self):
        ev = ChurnEvent(step=5, category=1, delta=-3, duration=2)
        assert ChurnEvent.from_dict(ev.to_dict()) == ev
        perm = ChurnEvent(step=2, category=0, delta=4)
        assert ChurnEvent.from_dict(perm.to_dict()) == perm


class TestChurnSchedule:
    def test_capacities_sum_active_deltas(self):
        churn = ChurnSchedule(
            (4, 2),
            [
                ChurnEvent(step=2, category=0, delta=-1, duration=3),
                ChurnEvent(step=3, category=0, delta=-1),
                ChurnEvent(step=3, category=1, delta=2),
            ],
        )
        assert churn.capacities(1) == (4, 2)
        assert churn.capacities(2) == (3, 2)
        assert churn.capacities(3) == (2, 4)
        assert churn.capacities(5) == (3, 4)  # transient reverted

    def test_growth_past_nominal(self):
        churn = ChurnSchedule(
            (4, 2), [ChurnEvent(step=2, category=0, delta=8)]
        )
        assert churn.capacities(2) == (12, 2)
        assert churn.peak_capacities() == (12, 2)

    def test_removals_clamp_at_zero(self):
        churn = ChurnSchedule(
            (2,), [ChurnEvent(step=1, category=0, delta=-5)]
        )
        assert churn.capacities(1) == (0,)

    def test_breakpoints(self):
        churn = ChurnSchedule(
            (4, 2),
            [
                ChurnEvent(step=3, category=0, delta=-1, duration=4),
                ChurnEvent(step=5, category=1, delta=1),
            ],
        )
        assert churn.breakpoints() == (1, 3, 5, 7)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ChurnSchedule((0,), [])
        with pytest.raises(SimulationError):
            ChurnSchedule((4,), [ChurnEvent(step=1, category=1, delta=1)])
        with pytest.raises(SimulationError):
            ChurnSchedule((4,), ["not an event"])

    def test_dict_round_trip(self):
        churn = ChurnSchedule(
            (4, 2),
            [
                ChurnEvent(step=2, category=0, delta=-2, duration=3),
                ChurnEvent(step=4, category=1, delta=5),
            ],
        )
        clone = ChurnSchedule.from_dict(churn.to_dict())
        assert clone.nominal == churn.nominal
        assert clone.events == churn.events
        for t in range(1, 12):
            assert clone.capacities(t) == churn.capacities(t)

    def test_from_dict_rejects_bad_documents(self):
        with pytest.raises(SerializationError):
            ChurnSchedule.from_dict({"format": "jobset"})
        good = ChurnSchedule((4,), []).to_dict()
        good["version"] = 99
        with pytest.raises(SerializationError):
            ChurnSchedule.from_dict(good)


class TestEngineUnderChurn:
    def test_shrink_slows_but_completes(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=20)
        healthy = simulate(machine2, KRad(), js)
        churn = ChurnSchedule(
            (4, 2), [ChurnEvent(step=3, category=0, delta=-3)]
        )
        churned = simulate(machine2, KRad(), js, churn=churn)
        assert set(churned.completion_times) == set(
            healthy.completion_times
        )
        assert churned.makespan >= healthy.makespan

    def test_growth_never_hurts(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 10, size_hint=20)
        healthy = simulate(machine2, KRad(), js)
        churn = ChurnSchedule(
            (4, 2),
            [
                ChurnEvent(step=2, category=0, delta=4),
                ChurnEvent(step=2, category=1, delta=2),
            ],
        )
        grown = simulate(machine2, KRad(), js, churn=churn)
        assert grown.makespan <= healthy.makespan
        assert len(grown.completion_times) == len(js)

    def test_trace_sized_to_peak_envelope(self, rng, machine2):
        """Growth past nominal must fit in the recorded trace."""
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=20)
        churn = ChurnSchedule(
            (4, 2), [ChurnEvent(step=2, category=0, delta=6)]
        )
        r = simulate(machine2, KRad(), js, churn=churn, record_trace=True)
        assert r.trace.capacities == churn.peak_capacities()
        validate_schedule(r.trace, js)

    def test_transient_blackout_stalls_then_recovers(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.random_dag_jobset(rng, 1, 4, size_hint=12)
        churn = ChurnSchedule(
            (4,), [ChurnEvent(step=2, category=0, delta=-4, duration=3)]
        )
        r = simulate(machine, KRad(), js, churn=churn)
        assert len(r.completion_times) == len(js)
        assert r.stall_steps > 0

    def test_churned_run_is_deterministic(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=20)
        churn = ChurnSchedule(
            (4, 2),
            [
                ChurnEvent(step=2, category=0, delta=-2, duration=2),
                ChurnEvent(step=5, category=1, delta=3),
            ],
        )
        r1 = simulate(machine2, KRad(), js, churn=churn)
        r2 = simulate(machine2, KRad(), js, churn=churn)
        assert r1.makespan == r2.makespan
        assert r1.completion_times == r2.completion_times

    def test_churn_excludes_capacity_schedule(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 4)
        churn = ChurnSchedule(
            (4, 2), [ChurnEvent(step=2, category=0, delta=-1)]
        )
        cap = periodic_outage((4, 2), category=0, period=5, duration=2)
        with pytest.raises(SimulationError, match="mutually exclusive"):
            Simulator(
                machine2,
                KRad(),
                js.fresh_copy(),
                churn=churn,
                capacity_schedule=cap,
            )

    def test_churn_nominal_must_match_machine(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 4)
        churn = ChurnSchedule(
            (8, 4), [ChurnEvent(step=2, category=0, delta=-1)]
        )
        with pytest.raises(SimulationError, match="nominal"):
            Simulator(machine2, KRad(), js.fresh_copy(), churn=churn)


class TestRadMigration:
    """Forced DEQ<->RR migrations across churn boundaries."""

    def _totals(self, sched):
        out = {}
        for cat in sched.churn_transitions():
            for kind, n in cat.items():
                out[kind] = out.get(kind, 0) + n
        return out

    def test_shrink_below_active_forces_rr(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 12, size_hint=20)
        churn = ChurnSchedule(
            (4, 2), [ChurnEvent(step=3, category=0, delta=-3)]
        )
        sched = KRad()
        r = Simulator(
            machine2, sched, js.fresh_copy(), churn=churn
        ).run()
        totals = self._totals(sched)
        assert len(r.completion_times) == len(js)
        assert totals["deq_to_rr"] >= 1
        assert totals["rebatch"] >= 1

    def test_growth_absorbs_open_cycle(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 12, size_hint=20)
        churn = ChurnSchedule(
            (4, 2), [ChurnEvent(step=3, category=0, delta=8)]
        )
        sched = KRad()
        r = Simulator(
            machine2, sched, js.fresh_copy(), churn=churn
        ).run()
        totals = self._totals(sched)
        assert len(r.completion_times) == len(js)
        assert totals["absorb"] >= 1
        assert totals["rr_to_deq"] >= 1

    def test_no_churn_no_migrations(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 12, size_hint=20)
        sched = KRad()
        Simulator(
            machine2,
            sched,
            js.fresh_copy(),
            churn=ChurnSchedule((4, 2), []),
        ).run()
        totals = self._totals(sched)
        assert totals["rebatch"] == 0
        assert totals["absorb"] == 0


class TestChurnCertificate:
    def test_time_expanded_lb_certifies_churned_makespan(
        self, rng, machine2
    ):
        js = workloads.random_dag_jobset(rng, 2, 10, size_hint=20)
        churn = ChurnSchedule(
            (4, 2),
            [
                ChurnEvent(step=3, category=0, delta=-3, duration=5),
                ChurnEvent(step=4, category=1, delta=2),
            ],
        )
        r = simulate(machine2, KRad(), js, churn=churn)
        ratio = bounds.theorem3_ratio(2, max(churn.peak_capacities()))
        lb = bounds.time_expanded_lower_bound(
            js, churn.capacities, horizon=2 * r.makespan + 10
        )
        assert lb >= 1
        assert r.makespan <= ratio * lb + 1e-9

    def test_constant_profile_reduces_to_plain_bound(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=20)
        lb_plain = bounds.makespan_lower_bound(js, machine2)
        lb_time = bounds.time_expanded_lower_bound(
            js, lambda t: (4, 2), horizon=10_000
        )
        assert lb_time == pytest.approx(np.ceil(lb_plain), abs=1.0)
        assert lb_time >= lb_plain - 1e-9


class TestChurnCheckpoint:
    def test_resume_mid_churn_identical(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 8, size_hint=20)
        churn = ChurnSchedule(
            (4, 2),
            [
                ChurnEvent(step=2, category=0, delta=-2, duration=4),
                ChurnEvent(step=6, category=1, delta=3),
            ],
        )

        def make_sim():
            return Simulator(
                machine2,
                KRad(),
                js.fresh_copy(),
                churn=churn,
                record_trace=True,
            )

        ref = make_sim().run()
        sim = make_sim()
        assert sim.run_until(4) is None
        snap = sim.checkpoint()
        resumed = Simulator.restore(
            snap, KRad(), churn=churn
        ).run()
        assert resumed.makespan == ref.makespan
        assert resumed.completion_times == ref.completion_times

    def test_churn_presence_must_match_on_restore(self, rng, machine2):
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=12)
        churn = ChurnSchedule(
            (4, 2), [ChurnEvent(step=2, category=0, delta=-1)]
        )
        sim = Simulator(machine2, KRad(), js.fresh_copy(), churn=churn)
        assert sim.run_until(3) is None
        snap = sim.checkpoint()
        with pytest.raises(SimulationError, match="churn"):
            Simulator.restore(snap, KRad())
