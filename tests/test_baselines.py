"""Unit tests for the baseline schedulers."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.machine import KResourceMachine
from repro.schedulers import (
    ClairvoyantCriticalPath,
    ClairvoyantSrpt,
    Equi,
    GreedyFcfs,
    KDeq,
    KRoundRobin,
    check_allotments,
    scheduler_by_name,
)
from repro.dag import builders
from repro.jobs import DagJob


def desires(d):
    return {jid: np.asarray(v, dtype=np.int64) for jid, v in d.items()}


class TestEqui:
    def test_equal_split_ignores_desires(self):
        machine = KResourceMachine((8,))
        s = Equi()
        s.reset(machine)
        alloc = s.allocate(1, desires({0: [8], 1: [1]}))
        # both get quota 4; job 1 is capped at its desire, surplus wasted
        assert alloc[0][0] == 4
        assert alloc[1][0] == 1

    def test_remainder_distribution(self):
        machine = KResourceMachine((5,))
        s = Equi()
        s.reset(machine)
        alloc = s.allocate(1, desires({0: [5], 1: [5], 2: [5]}))
        assert sorted(a[0] for a in alloc.values()) == [1, 2, 2]

    def test_inactive_jobs_excluded(self):
        machine = KResourceMachine((4, 4))
        s = Equi()
        s.reset(machine)
        alloc = s.allocate(1, desires({0: [4, 0], 1: [0, 4]}))
        assert alloc[0].tolist() == [4, 0]
        assert alloc[1].tolist() == [0, 4]


class TestGreedy:
    def test_serves_in_arrival_order(self):
        machine = KResourceMachine((4,))
        s = GreedyFcfs()
        s.reset(machine)
        alloc = s.allocate(1, desires({7: [3], 3: [3]}))
        assert alloc[7][0] == 3  # first in dict order gets full desire
        assert alloc[3][0] == 1

    def test_work_conserving(self):
        machine = KResourceMachine((4, 2))
        s = GreedyFcfs()
        s.reset(machine)
        d = desires({0: [2, 1], 1: [9, 9]})
        alloc = s.allocate(1, d)
        total = sum(a for v in alloc.values() for a in v.tolist())
        assert total == 4 + 2


class TestKDeq:
    def test_light_load_full_desires(self):
        machine = KResourceMachine((8,))
        s = KDeq()
        s.reset(machine)
        alloc = s.allocate(1, desires({0: [3], 1: [2]}))
        assert alloc[0][0] == 3 and alloc[1][0] == 2

    def test_heavy_load_rotates(self):
        machine = KResourceMachine((2,))
        s = KDeq()
        s.reset(machine)
        d = desires({0: [1], 1: [1], 2: [1], 3: [1]})
        served = set()
        for t in range(1, 3):
            alloc = s.allocate(t, d)
            served.update(j for j, a in alloc.items() if a[0] > 0)
        # rotation means all four jobs served within two steps
        assert served == {0, 1, 2, 3}

    def test_capacity_respected(self):
        machine = KResourceMachine((3, 2))
        s = KDeq()
        s.reset(machine)
        rng = np.random.default_rng(2)
        for t in range(1, 30):
            d = desires({i: rng.integers(0, 4, size=2) for i in range(5)})
            check_allotments(machine, d, s.allocate(t, d))


class TestKRoundRobin:
    def test_one_processor_each(self):
        machine = KResourceMachine((4,))
        s = KRoundRobin()
        s.reset(machine)
        alloc = s.allocate(1, desires({0: [9], 1: [9]}))
        assert alloc[0][0] == 1 and alloc[1][0] == 1

    def test_cycles_cover_all_jobs(self):
        machine = KResourceMachine((2,))
        s = KRoundRobin()
        s.reset(machine)
        d = desires({i: [1] for i in range(5)})
        served = []
        for t in range(1, 6):
            alloc = s.allocate(t, d)
            served.extend(j for j, a in alloc.items() if a[0] > 0)
        # within ceil(5/2)*2 = 6 slots every job seen at least once
        assert set(served) == {0, 1, 2, 3, 4}

    def test_capacity_respected_over_time(self):
        machine = KResourceMachine((2, 3))
        s = KRoundRobin()
        s.reset(machine)
        rng = np.random.default_rng(3)
        for t in range(1, 30):
            d = desires({i: rng.integers(0, 3, size=2) for i in range(6)})
            check_allotments(machine, d, s.allocate(t, d))


class TestClairvoyant:
    def _jobs(self):
        deep = DagJob(builders.chain([0] * 5, 1), job_id=0)
        shallow = DagJob(builders.independent_tasks([5]), job_id=1)
        return {0: deep, 1: shallow}

    def test_critical_path_prefers_deep_job(self):
        machine = KResourceMachine((1,))
        s = ClairvoyantCriticalPath()
        s.reset(machine)
        jobs = self._jobs()
        d = desires({0: [1], 1: [5]})
        alloc = s.allocate(1, d, jobs=jobs)
        assert alloc[0][0] == 1  # span 5 beats span 1
        assert alloc[1][0] == 0

    def test_srpt_prefers_small_job(self):
        machine = KResourceMachine((1,))
        s = ClairvoyantSrpt()
        s.reset(machine)
        deep = DagJob(builders.chain([0] * 9, 1), job_id=0)
        tiny = DagJob(builders.independent_tasks([1]), job_id=1)
        d = desires({0: [1], 1: [1]})
        alloc = s.allocate(1, d, jobs={0: deep, 1: tiny})
        assert alloc[1][0] == 1

    def test_requires_jobs(self):
        machine = KResourceMachine((1,))
        s = ClairvoyantCriticalPath()
        s.reset(machine)
        with pytest.raises(ScheduleError):
            s.allocate(1, desires({0: [1]}), jobs=None)

    def test_clairvoyant_flag(self):
        assert ClairvoyantCriticalPath.clairvoyant
        assert ClairvoyantSrpt.clairvoyant
        assert not Equi.clairvoyant


class TestRegistry:
    def test_lookup_all_names(self):
        for name in (
            "k-rad", "rad", "k-deq", "k-rr", "equi", "greedy-fcfs",
            "cv-critical-path", "cv-srpt",
        ):
            assert scheduler_by_name(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            scheduler_by_name("bogus")
