"""Scenario library, NDJSON workload traces, and bit-identical replay.

The contract under test, end to end:

* scenario builds are pure functions of the seed;
* a trace survives dump/load byte-identically and rejects documents it
  cannot faithfully read (wrong format, future version, torn records);
* replaying any trace — scenario-built or service-recorded, fault-free
  or faulted — through the reference and fast engines yields the same
  schedule per step;
* a live service run recorded with ``trace_path`` replays to the exact
  terminal state digest its ``drain`` reported, and the write-ahead
  journal converts to the identical record stream.
"""

import numpy as np
import pytest

from repro.errors import ReplayError, SerializationError, WorkloadError
from repro.jobs.workloads import random_phase_job
from repro.machine.machine import KResourceMachine
from repro.schedulers import scheduler_by_name
from repro.service import SchedulingService, ServiceConfig
from repro.sim.engine import simulate
from repro.sim.faults import fault_objects_from_spec, fault_spec
from repro.workloads import (
    SCENARIOS,
    WorkloadTrace,
    WorkloadTraceWriter,
    build_trace,
    replay,
    replay_compare,
    scenario_names,
    workload_trace_from_journal,
)


class TestScenarioBuilds:
    def test_registry_names(self):
        names = scenario_names()
        assert "flash-crowd" in names
        assert "adversarial-mix" in names
        assert len(names) >= 8

    def test_deterministic_in_seed(self):
        for name in scenario_names():
            a = build_trace(name, seed=7, num_jobs=10)
            b = build_trace(name, seed=7, num_jobs=10)
            assert a.content_digest() == b.content_digest(), name

    def test_seed_actually_matters(self):
        a = build_trace("heavy-tail", seed=1, num_jobs=10)
        b = build_trace("heavy-tail", seed=2, num_jobs=10)
        assert a.content_digest() != b.content_digest()

    def test_dense_ids_sorted_releases(self):
        tr = build_trace("bursty", seed=0, num_jobs=12)
        subs = tr.submissions()
        assert [s["job"]["job_id"] for s in subs] == list(range(12))
        releases = [s["release"] for s in subs]
        assert releases == sorted(releases)
        assert releases[0] == 0

    def test_only_adversarial_mix_carries_faults(self):
        for name in scenario_names():
            spec = SCENARIOS[name]
            assert spec.certified == (spec.faults is None)
        assert SCENARIOS["adversarial-mix"].faults is not None
        assert SCENARIOS["flash-crowd"].certified

    def test_unknown_scenario(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            build_trace("nope")


class TestTraceFormat:
    def test_dump_load_round_trip(self, tmp_path):
        tr = build_trace("hotspot", seed=4, num_jobs=8)
        path = tmp_path / "t.ndjson"
        tr.dump(str(path))
        back = WorkloadTrace.load(str(path))
        assert back.content_digest() == tr.content_digest()
        assert back.scenario == "hotspot"
        assert back.capacities == tr.capacities

    def test_unknown_version_rejected(self, tmp_path):
        tr = build_trace("hotspot", seed=4, num_jobs=4)
        path = tmp_path / "t.ndjson"
        tr.dump(str(path))
        lines = path.read_text().splitlines()
        import json

        header = json.loads(lines[0])
        header["version"] = 999
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(SerializationError, match="version"):
            WorkloadTrace.load(str(path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"format": "job", "version": 1}\n')
        with pytest.raises(SerializationError, match="workload-trace"):
            WorkloadTrace.load(str(path))

    def test_backwards_clock_rejected(self):
        tr = build_trace("hotspot", seed=0, num_jobs=2)
        records = [
            dict(tr.records[0], t=9, release=9),
            dict(tr.records[1], t=4, release=4),
        ]
        with pytest.raises(SerializationError, match="backwards"):
            WorkloadTrace(capacities=tr.capacities, records=records)

    def test_release_before_clock_rejected(self):
        tr = build_trace("hotspot", seed=0, num_jobs=4)
        bad = [dict(tr.records[0], t=9, release=3)]
        with pytest.raises(SerializationError, match="precedes"):
            WorkloadTrace(capacities=tr.capacities, records=bad)

    def test_to_jobset_excludes_cancelled(self):
        tr = build_trace("hotspot", seed=0, num_jobs=6)
        tr.records.append({"kind": "cancel", "t": 0, "job_id": 3})
        js = tr.to_jobset()
        assert len(js) == 5
        assert 3 not in {j.job_id for j in js}

    def test_writer_append_resumes(self, tmp_path):
        path = str(tmp_path / "w.ndjson")
        rng = np.random.default_rng(0)
        j1 = random_phase_job(rng, 2, job_id=0)
        j2 = random_phase_job(rng, 2, job_id=1)
        with WorkloadTraceWriter(path, capacities=(4, 2)) as w:
            w.record_submit(t=0, release=0, tenant="a", job=j1)
        with WorkloadTraceWriter(path, capacities=(4, 2), append=True) as w:
            w.record_submit(t=2, release=3, tenant="b", job=j2)
        tr = WorkloadTrace.load(path)
        assert len(tr.records) == 2
        assert tr.records[1]["tenant"] == "b"

    def test_writer_append_checks_capacities(self, tmp_path):
        path = str(tmp_path / "w.ndjson")
        with WorkloadTraceWriter(path, capacities=(4, 2)):
            pass
        with pytest.raises(SerializationError, match="capacities"):
            WorkloadTraceWriter(path, capacities=(8, 8), append=True)


def _churn_schedule(caps=(4, 2)):
    from repro.machine.churn import ChurnEvent, ChurnSchedule

    return ChurnSchedule(
        caps,
        [
            ChurnEvent(step=4, category=0, delta=-2, duration=5),
            ChurnEvent(step=8, category=1, delta=2, duration=None),
        ],
    )


class TestChurnInTraces:
    """Version-2 headers carry the run's churn schedule, so churned
    runs replay bit-identically — the ``--trace``+``--churn`` path
    ``krad serve`` used to refuse."""

    def test_header_round_trips_churn(self, tmp_path):
        churn = _churn_schedule()
        path = str(tmp_path / "c.ndjson")
        rng = np.random.default_rng(0)
        with WorkloadTraceWriter(
            path, capacities=(4, 2), churn=churn.to_dict()
        ) as w:
            w.record_submit(
                t=0, release=0, tenant="a",
                job=random_phase_job(rng, 2, job_id=0),
            )
        tr = WorkloadTrace.load(path)
        assert tr.churn == churn.to_dict()
        assert tr.churn_schedule().nominal == (4, 2)

    def test_version_1_documents_still_load(self, tmp_path):
        import json

        tr = build_trace("hotspot", seed=4, num_jobs=4)
        lines = list(tr.lines())
        header = json.loads(lines[0])
        header["version"] = 1
        del header["churn"]
        path = tmp_path / "v1.ndjson"
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        back = WorkloadTrace.load(str(path))
        assert back.churn is None
        assert back.records_digest() == tr.records_digest()

    def test_nominal_mismatch_rejected(self):
        with pytest.raises(SerializationError, match="nominal"):
            WorkloadTrace(
                capacities=(8, 2), churn=_churn_schedule().to_dict()
            )

    def test_writer_append_checks_churn(self, tmp_path):
        path = str(tmp_path / "c.ndjson")
        churn = _churn_schedule()
        with WorkloadTraceWriter(
            path, capacities=(4, 2), churn=churn.to_dict()
        ):
            pass
        with pytest.raises(SerializationError, match="churn"):
            WorkloadTraceWriter(path, capacities=(4, 2), append=True)
        # same churn resumes fine (supervisor restart path)
        WorkloadTraceWriter(
            path, capacities=(4, 2), churn=churn.to_dict(), append=True
        ).close()

    def test_churned_replay_is_bit_identical_and_applied(self, tmp_path):
        churn = _churn_schedule()
        path = str(tmp_path / "c.ndjson")
        rng = np.random.default_rng(7)
        with WorkloadTraceWriter(
            path, capacities=(4, 2), seed=3, churn=churn.to_dict()
        ) as w:
            for i in range(8):
                w.record_submit(
                    t=i, release=i, tenant="t",
                    job=random_phase_job(
                        rng, 2, max_phases=3, max_work=20, job_id=i
                    ),
                )
        tr = WorkloadTrace.load(path)
        outcomes = replay_compare(tr, validate=True)
        ref, fast = outcomes["reference"], outcomes["fast"]
        assert ref.step_digests == fast.step_digests
        assert ref.state_digest == fast.state_digest
        # dropping the churn changes the schedule: it really applied
        bare = WorkloadTrace(
            capacities=tr.capacities,
            scheduler=tr.scheduler,
            seed=tr.seed,
            records=tr.records,
        )
        assert (
            replay(bare, engine="reference").schedule_digest
            != ref.schedule_digest
        )

    def test_churned_service_run_records_and_replays(self, tmp_path):
        churn = _churn_schedule()
        cfg = ServiceConfig(
            capacities=(4, 2),
            seed=3,
            journal_path=str(tmp_path / "svc.journal"),
            trace_path=str(tmp_path / "svc.trace.ndjson"),
            extra={"faults": None, "churn": churn.to_dict()},
        )
        svc = SchedulingService.open(cfg, churn=churn)
        rng = np.random.default_rng(21)
        for i in range(6):
            job = random_phase_job(
                rng, 2, max_phases=2, max_work=12, job_id=0
            )
            ack = svc.submit(
                f"t{i % 2}",
                job,
                release_time=svc.clock + int(rng.integers(0, 4)),
            )
            assert ack["ok"], ack
            svc.tick()
        summary = svc.drain()
        tr = WorkloadTrace.load(cfg.trace_path)
        assert tr.churn == churn.to_dict()
        for engine in ("reference", "fast"):
            out = replay(tr, engine=engine)
            assert out.makespan == summary["makespan"]
            assert out.state_digest == summary["digest"]
        # the journal carries the same churn (engine meta), so the
        # journal-derived trace replays identically too
        jt = workload_trace_from_journal(cfg.journal_path, seed=cfg.seed)
        assert jt.churn == churn.to_dict()
        out = replay(jt, engine="fast")
        assert out.state_digest == summary["digest"]


class TestReplay:
    @pytest.mark.parametrize(
        "name", ["flash-crowd", "diurnal", "adversarial-mix"]
    )
    def test_engines_bit_identical(self, name):
        tr = build_trace(name, seed=5, num_jobs=10)
        outcomes = replay_compare(tr)
        ref, fast = outcomes["reference"], outcomes["fast"]
        assert ref.step_digests == fast.step_digests
        assert ref.state_digest == fast.state_digest
        assert ref.makespan == fast.makespan

    def test_replay_matches_batch_simulate(self):
        tr = build_trace("correlated-demand", seed=3, num_jobs=10)
        out = replay(tr, engine="reference")
        batch = simulate(
            KResourceMachine(tr.capacities),
            scheduler_by_name(tr.scheduler),
            tr.to_jobset(),
            seed=tr.seed,
            record_trace=True,
        )
        assert batch.makespan == out.makespan
        assert batch.trace.content_digest() == out.schedule_digest

    def test_divergence_reported_with_step(self):
        tr = build_trace("hotspot", seed=1, num_jobs=8)
        # a what-if replay under a different scheduler is still
        # self-consistent across engines...
        outcomes = replay_compare(tr, scheduler="greedy-fcfs")
        assert (
            outcomes["reference"].step_digests
            == outcomes["fast"].step_digests
        )
        # ...but comparing two *different* schedulers must diverge
        a = replay(tr, engine="reference")
        b = replay(tr, engine="reference", scheduler="greedy-fcfs")
        assert a.schedule_digest != b.schedule_digest

    def test_replay_needs_two_engines(self):
        tr = build_trace("hotspot", seed=1, num_jobs=4)
        with pytest.raises(ReplayError, match="at least two"):
            replay_compare(tr, engines=("reference",))

    def test_faulted_replay_reproduces_failures(self):
        tr = build_trace("adversarial-mix", seed=9, num_jobs=12)
        a = replay(tr, engine="reference")
        b = replay(tr, engine="fast")
        assert a.result.failed_jobs == b.result.failed_jobs
        assert a.result.retries == b.result.retries
        assert (a.result.wasted == b.result.wasted).all()


def _run_service(tmp_path, *, faults=None, cancel=True):
    spec = faults
    caps = (4, 2)
    cs, fm, rp = fault_objects_from_spec(caps, spec)
    cfg = ServiceConfig(
        capacities=caps,
        seed=3,
        journal_path=str(tmp_path / "svc.journal"),
        trace_path=str(tmp_path / "svc.trace.ndjson"),
        extra={"faults": spec},
    )
    svc = SchedulingService(
        cfg, fault_model=fm, retry_policy=rp, capacity_schedule=cs
    )
    rng = np.random.default_rng(21)
    for i in range(8):
        job = random_phase_job(rng, 2, max_phases=2, max_work=12, job_id=0)
        ack = svc.submit(
            f"tenant-{i % 3}",
            job,
            release_time=svc.clock + int(rng.integers(0, 5)),
        )
        assert ack["ok"], ack
        svc.tick()
    if cancel:
        # one far-future submission withdrawn before it ever releases
        doomed = svc.submit(
            "tenant-0",
            random_phase_job(rng, 2, max_phases=1, job_id=0),
            release_time=svc.clock + 500,
        )
        assert ack["ok"]
        res = svc.cancel(doomed["job_id"])
        assert res["ok"], res
    summary = svc.drain()
    return cfg, svc, summary


class TestServiceRecording:
    def test_recorded_run_replays_to_drain_digest(self, tmp_path):
        cfg, svc, summary = _run_service(tmp_path)
        tr = WorkloadTrace.load(cfg.trace_path)
        assert len(tr.cancelled_ids()) == 1
        for engine in ("reference", "fast"):
            out = replay(tr, engine=engine)
            assert out.makespan == summary["makespan"]
            assert out.state_digest == summary["digest"]

    def test_faulted_recorded_run_replays(self, tmp_path):
        spec = fault_spec(
            task_fail_rate=0.05, kill_rate=0.02, max_attempts=3, seed=3
        )
        cfg, svc, summary = _run_service(tmp_path, faults=spec)
        tr = WorkloadTrace.load(cfg.trace_path)
        assert tr.faults == spec
        outcomes = replay_compare(tr)
        for out in outcomes.values():
            assert out.state_digest == summary["digest"]

    def test_journal_converts_to_same_records(self, tmp_path):
        cfg, svc, summary = _run_service(tmp_path)
        tr = WorkloadTrace.load(cfg.trace_path)
        jt = workload_trace_from_journal(cfg.journal_path, seed=cfg.seed)
        assert jt.records_digest() == tr.records_digest()
        assert jt.capacities == tr.capacities
        # and the journal-derived trace replays to the same terminal state
        out = replay(jt, engine="fast")
        assert out.state_digest == summary["digest"]


class TestCli:
    def test_workload_gen_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "w.ndjson")
        assert main(
            ["workload", "gen", "flash-crowd", "--out", out,
             "--seed", "2", "--jobs", "8"]
        ) == 0
        assert main(["replay", out, "--digests"]) == 0
        text = capsys.readouterr().out
        assert "bit-identical" in text

    def test_workload_list(self, capsys):
        from repro.cli import main

        assert main(["workload", "list"]) == 0
        text = capsys.readouterr().out
        for name in scenario_names():
            assert name in text

    def test_replay_rejects_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["replay", str(tmp_path / "absent.ndjson")]) == 2

    def test_gen_unknown_scenario(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["workload", "gen", "nope", "--out", str(tmp_path / "x")]
        ) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestScenarioExperiment:
    def test_scen_report_passes(self):
        from repro.experiments import run_experiment

        report = run_experiment("SCEN", seed=0)
        assert report.passed, report.failing_checks()
        assert len(report.rows) == len(SCENARIOS)
        certified = [r for r in report.rows if r[6] == "yes"]
        assert len(certified) == len(SCENARIOS) - 1
