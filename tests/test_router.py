"""Tenant→shard routing: the hash ring, the journaled routing table,
and the client-side router.

The properties pinned here are the ones sharding correctness rests on:
stable hashing (every process computes the same ring), consistent-hash
stability (killing a shard moves only its own tenants), sticky explicit
routes (a tenant never silently changes shards across a restart), and
atomic journaled failover (recovery sees the whole move or none of it).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.service import ConsistentHashRing, RoutingTable, ShardedClient
from repro.service.router import _stable_hash

TENANTS = [f"tenant-{i}" for i in range(60)]


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class TestRing:
    def test_stable_hash_is_process_independent(self):
        # pinned constant: a changed hash silently re-routes every
        # tenant of every existing deployment
        assert _stable_hash("tenant:alice") == int.from_bytes(
            __import__("hashlib")
            .blake2b(b"tenant:alice", digest_size=8)
            .digest(),
            "big",
        )

    def test_deterministic_across_instances(self):
        a = ConsistentHashRing(4)
        b = ConsistentHashRing(4)
        assert [a.shard_for(t) for t in TENANTS] == [
            b.shard_for(t) for t in TENANTS
        ]

    def test_every_shard_owns_someone(self):
        ring = ConsistentHashRing(4)
        owners = {ring.shard_for(t) for t in TENANTS}
        assert owners == {0, 1, 2, 3}

    def test_exclusion_moves_only_the_dead_shards_tenants(self):
        ring = ConsistentHashRing(4)
        before = {t: ring.shard_for(t) for t in TENANTS}
        after = {
            t: ring.shard_for(t, exclude={2}) for t in TENANTS
        }
        for t in TENANTS:
            if before[t] != 2:
                assert after[t] == before[t], (
                    f"{t} moved although its shard survived"
                )
            else:
                assert after[t] != 2
        assert 2 not in set(after.values())

    def test_exclude_everything_raises(self):
        ring = ConsistentHashRing(2)
        with pytest.raises(ServiceError):
            ring.shard_for("t", exclude={0, 1})

    def test_validation(self):
        with pytest.raises(ServiceError):
            ConsistentHashRing(0)
        with pytest.raises(ServiceError):
            ConsistentHashRing(2, replicas=0)


# ----------------------------------------------------------------------
# routing table
# ----------------------------------------------------------------------
class TestRoutingTable:
    def test_first_contact_is_sticky(self):
        table = RoutingTable(3)
        first = table.shard_for("ada")
        # even if the ring would answer differently after a failover of
        # some *other* shard, the explicit assignment wins
        other = next(s for s in range(3) if s != first)
        table.fail_over(other)
        assert table.shard_for("ada") == first

    def test_peek_does_not_record(self):
        table = RoutingTable(3)
        table.peek("ada")
        assert "ada" not in table.assignments
        table.shard_for("ada")
        assert "ada" in table.assignments

    def test_journal_round_trip(self, tmp_path):
        path = str(tmp_path / "routing.journal")
        table = RoutingTable(3, journal_path=path, fsync=False)
        routes = {t: table.shard_for(t) for t in TENANTS[:12]}
        victim = routes[TENANTS[0]]
        moves = table.fail_over(victim)
        table.close()

        loaded = RoutingTable.load(path, fsync=False)
        assert loaded.num_shards == 3
        assert loaded.dead == {victim}
        for t, s in routes.items():
            expected = moves.get(t, s)
            assert loaded.shard_for(t) == expected
        loaded.close()

    def test_failover_is_one_atomic_record(self, tmp_path):
        path = str(tmp_path / "routing.journal")
        table = RoutingTable(3, journal_path=path, fsync=False)
        for t in TENANTS[:12]:
            table.shard_for(t)
        victim = table.shard_for(TENANTS[0])
        moves = table.fail_over(victim)
        table.close()
        assert moves, "victim owned no tenants; test is vacuous"

        records = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
        ]
        failovers = [r for r in records if r["op"] == "failover"]
        assert len(failovers) == 1
        assert failovers[0]["shard"] == victim
        assert {
            t: int(s) for t, s in failovers[0]["moves"].items()
        } == moves

    def test_failover_moves_only_victims_tenants(self):
        table = RoutingTable(4)
        before = {t: table.shard_for(t) for t in TENANTS}
        victim = before[TENANTS[0]]
        moves = table.fail_over(victim)
        assert set(moves) == {
            t for t, s in before.items() if s == victim
        }
        for t, s in before.items():
            if s != victim:
                assert table.shard_for(t) == s

    def test_cannot_fail_over_last_live_shard(self):
        table = RoutingTable(2)
        table.fail_over(0)
        with pytest.raises(ServiceError):
            table.fail_over(1)
        # the refused failover must not poison the dead set
        assert table.dead == {0}

    def test_revive_rejoins_the_ring(self):
        table = RoutingTable(2)
        moved = table.shard_for("ada")
        table.fail_over(moved)
        table.revive(moved)
        assert table.dead == set()
        # the failed-over tenant keeps its explicit route
        assert table.shard_for("ada") != moved

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "routing.journal")
        table = RoutingTable(2, journal_path=path, fsync=False)
        table.shard_for("ada")
        table.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "assign", "tenant": "gr')  # crash mid-append
        loaded = RoutingTable.load(path, fsync=False)
        assert "ada" in loaded.assignments
        loaded.close()

    def test_mid_journal_corruption_raises(self, tmp_path):
        path = str(tmp_path / "routing.journal")
        table = RoutingTable(2, journal_path=path, fsync=False)
        table.shard_for("ada")
        table.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        lines.insert(1, "not json at all")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(ServiceError, match="corrupt"):
            RoutingTable.load(path)

    def test_load_rejects_headerless_journal(self, tmp_path):
        path = str(tmp_path / "routing.journal")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"op": "assign", "tenant": "a", "shard": 0}\n')
        with pytest.raises(ServiceError, match="header"):
            RoutingTable.load(path)

    def test_load_rejects_journal_whose_only_line_is_torn(
        self, tmp_path
    ):
        # the header itself was torn: no valid records at all must be a
        # typed error, not an IndexError
        path = str(tmp_path / "routing.journal")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"v": 1, "op": "in')
        with pytest.raises(ServiceError, match="header"):
            RoutingTable.load(path)

    def test_torn_tail_is_truncated_before_reappending(self, tmp_path):
        """A post-recovery append must start on a record boundary: if
        the torn bytes were left in place, the next append would
        concatenate onto them and silently drop (one append) or
        permanently corrupt (two appends) fsync'd history."""
        path = str(tmp_path / "routing.journal")
        table = RoutingTable(2, journal_path=path, fsync=False)
        expected = {"ada": table.shard_for("ada")}
        table.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "assign", "tenant": "gr')  # crash mid-append

        loaded = RoutingTable.load(path, fsync=False)
        expected["grace"] = loaded.shard_for("grace")
        loaded.close()
        again = RoutingTable.load(path, fsync=False)
        # the post-recovery append is an *explicit* assignment — merely
        # re-deriving it from the ring would not count as surviving
        assert again.assignments == expected
        expected["lin"] = again.shard_for("lin")
        again.close()
        final = RoutingTable.load(path, fsync=False)
        assert final.assignments == expected
        final.close()

    def test_failover_count_and_moves_survive_reload(self, tmp_path):
        path = str(tmp_path / "routing.journal")
        table = RoutingTable(3, journal_path=path, fsync=False)
        for t in TENANTS[:12]:
            table.shard_for(t)
        victim = table.shard_for(TENANTS[0])
        moves = table.fail_over(victim)
        assert table.failovers == 1 and table.failover_moves == moves
        table.close()

        loaded = RoutingTable.load(path, fsync=False)
        assert loaded.failovers == 1
        assert loaded.failover_moves == moves
        loaded.close()


# ----------------------------------------------------------------------
# client-side router
# ----------------------------------------------------------------------
class _FakeClient:
    """Stands in for a ServiceClient: records calls, answers like one."""

    def __init__(self, address):
        self.address = address
        self.submits = []
        self._next_id = 0

    def submit(self, tenant, job, **kwargs):
        self.submits.append((tenant, job))
        jid, self._next_id = self._next_id, self._next_id + 1
        return {"ok": True, "job_id": jid, "tenant": tenant}

    def status(self, job_id):
        return {"ok": True, "job_id": job_id, "state": "running"}

    def cancel(self, job_id):
        return {"ok": True, "job_id": job_id}

    def stats(self):
        return {"ok": True, "accepted": len(self.submits), "rejected": 0}

    def drain(self):
        return {
            "ok": True,
            "makespan": 7,
            "digest": f"digest-{self.address}",
            "completions": {i: 5 for i, _ in enumerate(self.submits)},
            "response_times": {},
            "per_tenant": {
                t: {"completed": 1} for t, _ in self.submits
            },
        }

    def close(self):
        pass


class TestShardedClient:
    def _client(self, n=3):
        return ShardedClient(
            [("127.0.0.1", 7000 + i) for i in range(n)],
            client_factory=_FakeClient,
        )

    def test_global_id_round_trip(self):
        sc = self._client(3)
        for shard in range(3):
            for local in range(10):
                gid = sc.global_id(shard, local)
                assert sc.split_id(gid) == (shard, local)
        # dense and collision-free across shards
        gids = {
            sc.global_id(s, l) for s in range(3) for l in range(10)
        }
        assert len(gids) == 30

    def test_routes_match_server_side_ring(self):
        sc = self._client(4)
        ring = ConsistentHashRing(4)
        for t in TENANTS:
            assert sc.shard_of(t) == ring.shard_for(t)

    def test_submit_globalises_ack_and_sticks_to_one_shard(self):
        sc = self._client(3)
        shard = sc.shard_of("ada")
        acks = [sc.submit("ada", {"j": i}) for i in range(5)]
        assert all(a["shard"] == shard for a in acks)
        assert [a["job_id"] for a in acks] == [
            sc.global_id(shard, i) for i in range(5)
        ]
        # every submit reached exactly the owning shard's client
        assert len(sc.client(shard).submits) == 5

    def test_status_and_cancel_route_by_global_id(self):
        sc = self._client(3)
        gid = sc.submit("ada", {})["job_id"]
        shard, local = sc.split_id(gid)
        st = sc.status(gid)
        assert (st["job_id"], st["shard"]) == (gid, shard)
        assert sc.cancel(gid)["job_id"] == gid

    def test_drain_merges_under_global_ids(self):
        sc = self._client(2)
        tenants = ["ada", "grace", "edsger", "barbara"]
        for t in tenants:
            sc.submit(t, {})
        merged = sc.drain()
        assert merged["ok"]
        assert set(merged["digests"]) == {0, 1}
        locals_per_shard = {
            i: len(sc.client(i).submits) for i in range(2)
        }
        assert sum(locals_per_shard.values()) == len(tenants)
        assert set(merged["completions"]) == {
            sc.global_id(s, l)
            for s in range(2)
            for l in range(locals_per_shard[s])
        }
        assert set(merged["per_tenant"]) == set(tenants)

    def test_needs_at_least_one_address(self):
        with pytest.raises(ServiceError):
            ShardedClient([])

    def test_context_manager_closes_clients(self):
        with self._client(2) as sc:
            sc.submit("ada", {})
            assert sc._clients
        assert not sc._clients
