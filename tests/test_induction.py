"""Tests for the Theorem-5 induction-step certifier.

The certifier replays idealized continuous-time DEQ (the object the proof
analyses) and checks Inequality (8) on every inter-event interval.  These
tests also pin the *negative* finding: the per-step inequality does NOT
transfer verbatim to the integer engine (integral allotments + discrete
steps), which is why the certifier exists.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.jobs import JobSet, Phase, PhaseJob, workloads
from repro.machine import KResourceMachine
from repro.theory import certify_theorem5_induction


class TestCertifier:
    def test_holds_on_light_phase_workload(self, rng):
        machine = KResourceMachine((16, 8))
        js = workloads.light_phase_jobset(rng, machine, 6)
        res = certify_theorem5_induction(machine, js)
        assert res.all_hold
        assert res.min_slack >= -1e-6
        assert res.num_steps >= 1
        assert res.makespan > 0

    def test_certificates_expose_interval_structure(self, rng):
        machine = KResourceMachine((16, 16))
        js = workloads.light_phase_jobset(rng, machine, 4)
        res = certify_theorem5_induction(machine, js)
        first = res.steps[0]
        assert first.t_start == 0.0
        assert first.n_uncompleted == 4
        assert first.delta_r == pytest.approx(4 * first.dt)
        # intervals tile [0, makespan]
        total = sum(c.dt for c in res.steps)
        assert total == pytest.approx(res.makespan)

    def test_single_job_full_speed(self):
        machine = KResourceMachine((4,))
        js = JobSet([PhaseJob([Phase([8], [2])], job_id=0)])
        res = certify_theorem5_induction(machine, js)
        assert res.all_hold
        assert res.makespan == pytest.approx(4.0)

    def test_deprived_jobs_split_evenly(self):
        # two identical wide jobs on a narrow machine: each runs at P/2
        machine = KResourceMachine((4,))
        js = JobSet(
            [
                PhaseJob([Phase([12], [4])], job_id=0),
                PhaseJob([Phase([12], [4])], job_id=1),
            ]
        )
        res = certify_theorem5_induction(machine, js)
        assert res.all_hold
        assert res.makespan == pytest.approx(6.0)

    def test_rejects_non_batched(self, rng):
        machine = KResourceMachine((8, 8))
        js = workloads.random_phase_jobset(rng, 2, 3)
        js = workloads.with_release_times(js, [0, 2, 4])
        with pytest.raises(ReproError):
            certify_theorem5_induction(machine, js)

    def test_rejects_heavy_workload(self, rng):
        machine = KResourceMachine((2,))
        js = workloads.random_phase_jobset(rng, 1, 10)
        with pytest.raises(ReproError, match="not light"):
            certify_theorem5_induction(machine, js)

    def test_rejects_dag_jobs(self, rng):
        from repro.dag import builders
        from repro.jobs import DagJob

        machine = KResourceMachine((8,))
        js = JobSet([DagJob(builders.chain([0, 0], 1), job_id=0)])
        with pytest.raises(ReproError, match="PhaseJob"):
            certify_theorem5_induction(machine, js)

    @given(st.integers(0, 2**31), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_random_light_workloads(self, seed, n):
        machine = KResourceMachine((8, 8, 8))
        rng = np.random.default_rng(seed)
        js = workloads.light_phase_jobset(rng, machine, min(n, 8))
        res = certify_theorem5_induction(machine, js)
        assert res.all_hold


class TestDiscretizationFinding:
    """The per-step inequality fails on the INTEGER engine — by design of
    the proof, which assumes divisible processors.  Pin the counterexample
    so the distinction stays documented."""

    @staticmethod
    def _count_integral_violations(machine, js):
        from repro.schedulers import KRad
        from repro.sim.engine import Simulator
        from repro.theory.squashed import squashed_work_areas

        js = js.fresh_copy()
        jobs = list(js.jobs)

        def snap():
            works = np.stack([j.remaining_work_vector() for j in jobs])
            spans = sum(j.remaining_span() for j in jobs)
            n = sum(1 for j in jobs if not j.is_complete)
            return works, spans, n

        prev = [snap()]
        violations = [0]

        def on_step(t, alive):
            works, spans, _ = snap()
            pw, ps, n_t = prev[0]
            c = 2 - 2 / (n_t + 1)
            dswa = float(
                squashed_work_areas(pw, machine.capacities).sum()
                - squashed_work_areas(works, machine.capacities).sum()
            )
            dspan = float(ps - spans)
            if n_t > c * dswa + dspan + 1e-9:
                violations[0] += 1
            prev[0] = (works, spans, _)

        Simulator(machine, KRad(), js, on_step=on_step).run()
        return violations[0]

    def test_integral_engine_violates_per_step_inequality(self):
        """Some integral run violates Ineq. 8 per-step (divisibility gap),
        while the idealized certifier holds on the very same workloads."""
        machine = KResourceMachine((16, 8))
        found = 0
        for seed in range(40):
            rng = np.random.default_rng(seed)
            js = workloads.light_phase_jobset(rng, machine, 6)
            if self._count_integral_violations(machine, js) > 0:
                found += 1
                # the idealized replay of the SAME workload is clean
                assert certify_theorem5_induction(machine, js).all_hold
        assert found > 0, (
            "expected at least one integral per-step violation in 40 "
            "seeds — has the engine moved to fractional allotments?"
        )
