"""Tests for the application templates."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.jobs.templates import (
    ACCEL,
    CPU,
    IO,
    application_mix,
    etl_pipeline_job,
    mapreduce_job,
    stencil_solver_job,
    training_epoch_job,
)
from repro.machine import KResourceMachine
from repro.schedulers import KRad
from repro.sim import simulate, validate_schedule


class TestMapReduce:
    def test_structure(self):
        dag = mapreduce_job(mappers=4, reducers=2)
        dag.validate()
        # split + 4 maps + 2 reduces + commit
        assert dag.num_vertices == 8
        # shuffle: 4 x 2 edges; plus 4 split->map and 2 reduce->commit
        assert dag.num_edges == 4 + 8 + 2
        assert dag.span() == 4  # split -> map -> reduce -> commit
        assert dag.work(IO) == 2
        assert dag.work(CPU) == 6

    def test_validation(self):
        with pytest.raises(WorkloadError):
            mapreduce_job(0, 1)


class TestStencil:
    def test_structure(self):
        dag = stencil_solver_job(iterations=4, tiles=3)
        dag.validate()
        # 4 iterations x (3 tiles + barrier) + one checkpoint at it 4
        assert dag.work(ACCEL) == 12
        assert dag.work(CPU) == 4
        assert dag.work(IO) == 1
        # span: (tile + barrier) per iteration + checkpoint
        assert dag.span() == 4 * 2 + 1

    def test_checkpoint_every_fourth(self):
        dag = stencil_solver_job(iterations=8, tiles=1)
        assert dag.work(IO) == 2

    def test_validation(self):
        with pytest.raises(WorkloadError):
            stencil_solver_job(1, 0)


class TestEtl:
    def test_structure(self):
        dag = etl_pipeline_job(batches=3, transform_width=2)
        dag.validate()
        assert dag.work(IO) == 6  # extract + load per batch
        assert dag.work(CPU) == 6
        # span: extract -> transform -> load, then load-chain of later
        # batches: 3 + (batches - 1)
        assert dag.span() == 3 + 2

    def test_loads_are_ordered(self):
        dag = etl_pipeline_job(batches=2, transform_width=1)
        io_vertices = [
            v for v in dag.vertices() if dag.category(v) == IO
        ]
        loads = io_vertices[1::2]
        assert loads[0] in dag.predecessors(loads[1])


class TestTraining:
    def test_structure(self):
        dag = training_epoch_job(steps=3, data_parallel=2)
        dag.validate()
        assert dag.work(ACCEL) == 6
        assert dag.work(CPU) == 3  # one all-reduce per step
        assert dag.work(IO) == 3  # initial fetch + 2 prefetches

    def test_prefetch_overlaps(self):
        # with prefetching, span is fetch + steps*(shard + reduce)
        dag = training_epoch_job(steps=2, data_parallel=4)
        assert dag.span() == 1 + 2 * 2

    def test_validation(self):
        with pytest.raises(WorkloadError):
            training_epoch_job(0, 1)


class TestApplicationMix:
    def test_mix_runs_end_to_end(self, rng):
        js = application_mix(rng, 8)
        machine = KResourceMachine((8, 8, 4), names=("cpu", "accel", "io"))
        r = simulate(machine, KRad(), js, record_trace=True)
        validate_schedule(r.trace, js)
        assert len(r.completion_times) == 8

    def test_release_spread(self, rng):
        js = application_mix(rng, 6, release_spread=40)
        times = js.release_times()
        assert times[0] == 0
        assert times.max() <= 40

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            application_mix(rng, 0)

    def test_deterministic(self):
        a = application_mix(np.random.default_rng(5), 5)
        b = application_mix(np.random.default_rng(5), 5)
        assert a.total_work_vector().tolist() == b.total_work_vector().tolist()
        assert a.spans().tolist() == b.spans().tolist()
