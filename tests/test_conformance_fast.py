"""Differential conformance: the fast engine is bit-identical to the
reference on traces, metrics, journal digests and checkpoints.

Every scenario pins its seed — state digests cover the RNG, so unseeded
runs differ trivially without any engine bug.
"""

import numpy as np
import pytest

from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.machine.churn import ChurnEvent, ChurnSchedule
from repro.schedulers import KRad
from repro.sim import (
    CompositeFaultModel,
    JobKiller,
    RetryPolicy,
    ScriptedViolation,
    Supervisor,
    TaskFailures,
    assert_conformant,
    default_monitors,
    engine_class,
    run_conformance,
    simulate,
    validate_schedule,
)
from repro.sim.faults import periodic_outage


def _phase_build(seed, k, caps, n_jobs=12, releases=False):
    def build():
        rng = np.random.default_rng(seed)
        machine = KResourceMachine(caps)
        js = workloads.random_phase_jobset(rng, k, n_jobs, max_work=30)
        if releases:
            rel = workloads.poisson_release_times(
                np.random.default_rng(seed + 100), len(js), rate=0.5
            )
            js = workloads.with_release_times(js, rel)
        return dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=seed,
            record_trace=True,
        )

    return build


@pytest.mark.parametrize(
    "k,caps", [(1, (4,)), (2, (4, 6)), (4, (3, 3, 3, 3))]
)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_phase_jobsets_conform(k, caps, seed):
    assert_conformant(_phase_build(seed, k, caps))


@pytest.mark.parametrize("seed", [0, 1])
def test_phase_with_releases_conform(seed):
    assert_conformant(_phase_build(seed, 2, (4, 4), releases=True))


@pytest.mark.parametrize("seed", [0, 1])
def test_dag_jobsets_conform(seed):
    def build():
        rng = np.random.default_rng(seed)
        machine = KResourceMachine((3, 5))
        js = workloads.random_dag_jobset(rng, 2, 8)
        return dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=seed,
            record_trace=True,
        )

    assert_conformant(build)


def test_journal_digests_conform():
    """The strongest check: per-step state digests over a whole run."""
    assert_conformant(_phase_build(3, 2, (4, 4)), check_journal=True)


def test_faults_retry_conform():
    def build():
        rng = np.random.default_rng(5)
        machine = KResourceMachine((4, 4))
        js = workloads.random_phase_jobset(rng, 2, 10, max_work=30)
        return dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=5,
            record_trace=True,
            fault_model=CompositeFaultModel(
                [TaskFailures(0.05, seed=7), JobKiller(0.01, seed=8)]
            ),
            retry_policy=RetryPolicy(max_attempts=5),
        )

    assert_conformant(build)


def test_churn_conform():
    def build():
        rng = np.random.default_rng(6)
        machine = KResourceMachine((4, 4))
        js = workloads.random_phase_jobset(rng, 2, 10, max_work=30)
        churn = ChurnSchedule(
            (4, 4),
            [
                ChurnEvent(5, 0, -2, duration=10),
                ChurnEvent(12, 1, -4, duration=6),
            ],
        )
        return dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=6,
            record_trace=True,
            churn=churn,
        )

    assert_conformant(build)


def test_outage_conform():
    def build():
        rng = np.random.default_rng(7)
        machine = KResourceMachine((4, 2))
        js = workloads.random_phase_jobset(rng, 2, 8, max_work=25)
        return dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=7,
            record_trace=True,
            capacity_schedule=periodic_outage(
                (4, 2), category=0, period=10, duration=4, degraded=0
            ),
        )

    assert_conformant(build)


def test_supervisor_conform():
    def build():
        rng = np.random.default_rng(8)
        machine = KResourceMachine((4, 4))
        js = workloads.random_phase_jobset(rng, 2, 8, max_work=25)
        monitors = default_monitors()
        monitors.append(ScriptedViolation(step=6, job_id=js[0].job_id))
        return dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=8,
            record_trace=True,
            supervisor=Supervisor(monitors, mode="resilient"),
        )

    assert_conformant(build)


def test_fast_trace_validates():
    """The fast engine's recorded schedule passes the validity checker."""
    build = _phase_build(9, 2, (4, 4))
    kwargs = build()
    js_copy = kwargs["jobset"].fresh_copy()
    result = simulate(
        kwargs["machine"],
        kwargs["scheduler"],
        kwargs["jobset"],
        seed=9,
        record_trace=True,
        engine="fast",
    )
    validate_schedule(result.trace, js_copy)


def test_midrun_checkpoints_identical():
    """Pausing both engines mid-run yields byte-equal checkpoints, and
    each engine can resume the other's."""

    def build():
        rng = np.random.default_rng(4)
        machine = KResourceMachine((4, 4))
        js = workloads.random_phase_jobset(rng, 2, 12, max_work=40)
        return machine, js

    machine, js = build()
    ref = engine_class("reference")(machine, KRad(machine), js, seed=9)
    machine2, js2 = build()
    fast = engine_class("fast")(machine2, KRad(machine2), js2, seed=9)
    assert ref.run_until(15) is None
    assert fast.run_until(15) is None
    ck_ref, ck_fast = ref.checkpoint(), fast.checkpoint()
    assert ck_ref == ck_fast
    assert ref.digest() == fast.digest()
    m3, _ = build()
    m4, _ = build()
    res_a = engine_class("reference").restore(ck_fast, KRad(m3)).run()
    res_b = engine_class("fast").restore(ck_ref, KRad(m4)).run()
    assert res_a.makespan == res_b.makespan
    assert res_a.completion_times == res_b.completion_times


def test_lean_untraced_metrics_identical():
    """Without a trace the fast engine takes its lean/skipping path;
    the final metrics still match exactly."""
    for seed in range(4):
        rng = np.random.default_rng(seed)
        machine = KResourceMachine((4, 6))
        js = workloads.random_phase_jobset(rng, 2, 20, max_work=60)
        r_ref = simulate(
            machine, KRad(machine), js.fresh_copy(), seed=1,
            engine="reference",
        )
        r_fast = simulate(
            machine, KRad(machine), js.fresh_copy(), seed=1, engine="fast"
        )
        assert r_ref.makespan == r_fast.makespan
        assert r_ref.completion_times == r_fast.completion_times
        assert (np.asarray(r_ref.busy) == np.asarray(r_fast.busy)).all()
        assert r_ref.idle_steps == r_fast.idle_steps


def test_report_carries_fingerprints():
    report = run_conformance(_phase_build(0, 2, (4, 4), n_jobs=6))
    assert report.ok
    assert set(report.engines) == {"reference", "fast"}
    for engine in report.engines:
        assert report.fingerprints[engine]["makespan"] > 0
        assert report.traces[engine]["digest"]
        assert report.metrics[engine]["mean_response_time"] > 0


def test_missing_seed_rejected():
    def build():
        machine = KResourceMachine((2,))
        js = workloads.random_phase_jobset(
            np.random.default_rng(0), 1, 3, max_work=10
        )
        return dict(machine=machine, scheduler=KRad(machine), jobset=js)

    with pytest.raises(Exception, match="seed"):
        run_conformance(build)


# ----------------------------------------------------------------------
# sliced (online) conformance: advance_until interleaved with injection
# ----------------------------------------------------------------------
def _late_jobs(seed, k, n, base_id=100):
    """Fresh mid-run submissions (DAG jobs: they force the fast engine
    off its lean PhaseJob path, the hardest handoff to keep identical)."""
    rng = np.random.default_rng(seed)
    jobs = list(workloads.random_dag_jobset(rng, k, n, size_hint=10).jobs)
    for i, job in enumerate(jobs):
        job.job_id = base_id + i
    return jobs


def _online_script(seed, k):
    def script():
        jobs = _late_jobs(seed + 50, k, 4)
        return [
            {"advance_to": 4},
            {"inject": jobs[0], "release_time": 5, "meta": {"tenant": "a"}},
            {"advance_to": 10},
            {"inject": jobs[1], "release_time": 12},
            {"inject": jobs[2], "release_time": 25},
            {"cancel": jobs[2].job_id},
            {"advance_to": 40},
            {"inject": jobs[3], "release_time": 45},
        ]

    return script


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sliced_injection_conforms(seed):
    from repro.sim import assert_sliced_conformant

    report = assert_sliced_conformant(
        _phase_build(seed, 3, (6, 3, 2), n_jobs=8),
        _online_script(seed, 3),
        check_journal=True,
    )
    # every action logged a digest, and the journal saw the online records
    kinds = [entry[0] for entry in report.slices["reference"]]
    assert kinds.count("inject") == 4 and kinds.count("cancel") == 1
    jkinds = {entry[0] for entry in report.journal_digests["reference"]}
    assert {"step", "submit", "cancel"} <= jkinds


def test_sliced_matches_batch_with_effective_releases():
    """The acceptance identity behind the service: a sliced run with
    late injections finishes exactly like a batch run of the same jobs
    with the same effective release times — on both engines."""
    from repro.sim import engine_class

    seed, caps = 7, (5, 4)
    for engine in ("reference", "fast"):
        build = _phase_build(seed, 2, caps, n_jobs=6)
        kwargs = build()
        sim = engine_class(engine)(
            kwargs.pop("machine"),
            kwargs.pop("scheduler"),
            kwargs.pop("jobset"),
            seed=kwargs["seed"],
        )
        sim.advance_until(6)
        late = _late_jobs(seed, 2, 2)
        releases = [
            sim.inject_job(late[0], release_time=max(8, sim.clock)),
            sim.inject_job(late[1], release_time=max(14, sim.clock)),
        ]
        online = sim.run()

        batch_build = _phase_build(seed, 2, caps, n_jobs=6)
        bk = batch_build()
        batch_late = _late_jobs(seed, 2, 2)
        for job, rel in zip(batch_late, releases):
            job.release_time = rel
        from repro.jobs import JobSet

        js = JobSet(
            list(bk.pop("jobset").jobs) + batch_late,
            num_categories=2,
        )
        batch = simulate(
            bk.pop("machine"), bk.pop("scheduler"), js,
            seed=bk["seed"], engine=engine,
        )
        assert online.makespan == batch.makespan
        assert online.completion_times == batch.completion_times
        assert online.release_times == batch.release_times


def test_sliced_with_fault_injection_conforms():
    from repro.sim import assert_sliced_conformant

    def build():
        rng = np.random.default_rng(3)
        machine = KResourceMachine((4, 3))
        js = workloads.random_phase_jobset(rng, 2, 6, max_work=25)
        return dict(
            machine=machine,
            scheduler=KRad(machine),
            jobset=js,
            seed=3,
            fault_model=JobKiller(0.04, seed=3),
            retry_policy=RetryPolicy(max_attempts=3),
        )

    def script():
        jobs = _late_jobs(60, 2, 2)
        return [
            {"advance_to": 5},
            {"inject": jobs[0], "release_time": 7},
            {"advance_to": 15},
            {"inject": jobs[1], "release_time": 16},
        ]

    report = assert_sliced_conformant(build, script, check_journal=True)
    assert report.ok


def test_sliced_unknown_action_rejected():
    from repro.errors import ReproError
    from repro.sim import run_sliced_conformance

    with pytest.raises(ReproError, match="unknown sliced-conformance"):
        run_sliced_conformance(
            _phase_build(0, 2, (4, 4), n_jobs=3),
            lambda: [{"teleport": 3}],
        )
