"""Tests for the SETF (least-service-first) scheduler."""

import numpy as np
import pytest

from repro.dag import builders
from repro.jobs import JobSet, workloads
from repro.machine import KResourceMachine
from repro.schedulers import GreedyFcfs, KRad, Setf, check_allotments
from repro.sim import simulate, validate_schedule


def desires(d):
    return {jid: np.asarray(v, dtype=np.int64) for jid, v in d.items()}


class TestSetf:
    def test_newcomer_preempts_old_job(self):
        machine = KResourceMachine((2,))
        s = Setf()
        s.reset(machine)
        s.allocate(1, desires({0: [2]}))  # job 0 accrues service 2
        alloc = s.allocate(2, desires({0: [2], 1: [2]}))
        # newcomer 1 has service 0 -> takes the whole category
        assert alloc[1].tolist() == [2]
        assert 0 not in alloc

    def test_service_balances_over_time(self):
        machine = KResourceMachine((1,))
        s = Setf()
        s.reset(machine)
        served = []
        d = desires({0: [1], 1: [1]})
        for t in range(1, 7):
            alloc = s.allocate(t, d)
            served.append(next(iter(alloc)))
        # strict alternation: the job just served always has more service
        assert served == [0, 1, 0, 1, 0, 1]

    def test_completed_jobs_forgotten(self):
        machine = KResourceMachine((2,))
        s = Setf()
        s.reset(machine)
        s.allocate(1, desires({0: [1], 1: [1]}))
        s.allocate(2, desires({1: [1]}))  # 0 gone
        assert set(s._service) == {1}

    def test_capacity_respected(self, rng):
        machine = KResourceMachine((3, 2))
        s = Setf()
        s.reset(machine)
        for t in range(1, 30):
            d = desires({i: rng.integers(0, 4, size=2) for i in range(6)})
            check_allotments(machine, d, s.allocate(t, d))

    def test_valid_schedules(self, rng):
        machine = KResourceMachine((4, 2))
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=10)
        r = simulate(machine, Setf(), js, record_trace=True)
        validate_schedule(r.trace, js)

    def test_beats_fcfs_on_elephants_and_mice(self, rng):
        machine = KResourceMachine((8, 4))
        js = workloads.bimodal_phase_jobset(rng, machine, 24)
        setf = simulate(machine, Setf(), js)
        fcfs = simulate(machine, GreedyFcfs(), js)
        assert setf.mean_response_time < fcfs.mean_response_time

    def test_registry(self):
        from repro.schedulers import scheduler_by_name

        assert scheduler_by_name("setf").name == "setf"
