"""End-to-end tests of the online scheduling service.

The acceptance scenario from the service's design contract: boot the
daemon, stream ≥50 jobs from ≥3 tenants at it *while it runs*, watch
the live metrics endpoint move, SIGKILL the process mid-run, recover
from the journal, and verify the drained response times are identical
to an equivalent batch ``simulate()`` of the same jobs with the same
effective release times — on both engines.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import JobSet, KResourceMachine, scheduler_by_name, simulate
from repro.errors import ServiceError
from repro.io.serialize import job_snapshot_from_dict, job_to_dict
from repro.jobs import workloads
from repro.obs import Observability, parse_prometheus_text
from repro.service import (
    FairSubmissionQueue,
    SchedulingService,
    ServiceClient,
    ServiceConfig,
    ThreadedServer,
    fetch_metrics_text,
)

CAPS = (6, 3, 2)


def _jobs(seed, n, k=3):
    rng = np.random.default_rng(seed)
    return list(
        workloads.random_phase_jobset(
            rng, k, n, max_phases=3, max_work=16
        ).jobs
    )


# ----------------------------------------------------------------------
# fair queue
# ----------------------------------------------------------------------
class TestFairQueue:
    def test_round_robin_across_tenants(self):
        q = FairSubmissionQueue()
        for i in range(3):
            q.push("a", f"a{i}")
        q.push("b", "b0")
        q.push("c", "c0")
        order = [q.pop() for _ in range(len(q))]
        # per-tenant FIFO preserved; no tenant served twice before a
        # backlogged other is served once
        assert [t for t, _ in order[:3]] == ["a", "b", "c"]
        assert [item for t, item in order if t == "a"] == ["a0", "a1", "a2"]
        assert not q and len(q) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FairSubmissionQueue().pop()

    def test_depths_and_drain(self):
        q = FairSubmissionQueue()
        q.push("x", 1)
        q.push("y", 2)
        q.push("x", 3)
        assert q.depths() == {"x": 2, "y": 1}
        assert set(q.tenants()) == {"x", "y"}
        assert len(list(q.drain())) == 3
        assert q.depths() == {}


# ----------------------------------------------------------------------
# in-process service core
# ----------------------------------------------------------------------
class TestServiceCore:
    def test_submit_status_cancel_drain(self, tmp_path):
        cfg = ServiceConfig(
            capacities=CAPS, seed=1, journal_path=str(tmp_path / "s.journal")
        )
        svc = SchedulingService(cfg, obs=Observability())
        jobs = _jobs(0, 4)
        acks = [svc.submit("t0", j) for j in jobs[:3]]
        assert all(a["ok"] for a in acks)
        assert [a["job_id"] for a in acks] == [0, 1, 2]
        svc.tick()
        late = svc.submit("t1", jobs[3], release_time=svc.clock + 5)
        assert late["release"] == svc.clock + 5
        assert svc.status(late["job_id"])["state"] == "pending"
        assert svc.cancel(late["job_id"])["ok"]
        assert svc.status(late["job_id"])["state"] == "cancelled"
        # cancelled twice / unknown ids are reported, not raised
        assert not svc.cancel(late["job_id"])["ok"]
        assert not svc.status(99)["ok"]
        summary = svc.drain()
        assert summary["completed"] == 3
        assert summary["cancelled"] == [late["job_id"]]
        for jid, rt in summary["response_times"].items():
            assert rt == summary["completions"][jid] - summary["releases"][jid]
        # drain is idempotent
        assert svc.drain()["makespan"] == summary["makespan"]

    def test_tenant_quota_and_backpressure_rejections(self):
        cfg = ServiceConfig(
            capacities=CAPS, seed=2, tenant_quota=2, max_in_flight=3
        )
        svc = SchedulingService(cfg, obs=Observability())
        jobs = _jobs(1, 5)
        assert svc.submit("a", jobs[0])["ok"]
        assert svc.submit("a", jobs[1])["ok"]
        rej = svc.submit("a", jobs[2])
        assert not rej["ok"] and rej["reason"] == "tenant-quota"
        assert rej["retry_after"] >= 1
        assert svc.submit("b", jobs[3])["ok"]
        rej2 = svc.submit("c", jobs[4])
        assert not rej2["ok"] and rej2["reason"] == "backpressure"
        stats = svc.stats()
        assert stats["accepted"] == 3 and stats["rejected"] == 2

    def test_load_shedding_certificate(self):
        cfg = ServiceConfig(capacities=(2, 2), seed=0, shed_horizon=10)
        svc = SchedulingService(cfg, obs=Observability())
        jobs = _jobs(2, 8, k=2)
        outcomes = [svc.submit("t", j) for j in jobs]
        shed = [o for o in outcomes if not o["ok"]]
        assert shed, "a 2x2 machine must shed some of 8 jobs at horizon 10"
        assert all(o["reason"] == "load-shed" for o in shed)
        assert all(o["retry_after"] >= 1 for o in shed)
        # the certificate honours Theorem 3: the admitted backlog drains
        # within the certified horizon measured from submission time
        assert svc.certificate_horizon() <= 10
        summary = svc.drain()
        assert summary["makespan"] <= 10

    def test_draining_rejects_with_reason(self):
        cfg = ServiceConfig(capacities=CAPS, seed=3)
        svc = SchedulingService(cfg, obs=Observability())
        svc.submit("t", _jobs(3, 1)[0])
        svc.drain()
        rej = svc.submit("t", _jobs(4, 1)[0])
        assert not rej["ok"] and rej["reason"] == "draining"
        assert rej["retry_after"] >= 1

    def test_recover_requires_journal(self):
        cfg = ServiceConfig(capacities=CAPS)
        with pytest.raises(ServiceError, match="journal_path"):
            SchedulingService.recover(cfg)

    def test_metrics_registry_has_service_gauges(self):
        cfg = ServiceConfig(capacities=CAPS, seed=4)
        svc = SchedulingService(cfg, obs=Observability())
        svc.submit("alice", _jobs(5, 1)[0])
        svc.tick()
        metrics = parse_prometheus_text(svc.metrics_text())
        assert metrics["krad_service_clock"] == svc.clock
        assert metrics['krad_submissions_total{tenant="alice"}'] == 1
        assert 'krad_service_jobs{state="running"}' in metrics


# ----------------------------------------------------------------------
# socket server + client
# ----------------------------------------------------------------------
class TestServer:
    def test_tcp_end_to_end_with_live_metrics(self):
        cfg = ServiceConfig(capacities=CAPS, seed=5, engine="fast")
        svc = SchedulingService(cfg, obs=Observability())
        with ThreadedServer(svc, metrics_port=0) as ts:
            with ServiceClient(ts.address) as cli:
                assert cli.ping()["ok"]
                acks = [
                    cli.submit(f"t{i % 3}", job_to_dict(j))
                    for i, j in enumerate(_jobs(6, 6))
                ]
                assert all(a["ok"] for a in acks)
                live = parse_prometheus_text(
                    fetch_metrics_text(ts.metrics_address)
                )
                assert (
                    sum(
                        v
                        for k, v in live.items()
                        if k.startswith("krad_submissions_total")
                    )
                    == 6
                )
                done = cli.wait(acks[0]["job_id"], timeout=60)
                assert done["state"] == "completed"
                assert done["response_time"] >= 0
                summary = cli.drain()
                assert summary["ok"] and summary["completed"] == 6
                rej = cli.submit("late", job_to_dict(_jobs(7, 1)[0]))
                assert not rej["ok"] and rej["reason"] == "draining"

    def test_unix_socket_and_protocol_errors(self, tmp_path):
        cfg = ServiceConfig(capacities=CAPS, seed=6)
        svc = SchedulingService(cfg, obs=Observability())
        path = str(tmp_path / "svc.sock")
        with ThreadedServer(svc, unix_path=path):
            with ServiceClient(path) as cli:
                assert cli.ping()["ok"]
                assert not cli.request({"op": "warp"})["ok"]
                assert not cli.request({"op": "status"})["ok"]  # no job_id
                assert not cli.request({"op": "submit"})["ok"]  # no tenant
                bad = cli.request({"op": "submit", "tenant": "t", "job": 7})
                assert not bad["ok"]

    def test_http_healthz_and_404(self):
        import urllib.error
        import urllib.request

        cfg = ServiceConfig(capacities=CAPS, seed=7)
        svc = SchedulingService(cfg, obs=Observability())
        with ThreadedServer(svc, metrics_port=0) as ts:
            host, port = ts.metrics_address
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=5
            ) as resp:
                pulse = json.loads(resp.read())
            assert pulse["ok"] and not pulse["draining"]
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=5
                )


# ----------------------------------------------------------------------
# the acceptance scenario: kill -9 and recover, vs batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_service_kill_recover_matches_batch(engine, tmp_path):
    """SIGKILL a journaled ``krad serve`` mid-run with ≥50 jobs from
    ≥3 tenants in flight, recover, and require the final response
    times to be identical to a batch ``simulate()`` of the same jobs
    at their effective release times."""
    journal = str(tmp_path / "svc.journal")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--capacities", ",".join(str(c) for c in CAPS),
            "--seed", "11",
            "--engine", engine,
            "--journal", journal,
            "--tenant-quota", "64",
            "--max-in-flight", "256",
            "--metrics-port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        address = metrics = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            assert line, "krad serve exited before binding"
            if line.startswith("serving on "):
                host, _, port = line.split()[-1].rpartition(":")
                address = (host, int(port))
            elif line.startswith("metrics on "):
                url = line.split()[-1]
                hostport = url.split("//")[1].split("/")[0]
                mhost, _, mport = hostport.rpartition(":")
                metrics = (mhost, int(mport))
            if address and metrics:
                break
        assert address is not None and metrics is not None

        jobs = _jobs(20, 54)
        with ServiceClient(address) as cli:
            acks = []
            # first wave, then let the engine genuinely advance, then
            # keep streaming: arrivals are spread across the live run
            for i, job in enumerate(jobs[:20]):
                acks.append(cli.submit(f"tenant-{i % 3}", job))
            t0 = time.monotonic()
            while cli.stats()["clock"] == 0 and time.monotonic() - t0 < 20:
                time.sleep(0.01)
            for i, job in enumerate(jobs[20:]):
                acks.append(cli.submit(f"tenant-{(i + 20) % 3}", job))
            assert all(a["ok"] for a in acks)
            assert len({a["tenant"] for a in acks}) == 3
            live = parse_prometheus_text(fetch_metrics_text(metrics))
            assert (
                sum(
                    v
                    for k, v in live.items()
                    if k.startswith("krad_submissions_total")
                )
                == 54
            )
            assert live['krad_service_draining'] == 0
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        proc.stdout.close()

    # recover the whole service from the journal and finish the backlog
    cfg = ServiceConfig(
        capacities=CAPS, seed=11, engine=engine, journal_path=journal
    )
    svc = SchedulingService.recover(cfg, obs=Observability())
    stats = svc.stats()
    assert stats["accepted"] == 54
    summary = svc.drain()
    assert summary["completed"] == 54
    assert sorted(summary["per_tenant"]) == [
        "tenant-0", "tenant-1", "tenant-2",
    ]

    # equivalent batch run: the exact submitted jobs at their effective
    # release times, rebuilt from the journal's own submit records
    from repro.sim.journal import read_journal

    records, _, _ = read_journal(journal)
    batch_jobs = [
        job_snapshot_from_dict(rec.data["job"])
        for rec in records
        if rec.type == "submit"
    ]
    assert len(batch_jobs) == 54
    batch = simulate(
        KResourceMachine(CAPS),
        scheduler_by_name("k-rad"),
        JobSet(batch_jobs, num_categories=len(CAPS)),
        seed=11,
        engine=engine,
    )
    assert batch.makespan == summary["makespan"]
    assert {
        int(j): int(t) for j, t in batch.completion_times.items()
    } == summary["completions"]
    batch_response = {
        int(j): int(t) - int(batch.release_times[j])
        for j, t in batch.completion_times.items()
    }
    assert batch_response == summary["response_times"]
