"""Tests for the exact optimal-makespan solver."""

import numpy as np
import pytest

from repro.dag import KDag, builders, figure3_instance
from repro.errors import ReproError
from repro.jobs import JobSet, Phase, PhaseJob, workloads
from repro.machine import KResourceMachine
from repro.theory.optimal import optimal_makespan_exact
from repro.theory.bounds import makespan_lower_bound


class TestExactSolver:
    def test_single_chain(self):
        machine = KResourceMachine((2,))
        js = JobSet.from_dags([builders.chain([0] * 5, 1)])
        assert optimal_makespan_exact(machine, js) == 5

    def test_independent_tasks_pack_perfectly(self):
        machine = KResourceMachine((3,))
        js = JobSet.from_dags([builders.independent_tasks([7])])
        assert optimal_makespan_exact(machine, js) == 3  # ceil(7/3)

    def test_two_categories_overlap(self):
        # cat-0 chain and cat-1 chain run concurrently
        machine = KResourceMachine((1, 1))
        js = JobSet.from_dags(
            [builders.chain([0] * 4, 2), builders.chain([1] * 4, 2)]
        )
        assert optimal_makespan_exact(machine, js) == 4

    def test_fork_join(self):
        machine = KResourceMachine((2,))
        js = JobSet.from_dags([builders.fork_join(4, 0, 1)])
        # fork 1 step, 4 bodies on 2 procs = 2 steps, join 1 step
        assert optimal_makespan_exact(machine, js) == 4

    def test_beats_or_equals_lower_bound(self, rng):
        machine = KResourceMachine((2, 1))
        for _ in range(10):
            js = workloads.random_dag_jobset(rng, 2, 3, size_hint=4)
            if int(js.total_work_vector().sum()) > 12:
                continue
            opt = optimal_makespan_exact(machine, js)
            assert opt >= makespan_lower_bound(js, machine) - 1e-9

    def test_figure3_m1_matches_closed_form(self):
        inst = figure3_instance(1, (2, 2))
        machine = KResourceMachine((2, 2))
        js = JobSet.from_dags(inst.dags)
        assert optimal_makespan_exact(machine, js) == inst.optimal_makespan

    def test_empty_jobs(self):
        machine = KResourceMachine((1,))
        dag = KDag(1)  # zero tasks
        js = JobSet.from_dags([dag])
        assert optimal_makespan_exact(machine, js) == 0

    def test_rejects_non_batched(self):
        machine = KResourceMachine((1,))
        js = JobSet.from_dags([builders.chain([0], 1)], release_times=[3])
        with pytest.raises(ReproError):
            optimal_makespan_exact(machine, js)

    def test_rejects_phase_jobs(self):
        machine = KResourceMachine((1,))
        js = JobSet([PhaseJob([Phase([2], [1])], job_id=0)])
        with pytest.raises(ReproError):
            optimal_makespan_exact(machine, js)

    def test_state_budget_guard(self):
        machine = KResourceMachine((2, 2))
        rng = np.random.default_rng(0)
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=30)
        with pytest.raises(ReproError, match="states"):
            optimal_makespan_exact(machine, js, max_states=50)

    def test_optimal_never_above_any_schedule(self, rng):
        from repro.schedulers import KRad
        from repro.sim import simulate

        machine = KResourceMachine((2, 1))
        for _ in range(8):
            js = workloads.random_dag_jobset(rng, 2, 2, size_hint=4)
            if int(js.total_work_vector().sum()) > 12:
                continue
            opt = optimal_makespan_exact(machine, js)
            r = simulate(machine, KRad(), js)
            assert opt <= r.makespan
