"""Differential/cross-validation tests: independent paths must agree.

Each test computes the same quantity two independent ways and demands
agreement — the strongest kind of correctness evidence a simulator can
offer without an external oracle.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.jobs import workloads
from repro.machine import KResourceMachine
from repro.schedulers import (
    DagShopScheduler,
    Equi,
    GangScheduler,
    GreedyFcfs,
    KDeq,
    KRad,
    KRoundRobin,
    StaticPartition,
)
from repro.sim import RecordingScheduler, simulate
from repro.theory.optimal import optimal_makespan_exact

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_ALL_SCHEDULERS = [
    KRad,
    KDeq,
    KRoundRobin,
    Equi,
    GreedyFcfs,
    DagShopScheduler,
    StaticPartition,
    GangScheduler,
]


class TestRecordingMatchesTrace:
    @given(st.integers(0, 2**31))
    @_SETTINGS
    def test_records_agree_with_trace(self, seed):
        """The instrumentation wrapper and the engine trace are written by
        different code paths; their allotments must coincide step by step."""
        machine = KResourceMachine((4, 2))
        rng = np.random.default_rng(seed)
        js = workloads.random_dag_jobset(rng, 2, 5, size_hint=8)
        recorder = RecordingScheduler(KRad())
        result = simulate(machine, recorder, js, record_trace=True)
        assert len(recorder.records) == len(result.trace)
        for rec, step in zip(recorder.records, result.trace):
            assert rec.t == step.t
            rec_map = {
                jid: a.tolist()
                for jid, a in rec.allotments.items()
                if any(a.tolist())
            }
            step_map = {
                jid: np.asarray(a).tolist()
                for jid, a in step.allotments.items()
                if any(np.asarray(a).tolist())
            }
            assert rec_map == step_map

    @given(st.integers(0, 2**31))
    @_SETTINGS
    def test_busy_matches_trace_execution(self, seed):
        machine = KResourceMachine((3, 3))
        rng = np.random.default_rng(seed)
        js = workloads.random_dag_jobset(rng, 2, 4, size_hint=8)
        result = simulate(machine, KRad(), js, record_trace=True)
        assert (
            result.busy.tolist()
            == result.trace.busy_matrix().sum(axis=0).tolist()
        )


class TestExactOptimumDominates:
    @given(st.integers(0, 2**31))
    @_SETTINGS
    def test_no_scheduler_beats_the_exact_optimum(self, seed):
        machine = KResourceMachine((2, 1))
        rng = np.random.default_rng(seed)
        js = workloads.random_dag_jobset(rng, 2, 2, size_hint=4)
        if int(js.total_work_vector().sum()) > 12:
            return
        opt = optimal_makespan_exact(machine, js, max_states=100_000)
        for factory in _ALL_SCHEDULERS:
            r = simulate(machine, factory(), js)
            assert r.makespan >= opt, factory.name


class TestResponseAtLeastSpan:
    @given(
        st.integers(0, 2**31),
        st.sampled_from(list(range(len(_ALL_SCHEDULERS)))),
    )
    @_SETTINGS
    def test_no_job_finishes_faster_than_its_span(self, seed, sched_idx):
        machine = KResourceMachine((4, 4))
        rng = np.random.default_rng(seed)
        js = workloads.random_dag_jobset(rng, 2, 4, size_hint=8)
        r = simulate(machine, _ALL_SCHEDULERS[sched_idx](), js)
        for job in js:
            assert r.response_time(job.job_id) >= job.span()

    @given(st.integers(0, 2**31))
    @_SETTINGS
    def test_makespan_between_certificates(self, seed):
        from repro.theory.bounds import lemma2_bound, makespan_lower_bound

        machine = KResourceMachine((4, 2))
        rng = np.random.default_rng(seed)
        js = workloads.random_dag_jobset(rng, 2, 6, size_hint=10)
        r = simulate(machine, KRad(), js)
        assert (
            makespan_lower_bound(js, machine) - 1e-9
            <= r.makespan
            <= lemma2_bound(js, machine) + 1e-9
        )
