"""Property-based integration tests: theorems hold on arbitrary workloads.

hypothesis drives random K-DAG and phase workloads through the full
simulator and asserts, for every generated instance:

* the recorded schedule is valid (precedence, capacities, categories);
* Theorem 3's makespan guarantee holds for K-RAD;
* Lemma 2's absolute bound holds on idle-free runs;
* Theorems 5/6's response-time guarantees hold on batched sets;
* simulation is deterministic and backend-independent where it should be.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.jobs import CP_FIRST, CP_LAST, FIFO, LIFO, JobSet, workloads
from repro.machine import KResourceMachine
from repro.schedulers import Equi, GreedyFcfs, KDeq, KRad, KRoundRobin
from repro.sim import simulate, validate_schedule
from repro.theory import (
    check_lemma2,
    check_makespan_bound,
    check_theorem5,
    check_theorem6,
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def machine_strategy(draw):
    k = draw(st.integers(1, 3))
    caps = tuple(draw(st.integers(1, 6)) for _ in range(k))
    return KResourceMachine(caps)


@st.composite
def dag_workload(draw):
    machine = draw(machine_strategy())
    seed = draw(st.integers(0, 2**31))
    n = draw(st.integers(1, 8))
    rng = np.random.default_rng(seed)
    js = workloads.random_dag_jobset(
        rng, machine.num_categories, n, size_hint=8
    )
    return machine, js


@st.composite
def phase_workload(draw):
    machine = draw(machine_strategy())
    seed = draw(st.integers(0, 2**31))
    n = draw(st.integers(1, 10))
    rng = np.random.default_rng(seed)
    js = workloads.random_phase_jobset(
        rng, machine.num_categories, n, max_work=15, max_parallelism=6
    )
    return machine, js


class TestScheduleValidity:
    @given(dag_workload())
    @_SETTINGS
    def test_krad_schedules_are_valid(self, case):
        machine, js = case
        r = simulate(machine, KRad(), js, record_trace=True)
        validate_schedule(r.trace, js)

    @given(dag_workload(), st.sampled_from(["equi", "greedy", "rr", "deq"]))
    @_SETTINGS
    def test_baseline_schedules_are_valid(self, case, which):
        machine, js = case
        sched = {
            "equi": Equi(),
            "greedy": GreedyFcfs(),
            "rr": KRoundRobin(),
            "deq": KDeq(),
        }[which]
        r = simulate(machine, sched, js, record_trace=True)
        validate_schedule(r.trace, js)

    @given(dag_workload(), st.sampled_from(["fifo", "lifo", "cp-first", "cp-last"]))
    @_SETTINGS
    def test_all_policies_produce_valid_schedules(self, case, policy_name):
        from repro.jobs.policies import policy_by_name

        machine, js = case
        r = simulate(
            machine, KRad(), js, policy=policy_by_name(policy_name),
            record_trace=True,
        )
        validate_schedule(r.trace, js)


class TestTheoremGuarantees:
    @given(dag_workload())
    @_SETTINGS
    def test_theorem3_on_dag_jobs(self, case):
        machine, js = case
        r = simulate(machine, KRad(), js)
        assert check_makespan_bound(r, js, machine).holds
        if r.idle_steps == 0:
            assert check_lemma2(r, js, machine).holds

    @given(phase_workload())
    @_SETTINGS
    def test_theorem3_on_phase_jobs(self, case):
        machine, js = case
        r = simulate(machine, KRad(), js)
        assert check_makespan_bound(r, js, machine).holds

    @given(phase_workload())
    @_SETTINGS
    def test_theorem6_on_batched_sets(self, case):
        machine, js = case
        r = simulate(machine, KRad(), js)
        assert check_theorem6(r, js, machine).holds

    @given(dag_workload())
    @_SETTINGS
    def test_theorem6_on_dag_sets(self, case):
        machine, js = case
        r = simulate(machine, KRad(), js)
        assert check_theorem6(r, js, machine).holds

    @given(st.integers(0, 2**31), st.integers(1, 4))
    @_SETTINGS
    def test_theorem5_light_workload(self, seed, n):
        machine = KResourceMachine((8, 8))
        rng = np.random.default_rng(seed)
        js = workloads.light_phase_jobset(rng, machine, min(n, 8))
        r = simulate(machine, KRad(), js)
        assert check_theorem5(r, js, machine).holds

    @given(dag_workload())
    @_SETTINGS
    def test_makespan_at_least_lower_bound(self, case):
        from repro.theory.bounds import makespan_lower_bound

        machine, js = case
        for sched in (KRad(), Equi(), GreedyFcfs()):
            r = simulate(machine, sched, js)
            assert r.makespan >= makespan_lower_bound(js, machine) - 1e-9


class TestConservation:
    @given(dag_workload())
    @_SETTINGS
    def test_executed_work_equals_total_work(self, case):
        machine, js = case
        r = simulate(machine, KRad(), js, record_trace=True)
        done = r.trace.busy_matrix().sum(axis=0)
        assert done.tolist() == js.total_work_vector().tolist()

    @given(dag_workload())
    @_SETTINGS
    def test_all_jobs_complete_with_valid_times(self, case):
        machine, js = case
        r = simulate(machine, KRad(), js)
        assert set(r.completion_times) == {j.job_id for j in js}
        for j in js:
            assert r.completion_times[j.job_id] > j.release_time
        assert r.makespan == max(r.completion_times.values())

    @given(dag_workload())
    @_SETTINGS
    def test_determinism(self, case):
        machine, js = case
        a = simulate(machine, KRad(), js, seed=0)
        b = simulate(machine, KRad(), js, seed=0)
        assert a.completion_times == b.completion_times
