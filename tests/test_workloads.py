"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.jobs import workloads
from repro.machine import KResourceMachine


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestRandomDag:
    def test_sizes_and_validity(self, rng):
        for _ in range(20):
            dag = workloads.random_dag(rng, 3, size_hint=15)
            dag.validate()
            assert dag.num_vertices >= 1
            assert dag.num_categories == 3

    def test_bad_size_hint(self, rng):
        with pytest.raises(WorkloadError):
            workloads.random_dag(rng, 1, size_hint=0)

    def test_jobset_generation(self, rng):
        js = workloads.random_dag_jobset(rng, 2, 7)
        assert len(js) == 7
        assert js.is_batched()

    def test_jobset_needs_jobs(self, rng):
        with pytest.raises(WorkloadError):
            workloads.random_dag_jobset(rng, 2, 0)

    def test_deterministic_from_seed(self):
        a = workloads.random_dag_jobset(np.random.default_rng(5), 2, 4)
        b = workloads.random_dag_jobset(np.random.default_rng(5), 2, 4)
        assert a.total_work_vector().tolist() == b.total_work_vector().tolist()
        assert a.spans().tolist() == b.spans().tolist()


class TestPhaseWorkloads:
    def test_random_phase_job_structure(self, rng):
        job = workloads.random_phase_job(rng, 3, max_phases=3)
        assert job.num_categories == 3
        assert job.span() >= 1
        assert job.work_vector().sum() >= 1

    def test_random_phase_jobset(self, rng):
        js = workloads.random_phase_jobset(rng, 2, 9)
        assert len(js) == 9
        assert js.num_categories == 2

    def test_light_jobset_respects_limit(self, rng):
        machine = KResourceMachine((8, 4))
        js = workloads.light_phase_jobset(rng, machine, 4)
        assert len(js) == 4

    def test_light_jobset_rejects_too_many_jobs(self, rng):
        machine = KResourceMachine((8, 4))
        with pytest.raises(WorkloadError):
            workloads.light_phase_jobset(rng, machine, 5)

    def test_heavy_jobset_scales_with_load(self, rng):
        machine = KResourceMachine((4, 2))
        js = workloads.heavy_phase_jobset(rng, machine, load_factor=3.0)
        assert len(js) == 12

    def test_heavy_jobset_validates_load(self, rng):
        machine = KResourceMachine((4,))
        with pytest.raises(WorkloadError):
            workloads.heavy_phase_jobset(rng, machine, load_factor=0)


class TestReleaseTimes:
    def test_poisson_first_at_zero_sorted(self, rng):
        times = workloads.poisson_release_times(rng, 20, rate=0.5)
        assert times[0] == 0
        assert times == sorted(times)
        assert len(times) == 20

    def test_poisson_rate_validated(self, rng):
        with pytest.raises(WorkloadError):
            workloads.poisson_release_times(rng, 5, rate=0)

    def test_uniform_range(self, rng):
        times = workloads.uniform_release_times(rng, 30, horizon=10)
        assert times[0] == 0
        assert max(times) <= 10
        assert times == sorted(times)

    def test_uniform_horizon_validated(self, rng):
        with pytest.raises(WorkloadError):
            workloads.uniform_release_times(rng, 5, horizon=-1)

    def test_with_release_times(self, rng):
        js = workloads.random_phase_jobset(rng, 1, 3)
        out = workloads.with_release_times(js, [0, 2, 5])
        assert out.release_times().tolist() == [0, 2, 5]
        # original untouched
        assert js.release_times().tolist() == [0, 0, 0]

    def test_with_release_times_length_checked(self, rng):
        js = workloads.random_phase_jobset(rng, 1, 3)
        with pytest.raises(WorkloadError):
            workloads.with_release_times(js, [0])

    def test_with_release_times_rejects_negative(self, rng):
        js = workloads.random_phase_jobset(rng, 1, 2)
        with pytest.raises(WorkloadError):
            workloads.with_release_times(js, [0, -3])

    def test_bursty_structure(self, rng):
        times = workloads.bursty_release_times(
            rng, 40, burst_size=8, gap=50
        )
        assert len(times) == 40
        assert times == sorted(times)
        # at least two distinct burst instants and co-arriving jobs
        distinct = sorted(set(times))
        assert len(distinct) >= 2
        assert any(times.count(t) >= 2 for t in distinct)
        # lulls between bursts are on the order of the gap
        assert max(b - a for a, b in zip(distinct, distinct[1:])) >= 25

    def test_bursty_validation(self, rng):
        with pytest.raises(WorkloadError):
            workloads.bursty_release_times(rng, 5, burst_size=0)

    def test_zero_jobs_yield_empty(self, rng):
        assert workloads.poisson_release_times(rng, 0, rate=0.5) == []
        assert workloads.uniform_release_times(rng, 0, horizon=10) == []
        assert workloads.bursty_release_times(rng, 0) == []

    def test_negative_jobs_rejected(self, rng):
        with pytest.raises(WorkloadError):
            workloads.poisson_release_times(rng, -1, rate=0.5)
        with pytest.raises(WorkloadError):
            workloads.uniform_release_times(rng, -1, horizon=10)
        with pytest.raises(WorkloadError):
            workloads.bursty_release_times(rng, -1)

    def test_bursty_zero_gap_is_one_continuous_burst(self, rng):
        times = workloads.bursty_release_times(
            rng, 25, burst_size=4, gap=0
        )
        assert times == [0] * 25

    def test_bursty_gap_draws_unchanged_for_positive_gap(self):
        # the gap=0 fix must not shift the RNG draw sequence of
        # gap>0 calls, or every seeded workload downstream changes
        a = workloads.bursty_release_times(
            np.random.default_rng(42), 40, burst_size=8, gap=50
        )
        b = workloads.bursty_release_times(
            np.random.default_rng(42), 40, burst_size=8, gap=50
        )
        assert a == b
        assert max(a) > 0


class TestBimodal:
    def test_mix_proportions(self, rng):
        machine = KResourceMachine((8, 4))
        js = workloads.bimodal_phase_jobset(
            rng, machine, 20, elephant_fraction=0.25
        )
        totals = sorted(int(j.total_work()) for j in js)
        assert len(js) == 20
        # 5 elephants dwarf the mice
        assert totals[-5] > 10 * totals[0]

    def test_all_mice(self, rng):
        machine = KResourceMachine((4,))
        js = workloads.bimodal_phase_jobset(
            rng, machine, 6, elephant_fraction=0.0
        )
        assert max(j.total_work() for j in js) <= 5

    def test_validation(self, rng):
        machine = KResourceMachine((4,))
        with pytest.raises(WorkloadError):
            workloads.bimodal_phase_jobset(rng, machine, 0)
        with pytest.raises(WorkloadError):
            workloads.bimodal_phase_jobset(
                rng, machine, 4, elephant_fraction=1.5
            )
