"""Unit tests for the performance-heterogeneity extension."""

import numpy as np
import pytest

from repro.dag import builders
from repro.errors import CategoryError, ReproError, SimulationError
from repro.jobs import JobSet, Phase, PhaseJob, workloads
from repro.machine import KResourceMachine
from repro.perf import (
    SpeedMachine,
    job_weighted_span,
    simulate_speeds,
    speed_makespan_lower_bound,
    weighted_span,
)
from repro.schedulers import KRad
from repro.sim import simulate


class TestSpeedMachine:
    def test_basic(self):
        m = SpeedMachine((4, 2), (1, 3), names=("cpu", "vector"))
        assert m.speeds == (1, 3)
        assert m.max_speed == 3
        assert m.speed(1) == 3
        assert m.throughput_vector().tolist() == [4, 6]
        assert m.capacities == (4, 2)
        assert m.base.num_categories == 2

    def test_validation(self):
        with pytest.raises(CategoryError):
            SpeedMachine((4, 2), (1,))
        with pytest.raises(CategoryError):
            SpeedMachine((4,), (0,))
        with pytest.raises(CategoryError):
            SpeedMachine((4,), (1,)).speed(1)


class TestWeightedSpan:
    def test_unit_speeds_equal_span(self):
        dag = builders.chain([0, 1, 0], 2)
        assert weighted_span(dag, (1, 1)) == dag.span()

    def test_mixed_speeds(self):
        dag = builders.chain([0, 1, 0], 2)
        # step 1: v0 in round 0, v1 in round 1 (cat 1 runs rounds 0-1);
        # v2 is cat 0 (round 0 only) so it needs step 2.
        assert weighted_span(dag, (1, 2)) == pytest.approx(2.0)

    def test_chain_crosses_categories_within_a_step(self):
        # The engine lets a fast successor run in a later micro-round of
        # the same macro step, so this two-task chain costs ONE step, not
        # 1/1 + 1/2.  Regression for an over-strong earlier bound.
        dag = builders.chain([0, 1], 2)
        assert weighted_span(dag, (1, 2)) == pytest.approx(1.0)

    def test_same_category_chain_packs_rounds(self):
        # five cat-1 tasks at speed 2: two per macro step -> ceil(5/2)
        dag = builders.chain([1] * 5, 2)
        assert weighted_span(dag, (1, 2)) == pytest.approx(3.0)

    def test_picks_heaviest_path(self):
        dag = builders.fork_join(2, 1, 2, fork_category=0, join_category=0)
        # fork(0) round 0, body(1) round 1 (speed 4 runs rounds 0-3),
        # join(0) is round-0-only -> step 2
        assert weighted_span(dag, (1, 4)) == pytest.approx(2.0)

    def test_empty_dag(self):
        from repro.dag import KDag

        assert weighted_span(KDag(1), (2,)) == 0.0

    def test_speed_count_validated(self):
        dag = builders.chain([0], 1)
        with pytest.raises(ReproError):
            weighted_span(dag, (1, 1))

    def test_phase_job_conservative(self):
        job = PhaseJob([Phase([4, 0], [2, 1])])
        assert job_weighted_span(job, (2, 4)) == pytest.approx(job.span() / 4)


class TestSpeedEngine:
    def test_unit_speeds_reduce_to_base_engine(self, rng):
        caps = (4, 2, 8)
        js = workloads.random_dag_jobset(rng, 3, 6)
        a = simulate(KResourceMachine(caps), KRad(), js)
        b = simulate_speeds(SpeedMachine(caps, (1, 1, 1)), KRad(), js)
        assert a.makespan == b.makespan
        assert a.completion_times == b.completion_times

    def test_chain_speedup_is_exact(self):
        # a serial chain of 12 category-0 tasks at speed 3 -> 4 steps
        dag = builders.chain([0] * 12, 1)
        js = JobSet.from_dags([dag])
        m = SpeedMachine((2,), (3,))
        r = simulate_speeds(m, KRad(), js)
        assert r.makespan == 4

    def test_wide_work_speedup_is_exact(self):
        # 24 independent tasks, 2 procs at speed 3 -> 24 / 6 = 4 steps
        dag = builders.independent_tasks([24])
        js = JobSet.from_dags([dag])
        r = simulate_speeds(SpeedMachine((2,), (3,)), KRad(), js)
        assert r.makespan == 4

    def test_speed_never_hurts(self, rng):
        caps = (4, 2)
        js = workloads.random_dag_jobset(rng, 2, 6)
        slow = simulate_speeds(SpeedMachine(caps, (1, 1)), KRad(), js)
        fast = simulate_speeds(SpeedMachine(caps, (2, 3)), KRad(), js)
        assert fast.makespan <= slow.makespan

    def test_lower_bound_respected(self, rng):
        m = SpeedMachine((4, 2), (2, 3))
        js = workloads.random_dag_jobset(rng, 2, 5)
        r = simulate_speeds(m, KRad(), js)
        assert r.makespan >= speed_makespan_lower_bound(js, m) - 1e-9

    def test_k_mismatch_rejected(self, rng):
        js = workloads.random_dag_jobset(rng, 2, 2)
        with pytest.raises(SimulationError):
            simulate_speeds(SpeedMachine((4,), (1,)), KRad(), js)

    def test_phase_jobs_supported(self):
        js = JobSet([PhaseJob([Phase([12], [4])], job_id=0)])
        r = simulate_speeds(SpeedMachine((4,), (3,)), KRad(), js)
        assert r.makespan == 1  # 4 procs x 3 speed = 12 units in one step

    def test_lb_k_mismatch_rejected(self, rng):
        js = workloads.random_dag_jobset(rng, 2, 2)
        with pytest.raises(ReproError):
            speed_makespan_lower_bound(js, SpeedMachine((4,), (1,)))
