"""Integration tests: every experiment driver runs and passes its checks.

Small parameters keep this fast; the benchmarks run the full-size versions.
"""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments import (
    exp_baselines,
    exp_k1_homogeneous,
    exp_lemma4,
    exp_makespan,
    exp_response_heavy,
    exp_response_light,
    fig1_example,
    fig3_lower_bound,
)


class TestDrivers:
    def test_fig1(self):
        report = fig1_example.run()
        assert report.passed, report.failing_checks()
        assert "Gantt" not in report.render() or True
        assert report.experiment_id == "FIG1"

    def test_fig3_small(self):
        report = fig3_lower_bound.run(configs=[(2, 2), (2, 2, 2)], ms=[1, 2])
        assert report.passed, report.failing_checks()
        assert len(report.rows) == 4

    def test_makespan_small(self):
        report = exp_makespan.run(seed=1, repeats=1, n_jobs=(3,))
        assert report.passed, report.failing_checks()

    def test_response_light_small(self):
        report = exp_response_light.run(seed=1, repeats=1, n_jobs=(2,))
        assert report.passed, report.failing_checks()

    def test_response_heavy_small(self):
        report = exp_response_heavy.run(seed=1, repeats=1, load_factors=(2.0,))
        assert report.passed, report.failing_checks()

    def test_lemma4_small(self):
        report = exp_lemma4.run(seed=1, trials=200, max_m=15)
        assert report.passed, report.failing_checks()

    def test_k1_small(self):
        report = exp_k1_homogeneous.run(
            seed=1, repeats=1, processors=(4,), n_jobs=(4, 8), lb_ms=(1, 2)
        )
        assert report.passed, report.failing_checks()

    def test_baselines_small(self):
        report = exp_baselines.run(seed=1, repeats=1)
        assert report.passed, report.failing_checks()


class TestRegistry:
    def test_all_ids_registered(self):
        paper = {
            "FIG1", "FIG3", "THM3", "THM5", "THM6", "LEM4", "K1", "BASE",
            "FAIR", "SHOP", "OPT", "ADAPT", "WKLD", "APPS", "SENS",
        }
        extensions = {
            "RAND", "SPEED", "FEEDBACK", "ABLATE", "FAULT", "CHURN", "HUNT",
            "SCEN", "ARENA",
        }
        assert set(REGISTRY) == paper | extensions

    def test_run_experiment_case_insensitive(self):
        report = run_experiment("fig1")
        assert report.experiment_id == "FIG1"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("NOPE")


class TestReportRendering:
    def test_render_contains_verdicts(self):
        report = fig1_example.run()
        out = report.render()
        assert "PASS" in out
        assert "experiment PASSED" in out

    def test_failing_check_renders_fail(self):
        report = fig1_example.run()
        report.checks["synthetic failure"] = False
        out = report.render()
        assert "FAIL" in out and "experiment FAILED" in out
        assert not report.passed
        assert report.failing_checks() == ["synthetic failure"]
