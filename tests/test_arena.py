"""The scheduler policy arena: registry, tournament, leaderboard, env.

Covers the four arena surfaces end to end on deliberately small
tournaments (two scenarios, a handful of policies) so the whole module
stays in tier-1 time budgets; the full-grid run is the ARENA experiment
and the CI arena-smoke job.
"""

import dataclasses

import numpy as np
import pytest

from repro.arena import (
    ARENA_POLICIES,
    ArenaPolicy,
    GreedyRolloutPolicy,
    Leaderboard,
    PolicyScheduler,
    SchedulingEnv,
    arena_policies_for,
    arena_policy_names,
    certified_scenario_names,
    clip_action,
    compare_leaderboards,
    get_policy,
    load_leaderboard,
    register_policy,
    rollout,
    run_cross_engine_tournament,
    run_tournament,
)
from repro.errors import ReproError, ScheduleError
from repro.machine.machine import KResourceMachine
from repro.schedulers import KRad
from repro.workloads.replay import replay
from repro.workloads.scenarios import SCENARIOS, build_trace

CAPS = (4, 2)
SMALL = dict(
    scenarios=("bursty", "hotspot"),
    policies=("k-rad", "equi", "greedy-fcfs", "list-sched", "env-greedy"),
    seed=3,
    num_jobs=6,
    capacities=CAPS,
)


class TestRegistry:
    def test_every_certified_scenario_is_fault_free(self):
        for name in certified_scenario_names():
            assert SCENARIOS[name].faults is None

    def test_known_names_cover_paper_and_extensions(self):
        names = arena_policy_names()
        for expected in (
            "k-rad", "rad", "k-deq", "k-rr", "equi", "greedy-fcfs",
            "setf", "list-sched", "env-greedy",
        ):
            assert expected in names

    def test_rad_sits_out_multi_category_machines(self):
        multi = {p.name for p in arena_policies_for((4, 2))}
        single = {p.name for p in arena_policies_for((4,))}
        assert "rad" not in multi
        assert "rad" in single

    def test_factories_build_fresh_instances(self):
        entry = get_policy("k-rad")
        assert entry.make() is not entry.make()

    def test_unknown_policy_names_the_choices(self):
        with pytest.raises(ReproError, match="k-rad"):
            get_policy("nope")

    def test_name_mismatch_is_caught_at_make_time(self):
        bad = ArenaPolicy(name="imposter", factory=KRad)
        with pytest.raises(ReproError, match="imposter"):
            bad.make()

    def test_register_policy_refuses_silent_override(self):
        entry = get_policy("k-rad")
        with pytest.raises(ReproError, match="already registered"):
            register_policy(entry)
        register_policy(entry, replace=True)  # no-op override allowed
        assert ARENA_POLICIES["k-rad"] is entry


class TestTournament:
    def test_small_tournament_fills_every_cell(self):
        board = run_tournament(**SMALL)
        assert len(board.cells) == len(SMALL["policies"]) * len(
            SMALL["scenarios"]
        )
        for cell in board.cells:
            assert cell.makespan_ratio >= 1.0
            assert cell.mean_response_ratio >= 1.0
            assert cell.trace_digest and cell.schedule_digest

    def test_krad_within_theorem3_limit(self):
        board = run_tournament(**SMALL)
        for cell in board.cells:
            if cell.policy == "k-rad":
                assert cell.makespan_ratio <= board.theorem3_limit + 1e-9

    def test_faulted_scenario_is_an_error_not_a_skip(self):
        faulted = [
            n for n, s in SCENARIOS.items() if not s.certified
        ]
        assert faulted, "scenario library lost its faulted entry"
        with pytest.raises(ReproError, match="faults"):
            run_tournament(scenarios=(faulted[0],), capacities=CAPS)

    def test_unknown_scenario_is_an_error(self):
        with pytest.raises(ReproError, match="unknown scenario"):
            run_tournament(scenarios=("atlantis",), capacities=CAPS)

    def test_unsupported_policy_is_an_error(self):
        with pytest.raises(ReproError, match="rad"):
            run_tournament(
                scenarios=("bursty",), policies=("rad",), capacities=CAPS
            )

    def test_deterministic_leaderboard_digest(self):
        a = run_tournament(**SMALL)
        b = run_tournament(**SMALL)
        assert a.content_digest() == b.content_digest()

    def test_cross_engine_boards_bit_identical(self):
        boards = run_cross_engine_tournament(
            scenarios=("bursty",),
            policies=("k-rad", "list-sched", "env-greedy"),
            seed=1,
            num_jobs=5,
            capacities=CAPS,
        )
        ref, fast = boards["reference"], boards["fast"]
        assert ref.engine == "reference" and fast.engine == "fast"
        assert ref.content_digest() == fast.content_digest()
        assert ref.content_digest(
            ignore_engine=False
        ) != fast.content_digest(ignore_engine=False)

    def test_cross_engine_needs_two_engines(self):
        with pytest.raises(ReproError, match=">= 2 engines"):
            run_cross_engine_tournament(engines=("reference",))


class TestLeaderboard:
    def _board(self) -> Leaderboard:
        return run_tournament(**SMALL)

    def test_json_roundtrip(self, tmp_path):
        board = self._board()
        path = tmp_path / "board.json"
        board.dump(path)
        loaded = load_leaderboard(path)
        assert loaded.cells == board.cells
        assert loaded.content_digest() == board.content_digest()

    def test_missing_cell_lookup_raises(self):
        board = self._board()
        with pytest.raises(ReproError, match="no leaderboard cell"):
            board.cell("k-rad", "atlantis")

    def test_ranking_is_sorted_and_total(self):
        board = self._board()
        rows = board.ranking()
        assert [r["policy"] for r in rows] == sorted(
            (r["policy"] for r in rows),
            key=lambda n: (
                next(x["mean_ratio"] for x in rows if x["policy"] == n),
                n,
            ),
        )
        means = [r["mean_ratio"] for r in rows]
        assert means == sorted(means)
        with pytest.raises(ReproError, match="unknown objective"):
            board.ranking("latency")

    def test_compare_passes_against_itself(self):
        board = self._board()
        assert compare_leaderboards(board, board) == []

    def test_compare_flags_ratio_regression(self):
        board = self._board()
        worse = dataclasses.replace(
            board.cells[0],
            makespan_ratio=board.cells[0].makespan_ratio * 1.5,
        )
        current = Leaderboard(
            capacities=board.capacities,
            engine=board.engine,
            seed=board.seed,
            theorem3_limit=board.theorem3_limit,
            cells=[worse] + board.cells[1:],
        )
        failures = compare_leaderboards(current, board)
        assert any("regressed" in f for f in failures)

    def test_compare_flags_missing_cell(self):
        board = self._board()
        current = Leaderboard(
            capacities=board.capacities,
            engine=board.engine,
            seed=board.seed,
            theorem3_limit=board.theorem3_limit,
            cells=board.cells[1:],
        )
        failures = compare_leaderboards(current, board)
        assert any("missing" in f for f in failures)

    def test_compare_refuses_different_machines(self):
        board = self._board()
        other = Leaderboard(
            capacities=(8, 8),
            engine=board.engine,
            seed=board.seed,
            theorem3_limit=board.theorem3_limit,
        )
        failures = compare_leaderboards(other, board)
        assert failures and "capacities changed" in failures[0]


class TestEnv:
    def _setup(self, seed=2, num_jobs=8):
        trace = build_trace("bursty", seed=seed, num_jobs=num_jobs)
        jobset = trace.to_jobset()
        machine = KResourceMachine(trace.capacities)
        return trace, jobset, machine

    def test_reset_observation_shape(self):
        _, jobset, machine = self._setup()
        env = SchedulingEnv(machine, jobset)
        obs = env.reset()
        assert obs.t >= 1
        assert obs.desires.shape == (obs.num_jobs, machine.num_categories)
        assert obs.backlog.shape == (machine.num_categories,)
        assert obs.capacities == tuple(machine.capacities)

    def test_step_before_reset_raises(self):
        _, jobset, machine = self._setup()
        env = SchedulingEnv(machine, jobset)
        with pytest.raises(ScheduleError, match="reset"):
            env.step(np.zeros((0, machine.num_categories)))

    def test_empty_jobset_rejected(self):
        from repro.jobs.jobset import JobSet

        with pytest.raises(ScheduleError, match="non-empty"):
            SchedulingEnv(KResourceMachine(CAPS), JobSet([], 2))

    def test_greedy_rollout_finishes_and_scores(self):
        _, jobset, machine = self._setup()
        env = SchedulingEnv(machine, jobset)
        out = rollout(env, GreedyRolloutPolicy())
        assert env.done
        assert out["makespan"] == env.makespan > 0
        assert out["return"] <= 0

    def test_env_episode_matches_engine_schedule(self):
        """The docstring claim: one env episode == the PolicyScheduler
        run of the same policy through the real engines."""
        trace, jobset, machine = self._setup()
        out = rollout(
            SchedulingEnv(machine, jobset), GreedyRolloutPolicy()
        )
        rep = replay(
            trace,
            engine="reference",
            scheduler=PolicyScheduler(GreedyRolloutPolicy()),
            validate=True,
        )
        assert out["makespan"] == rep.makespan
        assert out["mean_response_time"] == rep.result.mean_response_time

    def test_clip_action_clamps_into_the_polytope(self):
        machine = KResourceMachine((3, 2))
        desires = {
            0: np.array([5, 2]),
            1: np.array([5, 2]),
        }
        action = np.array([[99, -7], [99, 99]])
        out = clip_action(machine, desires, action)
        assert out[0].tolist() == [3, 0]  # capacity-clamped, negative->0
        assert out[1].tolist() == [0, 2]  # earlier arrival claimed cat 0

    def test_clip_action_rejects_unknown_ids_and_bad_shapes(self):
        machine = KResourceMachine((3, 2))
        desires = {0: np.array([1, 1])}
        with pytest.raises(ScheduleError, match="unknown job ids"):
            clip_action(machine, desires, {7: np.array([1, 1])})
        with pytest.raises(ScheduleError, match="shape"):
            clip_action(machine, desires, np.zeros((2, 2)))

    def test_policy_scheduler_is_checkpointable(self):
        sched = PolicyScheduler(GreedyRolloutPolicy())
        assert sched.name == "env-greedy"
        assert sched.state_dict() == {}
