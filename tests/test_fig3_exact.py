"""Integration tests: the Figure-3 reproduction is EXACT.

These are the headline tests of the repository — the simulated adversarial
and optimal makespans must equal the closed forms derived in the proof of
Theorem 1, configuration by configuration.
"""

import pytest

from repro.dag.lowerbound import figure3_instance, homogeneous_lower_bound_job
from repro.jobs import CP_FIRST, CP_LAST, JobSet
from repro.machine import KResourceMachine, homogeneous_machine
from repro.schedulers import ClairvoyantCriticalPath, KRad, Rad
from repro.sim import simulate, validate_schedule
from repro.theory.bounds import theorem1_ratio

CONFIGS = [(2, 2), (2, 4), (2, 2, 2), (2, 2, 4), (4, 4, 4), (2, 3, 4, 4)]


@pytest.mark.parametrize("caps", CONFIGS)
@pytest.mark.parametrize("m", [1, 2, 4])
class TestExactness:
    def test_adversarial_makespan_exact(self, caps, m):
        inst = figure3_instance(m, caps)
        machine = KResourceMachine(caps)
        js = JobSet.from_dags(inst.dags)
        adv = simulate(machine, KRad(), js, policy=CP_LAST)
        assert adv.makespan == inst.adversarial_makespan

    def test_optimal_makespan_exact(self, caps, m):
        inst = figure3_instance(m, caps)
        machine = KResourceMachine(caps)
        js = JobSet.from_dags(inst.dags)
        opt = simulate(
            machine, ClairvoyantCriticalPath(), js, policy=CP_FIRST
        )
        assert opt.makespan == inst.optimal_makespan

    def test_ratio_below_limit(self, caps, m):
        inst = figure3_instance(m, caps)
        ratio = inst.adversarial_makespan / inst.optimal_makespan
        assert ratio <= theorem1_ratio(len(caps), max(caps)) + 1e-9


class TestConvergence:
    def test_ratio_monotone_in_m(self):
        caps = (2, 2, 4)
        ratios = []
        machine = KResourceMachine(caps)
        for m in (1, 2, 4, 8):
            inst = figure3_instance(m, caps)
            js = JobSet.from_dags(inst.dags)
            adv = simulate(machine, KRad(), js, policy=CP_LAST)
            opt = simulate(
                machine, ClairvoyantCriticalPath(), js, policy=CP_FIRST
            )
            ratios.append(adv.makespan / opt.makespan)
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        limit = theorem1_ratio(3, 4)
        # within 15% of the limit at m = 8
        assert ratios[-1] > 0.85 * limit

    def test_adversarial_schedule_is_valid(self):
        caps = (2, 2, 4)
        inst = figure3_instance(2, caps)
        machine = KResourceMachine(caps)
        js = JobSet.from_dags(inst.dags)
        r = simulate(machine, KRad(), js, policy=CP_LAST, record_trace=True)
        validate_schedule(r.trace, js)


class TestHomogeneousAnalogue:
    @pytest.mark.parametrize("p", [2, 4])
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_k1_adversary(self, p, m):
        machine = homogeneous_machine(p)
        js = JobSet.from_dags([homogeneous_lower_bound_job(m, p)])
        adv = simulate(machine, Rad(), js, policy=CP_LAST)
        opt = simulate(
            machine, ClairvoyantCriticalPath(), js, policy=CP_FIRST
        )
        # closed forms: T* = m*p, T_adv = 2*m*p - m (see lowerbound module)
        assert opt.makespan == m * p
        assert adv.makespan == 2 * m * p - m
        assert adv.makespan / opt.makespan <= 2 - 1 / p + 1e-9
