"""Unit tests for SimulationResult."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.results import SimulationResult


def make_result(**overrides):
    kwargs = dict(
        scheduler_name="test",
        num_jobs=2,
        capacities=(4, 2),
        makespan=10,
        completion_times={0: 5, 1: 10},
        release_times={0: 0, 1: 2},
        idle_steps=0,
        busy=np.asarray([12, 6]),
        trace=None,
    )
    kwargs.update(overrides)
    return SimulationResult(**kwargs)


class TestMetrics:
    def test_response_times(self):
        r = make_result()
        assert r.response_time(0) == 5
        assert r.response_time(1) == 8
        assert r.response_times() == {0: 5, 1: 8}
        assert r.total_response_time == 13
        assert r.mean_response_time == 6.5

    def test_utilization(self):
        r = make_result()
        assert r.utilization(0) == 12 / 40
        assert r.utilization(1) == 6 / 20
        assert r.utilization_vector().tolist() == [0.3, 0.3]

    def test_num_categories(self):
        assert make_result().num_categories == 2

    def test_summary_contains_key_numbers(self):
        s = make_result().summary()
        assert "makespan=10" in s
        assert "test" in s


class TestInvariants:
    def test_negative_makespan_rejected(self):
        with pytest.raises(SimulationError):
            make_result(makespan=-1)

    def test_completion_before_release_rejected(self):
        with pytest.raises(SimulationError):
            make_result(completion_times={0: 0, 1: 10})

    def test_mismatched_job_sets_rejected(self):
        with pytest.raises(SimulationError):
            make_result(completion_times={0: 5})
