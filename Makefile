# Convenience targets for the K-RAD reproduction.

PY ?= python

.PHONY: install test bench repro examples coverage clean

install:
	pip install -e . --no-build-isolation || $(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# regenerate every paper artefact + extension and fail on any check
repro:
	$(PY) -m repro all

repro-report:
	$(PY) -m repro all --out repro_report.md --markdown

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done; echo "all examples ran"

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
